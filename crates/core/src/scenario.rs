//! Scenario forks and deterministic resilience sweeps.
//!
//! RiskRoute's premise is reasoning about outage threats, so the natural
//! question is counterfactual: *what if this PoP (or link, or pair of
//! them, or this storm track) actually fails?* This module answers it at
//! scale:
//!
//! - [`ScenarioFork`] is a cheap copy-on-write view of a base
//!   [`Planner`]: the base CSR snapshot masked by a [`ScenarioDelta`]
//!   (deactivated nodes/links, optional forecast override), under a fresh
//!   cost-state stamp and a private route-tree cache so forks can never
//!   poison the base cache. Forks never mutate the base and compose —
//!   fork-of-fork expresses N-2.
//! - An **empty** delta is special-cased to a plain clone of the base
//!   planner sharing its stamp *and* cache, so fork(∅) is byte-identical
//!   to the un-forked engine, cache hits included.
//! - Forks **adopt** still-valid base distance trees instead of
//!   recomputing them: a base tree survives a delta when every node in
//!   the root's surviving component keeps its base predecessor edge
//!   (see [`ScenarioFork::fork`] for why the adopted tree is bit-exact).
//! - [`run_sweep_budgeted`] drives full N-1 (every node, every link),
//!   seeded sampled N-2, and seeded Monte-Carlo hazard ensembles over
//!   `riskroute-par` with byte-identical output at any worker count,
//!   cooperative [`WorkBudget`] deadlines, and checkpoint callbacks at
//!   fork boundaries (see [`crate::checkpoint::Snapshot::sweep`]).
//!
//! Scenario impact is measured by the β = 0 **distance-tree exposure**
//! ([`base_exposure`]): for every unordered pair the shortest-path
//! bit-risk miles `dist(i,j) + β(i,j)·Σρ` (one SSSP per source, O(1) per
//! destination), with partition-stranded pairs counted instead of
//! erroring — the same degraded-mode accounting as
//! [`Planner::pair_sweep`].

use crate::budget::{Budgeted, StopReason, WorkBudget};
use crate::error::{Error, Result};
use crate::intradomain::Planner;
use crate::replay::CHECKPOINT_BATCH;
use crate::routing::{RiskTree, NO_PRED};
use riskroute_geo::distance::great_circle_miles;
use riskroute_hazard::events::sample_member_events;
use riskroute_hazard::EventKind;
use riskroute_par::Parallelism;
use riskroute_topology::Network;
use std::collections::VecDeque;
use std::sync::Arc;

/// How many synthetic storm tracks one ensemble member draws.
const ENSEMBLE_EVENTS_PER_MEMBER: usize = 3;

/// A failure delta applied to a base planner by [`ScenarioFork::fork`]:
/// nodes to deactivate (they keep their indices but lose every edge),
/// undirected links to deactivate, and an optional forecast-risk override.
///
/// Deltas are normalized on construction — node lists sorted and deduped,
/// link endpoints ordered `a < b` — so structurally equal scenarios
/// compare equal regardless of build order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioDelta {
    nodes: Vec<usize>,
    links: Vec<(usize, usize)>,
    forecast: Option<Vec<f64>>,
}

impl ScenarioDelta {
    /// The empty delta (forks to a byte-identical alias of the base).
    pub fn new() -> Self {
        ScenarioDelta::default()
    }

    /// Deactivate node `v`: every edge touching it is dropped, so its
    /// pairs become stranded (degraded-mode accounting, never an error).
    #[must_use]
    pub fn deactivate_node(mut self, v: usize) -> Self {
        if let Err(at) = self.nodes.binary_search(&v) {
            self.nodes.insert(at, v);
        }
        self
    }

    /// Deactivate the undirected link `(a, b)` (both directions).
    #[must_use]
    pub fn deactivate_link(mut self, a: usize, b: usize) -> Self {
        let key = (a.min(b), a.max(b));
        if let Err(at) = self.links.binary_search(&key) {
            self.links.insert(at, key);
        }
        self
    }

    /// Override the forecast-risk vector (hazard-ensemble members). An
    /// override bitwise-equal to the base forecast leaves the fork an
    /// alias of the base.
    #[must_use]
    pub fn with_forecast(mut self, forecast: Vec<f64>) -> Self {
        self.forecast = Some(forecast);
        self
    }

    /// Whether this delta changes nothing *structurally* (no nodes, no
    /// links, no forecast override recorded).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty() && self.forecast.is_none()
    }

    /// Union of two deltas (fork-of-fork composition); `other`'s forecast
    /// override, when present, wins.
    #[must_use]
    pub fn merged(&self, other: &ScenarioDelta) -> ScenarioDelta {
        let mut out = self.clone();
        for &v in &other.nodes {
            out = out.deactivate_node(v);
        }
        for &(a, b) in &other.links {
            out = out.deactivate_link(a, b);
        }
        if other.forecast.is_some() {
            out.forecast = other.forecast.clone();
        }
        out
    }

    /// Deactivated nodes (sorted, deduped).
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Deactivated links (endpoints ordered, sorted, deduped).
    pub fn links(&self) -> &[(usize, usize)] {
        &self.links
    }

    /// The forecast override, if any.
    pub fn forecast(&self) -> Option<&[f64]> {
        self.forecast.as_deref()
    }

    /// Whether the undirected link `(u, v)` is deactivated.
    fn drops_link(&self, u: usize, v: usize) -> bool {
        self.links.binary_search(&(u.min(v), u.max(v))).is_ok()
    }
}

/// Aggregate shortest-path exposure of one planner state: total bit-risk
/// miles over routable unordered pairs, plus degraded-mode stranded-pair
/// accounting. The per-scenario unit every sweep ranks by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureReport {
    /// `Σ_{i<j} dist(i,j) + β(i,j)·Σρ` over routable pairs.
    pub bit_risk_total: f64,
    /// Unordered pairs with a connecting path.
    pub routable_pairs: usize,
    /// Unordered pairs stranded by a partition (or a deactivated
    /// endpoint).
    pub stranded_pairs: usize,
}

/// Distance-tree exposure of `planner` as-is (no failure mask): one β = 0
/// SSSP per source, O(1) per destination via the ρ-sum channel, folded in
/// strict lexicographic pair order so the total is reproducible
/// bit-for-bit.
pub fn base_exposure(planner: &Planner) -> ExposureReport {
    exposure_masked(planner, &vec![false; planner.pop_count()])
}

/// Exposure with deactivated-node accounting: pairs touching an `off`
/// node are stranded without consulting a tree (their trees would report
/// exactly that — the node is isolated in the masked graph).
fn exposure_masked(planner: &Planner, node_off: &[bool]) -> ExposureReport {
    let n = planner.pop_count();
    let mut total = 0.0;
    let mut routable = 0usize;
    let mut stranded = 0usize;
    for i in 0..n.saturating_sub(1) {
        if node_off[i] {
            stranded += n - 1 - i;
            continue;
        }
        let tree = planner.risk_tree_distance(i);
        for (j, &off) in node_off.iter().enumerate().skip(i + 1) {
            if off {
                stranded += 1;
                continue;
            }
            if tree.reachable(j) {
                let beta = planner.impact(i, j);
                total += tree.dist(j) + beta * tree.path_rho_sum(j);
                routable += 1;
            } else {
                stranded += 1;
            }
        }
    }
    ExposureReport {
        bit_risk_total: total,
        routable_pairs: routable,
        stranded_pairs: stranded,
    }
}

/// A copy-on-write failure fork of a base [`Planner`].
///
/// Construction is cheap relative to rebuilding a planner: the masked CSR
/// and adjacency are order-preserving filters of the base snapshot,
/// shares/risk are shared or cloned, and still-valid base distance trees
/// are *adopted* into the fork's private cache instead of recomputed.
#[derive(Debug, Clone)]
pub struct ScenarioFork {
    planner: Planner,
    delta: ScenarioDelta,
    node_off: Vec<bool>,
    base_alias: bool,
}

impl ScenarioFork {
    /// Fork `base` under `delta`.
    ///
    /// **Stamp minting rules.** An *effectively empty* delta (no
    /// deactivations and a forecast override absent or bitwise-equal to
    /// the base forecast) returns a plain clone of the base planner —
    /// same CSR `Arc`, same cost-state stamp, same shared route-tree
    /// cache — so fork(∅) is byte-identical to the un-forked engine
    /// including its cache hits. A *forecast-only* delta (no deactivations,
    /// override differs bitwise) keeps the shared CSR snapshot and, when
    /// the base has delta invalidation on, records the changed-edge log
    /// against the base stamp instead of minting a blanket fresh one: base
    /// trees are carried across the log lazily at query time — reused
    /// outright when provably untouched, repaired incrementally otherwise
    /// (see [`Planner::fork_forecast`]). Any structural delta masks the
    /// snapshot and mints a fresh stamp plus a **private** cache: the stamp
    /// guarantees no fork tree is ever returned to the base (or vice
    /// versa), and the private cache keeps fork churn from evicting base
    /// entries at capacity.
    ///
    /// **Tree adoption.** A base β = 0 tree rooted at `r` is adopted when
    /// every node in `r`'s surviving component keeps its base predecessor
    /// edge under the delta. That check is sufficient for bit-exactness:
    /// by induction up the predecessor chain every in-component base path
    /// survives intact (so distances are still optimal — the masked graph
    /// is a subgraph), and because the masked snapshot preserves edge
    /// order, a fresh Dijkstra replays the base relaxation sequence
    /// restricted to kept edges — the *first* relaxation to reach a
    /// node's final value is the same one, so predecessors (and every
    /// tie-break) match bit-for-bit. Out-of-component nodes project to
    /// unreachable. When the fork's ρ vector differs (forecast override),
    /// the ρ-sum channel is recomputed along predecessor chains with the
    /// same `parent + ρ(node)` operand order the engine uses at settle
    /// time, keeping it bitwise equal to a fresh run.
    ///
    /// # Panics
    /// Panics when the delta names out-of-range nodes/links or carries a
    /// malformed forecast override (wrong length, non-finite values).
    pub fn fork(base: &Planner, delta: ScenarioDelta) -> ScenarioFork {
        let n = base.pop_count();
        assert!(
            delta.nodes.iter().all(|&v| v < n)
                && delta.links.iter().all(|&(a, b)| a < n && b < n && a != b),
            "scenario delta names out-of-range or degenerate elements"
        );
        let forecast_changed = match delta.forecast() {
            None => false,
            Some(f) => {
                assert_eq!(f.len(), n, "forecast override must cover every PoP");
                f.iter()
                    .zip(base.risk().forecast_slice())
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            }
        };
        let structural = !delta.nodes.is_empty() || !delta.links.is_empty();
        if !structural && !forecast_changed {
            if riskroute_obs::is_enabled() {
                riskroute_obs::counter_add("forks_created", 1);
                riskroute_obs::counter_add("forks_reused_cache", 1);
            }
            return ScenarioFork {
                planner: base.clone(),
                delta,
                node_off: vec![false; n],
                base_alias: true,
            };
        }

        if let Some(forecast) = delta
            .forecast()
            .filter(|_| !structural && base.delta_invalidation())
        {
            // Forecast-only override with the changed-edge log available:
            // the topology is untouched, so skip the masked-CSR copy and
            // let the fork adopt base trees lazily across the recorded
            // delta (probing the base cache read-only).
            let planner = base.fork_forecast(forecast);
            if riskroute_obs::is_enabled() {
                riskroute_obs::counter_add("forks_created", 1);
                riskroute_obs::counter_add("forks_forecast_delta", 1);
                if base.route_cache() {
                    riskroute_obs::counter_add("forks_reused_cache", 1);
                }
            }
            return ScenarioFork {
                planner,
                delta,
                node_off: vec![false; n],
                base_alias: false,
            };
        }

        let mut node_off = vec![false; n];
        for &v in &delta.nodes {
            node_off[v] = true;
        }
        let keep = |u: usize, v: usize| !node_off[u] && !node_off[v] && !delta.drops_link(u, v);
        let forecast_override = if forecast_changed { delta.forecast() } else { None };
        let planner = base.fork_masked(&keep, forecast_override);

        let comp = components(&planner, &node_off);
        let rho_changed = {
            let (a, b) = (base.rho(), planner.rho());
            a.len() != b.len()
                || a.iter().zip(b.iter()).any(|(x, y)| x.to_bits() != y.to_bits())
        };
        let mut adopted: u64 = 0;
        for (root, &off) in node_off.iter().enumerate() {
            if off {
                continue;
            }
            let Some(tree) = base.cached_distance_tree(root) else {
                continue;
            };
            let projected = project_tree(
                &tree,
                &comp,
                root,
                &keep,
                if rho_changed { Some(planner.rho()) } else { None },
            );
            if let Some(t) = projected {
                planner.seed_distance_tree(root, Arc::new(t));
                adopted += 1;
            }
        }
        if riskroute_obs::is_enabled() {
            riskroute_obs::counter_add("forks_created", 1);
            if adopted > 0 {
                riskroute_obs::counter_add("forks_reused_cache", 1);
            }
            riskroute_obs::counter_add("scenario_trees_adopted", adopted);
        }
        ScenarioFork {
            planner,
            delta,
            node_off,
            base_alias: false,
        }
    }

    /// Fork this fork (N-2 composition): the child planner masks this
    /// fork's snapshot by `delta`, and the recorded delta is the union of
    /// both. Adoption probes this fork's cache, so trees the parent
    /// adopted (or computed) carry forward when still valid.
    #[must_use]
    pub fn fork_from(&self, delta: &ScenarioDelta) -> ScenarioFork {
        let mut child = ScenarioFork::fork(&self.planner, delta.clone());
        child.delta = self.delta.merged(delta);
        for (slot, &off) in child.node_off.iter_mut().zip(&self.node_off) {
            *slot = *slot || off;
        }
        child
    }

    /// The fork's planner view (masked topology, fork cost state).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The cumulative delta relative to the original base.
    pub fn delta(&self) -> &ScenarioDelta {
        &self.delta
    }

    /// Whether the fork is a byte-identical alias of its base (empty
    /// effective delta: shared stamp and cache).
    pub fn is_base_alias(&self) -> bool {
        self.base_alias
    }

    /// Distance-tree exposure of this fork (see [`base_exposure`]), with
    /// deactivated-node pairs counted stranded.
    pub fn exposure(&self) -> ExposureReport {
        exposure_masked(&self.planner, &self.node_off)
    }
}

/// Connected-component labels of the masked graph, by BFS from the
/// lowest-indexed unvisited node — deterministic labels, deactivated
/// nodes left unlabeled (`u32::MAX`).
fn components(planner: &Planner, node_off: &[bool]) -> Vec<u32> {
    const UNLABELED: u32 = u32::MAX;
    let n = node_off.len();
    let mut comp = vec![UNLABELED; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if node_off[s] || comp[s] != UNLABELED {
            continue;
        }
        comp[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in planner.adjacency().neighbors(u) {
                if comp[v] == UNLABELED {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Project a base β = 0 tree onto the masked graph, or `None` when some
/// in-component node's base predecessor edge was dropped (the base path
/// used a failed element — the tree must be recomputed).
fn project_tree(
    tree: &RiskTree,
    comp: &[u32],
    root: usize,
    keep: &impl Fn(usize, usize) -> bool,
    fork_rho: Option<&[f64]>,
) -> Option<RiskTree> {
    let n = comp.len();
    let rc = comp[root];
    let dist = tree.dist_slice();
    let pred = tree.pred_slice();
    for x in 0..n {
        if comp[x] != rc || x == root {
            continue;
        }
        let p = pred[x];
        if p == NO_PRED || !keep(p as usize, x) {
            return None;
        }
    }
    let mut new_dist = vec![f64::INFINITY; n];
    let mut new_pred = vec![NO_PRED; n];
    for x in 0..n {
        if comp[x] == rc {
            new_dist[x] = dist[x];
            new_pred[x] = pred[x];
        }
    }
    let new_rho_sum = match fork_rho {
        None => {
            let base_rho = tree.rho_sum_slice();
            (0..n)
                .map(|x| if comp[x] == rc { base_rho[x] } else { f64::INFINITY })
                .collect()
        }
        Some(rho) => {
            // Recompute along predecessor chains. The engine accumulates
            // `rho_sum[pred] + ρ(node)` when a node settles; the same
            // operands in the same order here keep the channel bitwise
            // identical to a fresh run over the masked graph.
            let mut out = vec![f64::INFINITY; n];
            out[root] = 0.0;
            let mut chain = Vec::new();
            for x in 0..n {
                if comp[x] != rc || out[x].is_finite() {
                    continue;
                }
                let mut cur = x;
                while !out[cur].is_finite() {
                    chain.push(cur);
                    cur = new_pred[cur] as usize;
                }
                while let Some(y) = chain.pop() {
                    out[y] = out[new_pred[y] as usize] + rho[y];
                }
            }
            out
        }
    };
    Some(RiskTree::from_parts(
        tree.source(),
        new_dist,
        new_pred,
        new_rho_sum,
    ))
}

/// One failing element of an N-1/N-2 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailElement {
    /// A PoP failure (the node keeps its index but loses every edge).
    Node(usize),
    /// An undirected link failure (endpoints ordered `a < b` in canonical
    /// specs).
    Link(usize, usize),
}

/// One scenario of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSpec {
    /// Single-element failure (N-1).
    One(FailElement),
    /// Two-element failure (sampled N-2, evaluated as fork-of-fork).
    Two(FailElement, FailElement),
    /// One Monte-Carlo hazard-ensemble member: a forecast override built
    /// from the `index`-th seeded storm-track draw under `seed`.
    Member {
        /// Member index within the ensemble.
        index: usize,
        /// The ensemble master seed (each member derives its own).
        seed: u64,
    },
}

/// Which sweep [`run_sweep_budgeted`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Full N-1: every node, then every link, in canonical order.
    N1,
    /// Sampled N-2: seeded draws of distinct element pairs.
    N2 {
        /// Number of sampled scenarios.
        samples: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Seeded Monte-Carlo hazard ensemble (hurricane storm tracks turned
    /// into forecast overrides).
    Ensemble {
        /// Number of ensemble members.
        samples: usize,
        /// Ensemble master seed.
        seed: u64,
    },
}

impl SweepMode {
    /// The CLI/snapshot label: `"n1"`, `"n2"`, or `"ensemble"`.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMode::N1 => "n1",
            SweepMode::N2 { .. } => "n2",
            SweepMode::Ensemble { .. } => "ensemble",
        }
    }

    /// Sample count (0 for N-1, which is exhaustive).
    pub fn samples(&self) -> usize {
        match *self {
            SweepMode::N1 => 0,
            SweepMode::N2 { samples, .. } | SweepMode::Ensemble { samples, .. } => samples,
        }
    }

    /// Sampling seed (0 for N-1, which draws nothing).
    pub fn seed(&self) -> u64 {
        match *self {
            SweepMode::N1 => 0,
            SweepMode::N2 { seed, .. } | SweepMode::Ensemble { seed, .. } => seed,
        }
    }

    /// Rebuild a mode from its snapshot parts; `None` on an unknown
    /// label.
    pub fn from_parts(label: &str, samples: usize, seed: u64) -> Option<SweepMode> {
        match label {
            "n1" => Some(SweepMode::N1),
            "n2" => Some(SweepMode::N2 { samples, seed }),
            "ensemble" => Some(SweepMode::Ensemble { samples, seed }),
            _ => None,
        }
    }
}

/// One evaluated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// What failed.
    pub spec: ScenarioSpec,
    /// Human-readable scenario label (PoP names resolved).
    pub label: String,
    /// The fork's exposure.
    pub exposure: ExposureReport,
}

/// A completed (or partial) sweep: the baseline exposure plus one record
/// per evaluated scenario, in canonical scenario order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Network the sweep ran on.
    pub network: String,
    /// Which sweep.
    pub mode: SweepMode,
    /// Exposure of the unfailed base (Δs are measured against it).
    pub baseline: ExposureReport,
    /// Evaluated scenarios, in canonical order.
    pub records: Vec<SweepRecord>,
}

impl SweepOutcome {
    /// Δ bit-risk miles of one record against the baseline.
    pub fn delta_bit_risk(&self, rec: &SweepRecord) -> f64 {
        rec.exposure.bit_risk_total - self.baseline.bit_risk_total
    }

    /// Δ stranded pairs of one record against the baseline.
    pub fn delta_stranded(&self, rec: &SweepRecord) -> i64 {
        rec.exposure.stranded_pairs as i64 - self.baseline.stranded_pairs as i64
    }

    /// Records ranked most-critical first: by Δ stranded pairs
    /// descending, then Δ bit-risk miles descending (total order), then
    /// canonical scenario index ascending — a deterministic total order.
    /// Each entry carries the record's canonical index.
    pub fn ranked(&self) -> Vec<(usize, &SweepRecord)> {
        let mut idx: Vec<usize> = (0..self.records.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ra, rb) = (&self.records[a], &self.records[b]);
            rb.exposure
                .stranded_pairs
                .cmp(&ra.exposure.stranded_pairs)
                .then_with(|| self.delta_bit_risk(rb).total_cmp(&self.delta_bit_risk(ra)))
                .then_with(|| a.cmp(&b))
        });
        idx.into_iter().map(|i| (i, &self.records[i])).collect()
    }

    /// Nearest-rank p5/p50/p95 of per-record total bit-risk miles (the
    /// ensemble risk bands); `None` when no records exist.
    pub fn risk_bands(&self) -> Option<(f64, f64, f64)> {
        if self.records.is_empty() {
            return None;
        }
        let mut vals: Vec<f64> = self
            .records
            .iter()
            .map(|r| r.exposure.bit_risk_total)
            .collect();
        vals.sort_by(f64::total_cmp);
        let pick = |p: f64| {
            let rank = (p / 100.0 * vals.len() as f64).ceil() as usize;
            vals[rank.clamp(1, vals.len()) - 1]
        };
        Some((pick(5.0), pick(50.0), pick(95.0)))
    }

    /// Worst-case fork per failing element: for every element appearing
    /// in any record, the (Δ stranded, Δ bit-risk) of its worst scenario,
    /// ordered most-critical first under the [`Self::ranked`] order.
    /// Ensemble members contribute nothing (they fail no element).
    pub fn worst_per_element(&self) -> Vec<(FailElement, f64, i64)> {
        let mut worst: Vec<(FailElement, f64, i64, usize)> = Vec::new();
        for (pos, rec) in self.records.iter().enumerate() {
            let dbr = self.delta_bit_risk(rec);
            let dst = self.delta_stranded(rec);
            let elems = match &rec.spec {
                ScenarioSpec::One(e) => vec![*e],
                ScenarioSpec::Two(a, b) => vec![*a, *b],
                ScenarioSpec::Member { .. } => Vec::new(),
            };
            for e in elems {
                match worst.iter_mut().find(|(w, _, _, _)| *w == e) {
                    None => worst.push((e, dbr, dst, pos)),
                    Some(slot) => {
                        if dst > slot.2 || (dst == slot.2 && dbr > slot.1) {
                            *slot = (e, dbr, dst, slot.3);
                        }
                    }
                }
            }
        }
        worst.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then_with(|| b.1.total_cmp(&a.1))
                .then_with(|| a.3.cmp(&b.3))
        });
        worst.into_iter().map(|(e, dbr, dst, _)| (e, dbr, dst)).collect()
    }
}

/// Typed resume state of a budget-cut sweep: the canonical index of the
/// next scenario to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepResume {
    /// Index into [`scenario_specs`] where the sweep continues.
    pub next_index: usize,
}

/// The already-computed prefix handed back to [`run_sweep_budgeted`] on
/// resume (decoded from a checkpoint snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPrior {
    /// The baseline exposure computed before the cut.
    pub baseline: ExposureReport,
    /// Records completed before the cut, in canonical order.
    pub records: Vec<SweepRecord>,
}

/// SplitMix64 — the deterministic, dependency-free stream behind N-2
/// sampling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The canonical failable-element list of a network: nodes `0..n` in
/// index order, then links in `Network::links` order with endpoints
/// normalized `a < b`.
fn fail_elements(network: &Network) -> Vec<FailElement> {
    let mut elems: Vec<FailElement> = (0..network.pop_count()).map(FailElement::Node).collect();
    elems.extend(
        network
            .links()
            .iter()
            .map(|l| FailElement::Link(l.a.min(l.b), l.a.max(l.b))),
    );
    elems
}

/// The deterministic scenario list of one sweep — the order every run,
/// at any worker count and across any kill/resume boundary, evaluates.
///
/// - N-1: one [`ScenarioSpec::One`] per canonical element (every node,
///   then every link).
/// - N-2: `samples` seeded draws of distinct element pairs (SplitMix64;
///   repeats across draws are possible and kept — the list, not a set,
///   is the contract). Empty when the network has fewer than two
///   elements.
/// - Ensemble: members `0..samples`, each carrying the master seed.
pub fn scenario_specs(network: &Network, mode: SweepMode) -> Vec<ScenarioSpec> {
    match mode {
        SweepMode::N1 => fail_elements(network)
            .into_iter()
            .map(ScenarioSpec::One)
            .collect(),
        SweepMode::N2 { samples, seed } => {
            let elems = fail_elements(network);
            let m = elems.len();
            if m < 2 {
                return Vec::new();
            }
            let mut state = seed ^ 0x51c7_a9b3_6e2d_f041;
            (0..samples)
                .map(|_| {
                    let a = (splitmix64(&mut state) % m as u64) as usize;
                    let mut b = (splitmix64(&mut state) % (m as u64 - 1)) as usize;
                    if b >= a {
                        b += 1;
                    }
                    let (lo, hi) = (a.min(b), a.max(b));
                    ScenarioSpec::Two(elems[lo], elems[hi])
                })
                .collect()
        }
        SweepMode::Ensemble { samples, seed } => (0..samples)
            .map(|index| ScenarioSpec::Member { index, seed })
            .collect(),
    }
}

/// Human-readable label of one failing element, PoP names resolved.
fn element_label(network: &Network, e: &FailElement) -> String {
    let pops = network.pops();
    match *e {
        FailElement::Node(v) => format!("node {v} ({})", pops[v].name),
        FailElement::Link(a, b) => {
            format!("link {a}-{b} ({} - {})", pops[a].name, pops[b].name)
        }
    }
}

/// The forecast override of ensemble member `index`: seeded hurricane
/// tracks (member-derived seed, see
/// [`sample_member_events`]), each contributing
/// `1 - d/r` forecast risk to every PoP within its damage radius `r`.
fn member_forecast(network: &Network, master_seed: u64, index: usize) -> Vec<f64> {
    let events = sample_member_events(
        EventKind::FemaHurricane,
        ENSEMBLE_EVENTS_PER_MEMBER,
        master_seed,
        index,
    );
    network
        .pops()
        .iter()
        .map(|p| {
            let mut risk = 0.0;
            for e in &events {
                let radius = e.kind.damage_radius_miles();
                let d = great_circle_miles(p.location, e.location);
                if d < radius {
                    risk += 1.0 - d / radius;
                }
            }
            risk
        })
        .collect()
}

/// Evaluate one scenario: fork (fork-of-fork for N-2), measure exposure,
/// label. A pure function of `(base, network, spec)` — the property that
/// makes the sweep order-insensitive and resumable.
fn evaluate_spec(base: &Planner, network: &Network, spec: &ScenarioSpec) -> SweepRecord {
    let mut span = riskroute_obs::span!("scenario_fork");
    let (fork, label) = match spec {
        ScenarioSpec::One(e) => (
            ScenarioFork::fork(base, delta_for(e)),
            element_label(network, e),
        ),
        ScenarioSpec::Two(e1, e2) => {
            let first = ScenarioFork::fork(base, delta_for(e1));
            let second = first.fork_from(&delta_for(e2));
            (
                second,
                format!(
                    "{} + {}",
                    element_label(network, e1),
                    element_label(network, e2)
                ),
            )
        }
        ScenarioSpec::Member { index, seed } => {
            let forecast = member_forecast(network, *seed, *index);
            (
                ScenarioFork::fork(base, ScenarioDelta::new().with_forecast(forecast)),
                format!("member {index}"),
            )
        }
    };
    let exposure = fork.exposure();
    if span.is_active() {
        span.field("stranded_pairs", exposure.stranded_pairs);
        span.field("bit_risk_total", exposure.bit_risk_total);
        riskroute_obs::counter_add("sweep_scenarios", 1);
    }
    SweepRecord {
        spec: spec.clone(),
        label,
        exposure,
    }
}

/// The delta of one failing element.
fn delta_for(e: &FailElement) -> ScenarioDelta {
    match *e {
        FailElement::Node(v) => ScenarioDelta::new().deactivate_node(v),
        FailElement::Link(a, b) => ScenarioDelta::new().deactivate_link(a, b),
    }
}

/// Run a full sweep to completion (unlimited budget, no checkpoints).
///
/// # Errors
/// Same contract as [`run_sweep_budgeted`].
pub fn run_sweep(base: &Planner, network: &Network, mode: SweepMode) -> Result<SweepOutcome> {
    let run = run_sweep_budgeted(base, network, mode, None, &WorkBudget::unlimited(), |_, _| {})?;
    let (outcome, _) = run.into_parts();
    Ok(outcome)
}

/// Budget-aware scenario sweep, resumable at any fork boundary.
///
/// Scenarios are evaluated in the canonical [`scenario_specs`] order.
/// Each is an independent function of the base planner and one spec, so
/// output is **byte-identical at any worker count** (records land in
/// canonical order regardless of completion order) and across any
/// kill/resume boundary: pass the partial outcome's baseline and records
/// back as `prior` and the sweep picks up at `prior.records.len()`.
///
/// The baseline exposure is computed first (when no prior carries it) —
/// it both anchors the Δ metrics and warms the base route-tree cache the
/// forks adopt from. The budget is checked before each scenario and
/// charged one unit per scenario evaluated (the baseline is free);
/// `on_batch` fires with the outcome-so-far and the next scenario index
/// after every [`CHECKPOINT_BATCH`] newly evaluated scenarios.
///
/// # Errors
/// [`Error::InvalidArgument`] when `network` does not match the
/// planner's PoP count, a sampled mode requests zero samples, or `prior`
/// holds more records than the sweep has scenarios.
pub fn run_sweep_budgeted(
    base: &Planner,
    network: &Network,
    mode: SweepMode,
    prior: Option<SweepPrior>,
    budget: &WorkBudget,
    mut on_batch: impl FnMut(&SweepOutcome, usize),
) -> Result<Budgeted<SweepOutcome, SweepResume>> {
    // Attribute the whole sweep to the budget owner's trace.
    let _obs = budget.scope().enter();
    if network.pop_count() != base.pop_count() {
        return Err(Error::InvalidArgument {
            context: "network".into(),
            message: format!(
                "network has {} PoPs but the planner covers {}",
                network.pop_count(),
                base.pop_count()
            ),
        });
    }
    if mode.samples() == 0 && !matches!(mode, SweepMode::N1) {
        return Err(Error::InvalidArgument {
            context: "samples".into(),
            message: "sampled sweep modes need at least one sample".into(),
        });
    }
    let specs = scenario_specs(network, mode);
    let (baseline, prior_records) = match prior {
        Some(p) => {
            if p.records.len() > specs.len() {
                return Err(Error::InvalidArgument {
                    context: "prior records".into(),
                    message: format!(
                        "resume state has {} records but the sweep has only {} scenarios",
                        p.records.len(),
                        specs.len()
                    ),
                });
            }
            (p.baseline, p.records)
        }
        None => (base_exposure(base), Vec::new()),
    };
    let mut outcome = SweepOutcome {
        network: network.name().to_string(),
        mode,
        baseline,
        records: prior_records,
    };
    let start = outcome.records.len();
    let mut since_batch = 0usize;
    match base.parallelism() {
        Parallelism::Sequential => {
            for (i, spec) in specs.iter().enumerate().skip(start) {
                if let Some(stopped) = budget.exhausted() {
                    return Ok(partial(outcome, i, stopped));
                }
                let rec = evaluate_spec(base, network, spec);
                outcome.records.push(rec);
                budget.charge(1);
                since_batch += 1;
                if since_batch == CHECKPOINT_BATCH {
                    since_batch = 0;
                    on_batch(&outcome, i + 1);
                }
            }
        }
        par => {
            // Scenarios are dispatched in waves sized by the distance to
            // the next checkpoint boundary AND the remaining work budget,
            // so a deterministic (max-work) cut lands on exactly the
            // scenario index where the sequential loop would have
            // stopped, and `on_batch` fires on the sequential boundaries.
            let mut i = start;
            while i < specs.len() {
                if let Some(stopped) = budget.exhausted() {
                    return Ok(partial(outcome, i, stopped));
                }
                let mut take = (CHECKPOINT_BATCH - since_batch).min(specs.len() - i);
                if let Some(left) = budget.work_remaining() {
                    take = take.min(usize::try_from(left).unwrap_or(usize::MAX));
                }
                let wave = &specs[i..i + take];
                let recs = riskroute_par::try_par_map_collect(par, wave, |_, spec| {
                    let rec = evaluate_spec(base, network, spec);
                    budget.charge(1);
                    rec
                })
                .map_err(Error::from)?;
                outcome.records.extend(recs);
                i += take;
                since_batch += take;
                if since_batch == CHECKPOINT_BATCH {
                    since_batch = 0;
                    on_batch(&outcome, i);
                }
            }
        }
    }
    Ok(Budgeted::Complete(outcome))
}

fn partial(
    outcome: SweepOutcome,
    next_index: usize,
    stopped: StopReason,
) -> Budgeted<SweepOutcome, SweepResume> {
    Budgeted::Partial {
        completed: outcome,
        resume_state: SweepResume { next_index },
        stopped,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A diamond with a risky southern PoP plus a stub hanging off the
    /// east — enough structure for detours, partitions, and stubs.
    ///
    /// ```text
    ///        1
    ///      /   \
    ///    0       3 --- 4 (stub)
    ///      \   /
    ///        2 (risky)
    /// ```
    fn fixture() -> (Network, Planner) {
        let net = Network::new(
            "forknet",
            NetworkKind::Regional,
            vec![
                pop("West", 35.0, -100.0),
                pop("North", 37.5, -97.0),
                pop("South", 35.0, -97.0),
                pop("East", 35.0, -94.0),
                pop("Stub", 35.5, -92.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0, 1e-3], vec![0.0; 5]);
        let shares = PopShares::from_shares(vec![0.2; 5]);
        let planner = Planner::new(&net, risk, shares, RiskWeights::PAPER);
        (net, planner)
    }

    /// The naive baseline: a fresh planner over the masked network (same
    /// risk state), never sharing anything with the base.
    fn rebuilt_for(net: &Network, base: &Planner, delta: &ScenarioDelta) -> Planner {
        let mut node_off = vec![false; net.pop_count()];
        for &v in delta.nodes() {
            node_off[v] = true;
        }
        let keep_pairs: Vec<(usize, usize)> = net
            .links()
            .iter()
            .filter(|l| !node_off[l.a] && !node_off[l.b] && !delta.drops_link(l.a, l.b))
            .map(|l| (l.a, l.b))
            .collect();
        let masked = Network::new(net.name(), net.kind(), net.pops().to_vec(), keep_pairs).unwrap();
        let mut risk = base.risk().clone();
        if let Some(f) = delta.forecast() {
            risk.set_forecast(f.to_vec());
        }
        Planner::new(
            &masked,
            risk,
            PopShares::from_shares(base.shares().shares().to_vec()),
            base.weights(),
        )
    }

    fn bits(e: &ExposureReport) -> (u64, usize, usize) {
        (e.bit_risk_total.to_bits(), e.routable_pairs, e.stranded_pairs)
    }

    #[test]
    fn deltas_normalize_and_merge() {
        let d = ScenarioDelta::new()
            .deactivate_link(3, 1)
            .deactivate_node(2)
            .deactivate_node(2)
            .deactivate_link(1, 3)
            .deactivate_node(0);
        assert_eq!(d.nodes(), &[0, 2]);
        assert_eq!(d.links(), &[(1, 3)]);
        assert!(!d.is_empty());
        assert!(ScenarioDelta::new().is_empty());
        let e = ScenarioDelta::new().deactivate_node(2).deactivate_link(0, 1);
        let m = d.merged(&e);
        assert_eq!(m.nodes(), &[0, 2]);
        assert_eq!(m.links(), &[(0, 1), (1, 3)]);
    }

    #[test]
    fn empty_delta_fork_is_a_base_alias_sharing_the_stamp() {
        let (_, planner) = fixture();
        let base_exp = base_exposure(&planner);
        let fork = ScenarioFork::fork(&planner, ScenarioDelta::new());
        assert!(fork.is_base_alias());
        assert_eq!(fork.planner().cost_stamp(), planner.cost_stamp());
        assert_eq!(bits(&fork.exposure()), bits(&base_exp));
    }

    #[test]
    fn bitwise_equal_forecast_override_is_still_an_alias() {
        let (_, planner) = fixture();
        let same = planner.risk().forecast_slice().to_vec();
        let fork = ScenarioFork::fork(&planner, ScenarioDelta::new().with_forecast(same));
        assert!(fork.is_base_alias());
        assert_eq!(fork.planner().cost_stamp(), planner.cost_stamp());
    }

    #[test]
    fn real_deltas_mint_a_fresh_stamp() {
        let (_, planner) = fixture();
        let fork = ScenarioFork::fork(&planner, ScenarioDelta::new().deactivate_node(4));
        assert!(!fork.is_base_alias());
        assert_ne!(fork.planner().cost_stamp(), planner.cost_stamp());
    }

    #[test]
    fn every_n1_fork_matches_a_rebuilt_planner_bit_for_bit() {
        let (net, planner) = fixture();
        // Warm the base cache so the adoption path is actually exercised.
        let _ = base_exposure(&planner);
        for spec in scenario_specs(&net, SweepMode::N1) {
            let ScenarioSpec::One(e) = &spec else {
                unreachable!()
            };
            let delta = delta_for(e);
            let fork = ScenarioFork::fork(&planner, delta.clone());
            let rebuilt = rebuilt_for(&net, &planner, &delta);
            assert_eq!(
                bits(&fork.exposure()),
                bits(&base_exposure(&rebuilt)),
                "fork diverged from rebuild for {spec:?}"
            );
        }
    }

    #[test]
    fn forecast_override_fork_matches_a_rebuilt_planner_bit_for_bit() {
        let (net, planner) = fixture();
        let _ = base_exposure(&planner);
        let forecast = vec![0.0, 2.5, 0.0, 1.25, 0.0];
        let delta = ScenarioDelta::new().with_forecast(forecast);
        let fork = ScenarioFork::fork(&planner, delta.clone());
        assert!(!fork.is_base_alias());
        let rebuilt = rebuilt_for(&net, &planner, &delta);
        assert_eq!(bits(&fork.exposure()), bits(&base_exposure(&rebuilt)));
    }

    #[test]
    fn fork_of_fork_composes_deltas_and_matches_a_rebuild() {
        let (net, planner) = fixture();
        let _ = base_exposure(&planner);
        let d1 = ScenarioDelta::new().deactivate_node(1);
        let d2 = ScenarioDelta::new().deactivate_link(2, 3);
        let child = ScenarioFork::fork(&planner, d1.clone()).fork_from(&d2);
        assert_eq!(child.delta(), &d1.merged(&d2));
        let rebuilt = rebuilt_for(&net, &planner, &d1.merged(&d2));
        assert_eq!(bits(&child.exposure()), bits(&base_exposure(&rebuilt)));
        // Dropping both diamond paths into 3 cuts {0,1,2} from {3,4}:
        // node 1 off strands its 4 pairs; the (2,3) cut strands 2×2 more.
        assert_eq!(child.exposure().stranded_pairs, 8);
    }

    #[test]
    fn all_nodes_deactivated_strands_every_pair_without_panicking() {
        let (net, planner) = fixture();
        let n = net.pop_count();
        let delta = (0..n).fold(ScenarioDelta::new(), |d, v| d.deactivate_node(v));
        let exp = ScenarioFork::fork(&planner, delta).exposure();
        assert_eq!(exp.routable_pairs, 0);
        assert_eq!(exp.stranded_pairs, n * (n - 1) / 2);
        assert_eq!(exp.bit_risk_total, 0.0);
    }

    #[test]
    fn n1_specs_cover_every_node_then_every_link() {
        let (net, _) = fixture();
        let specs = scenario_specs(&net, SweepMode::N1);
        assert_eq!(specs.len(), net.pop_count() + net.link_count());
        assert_eq!(specs[0], ScenarioSpec::One(FailElement::Node(0)));
        assert_eq!(
            specs[net.pop_count()],
            ScenarioSpec::One(FailElement::Link(0, 1))
        );
    }

    #[test]
    fn n2_specs_are_seeded_deterministic_pairs_of_distinct_elements() {
        let (net, _) = fixture();
        let mode = SweepMode::N2 {
            samples: 16,
            seed: 7,
        };
        let a = scenario_specs(&net, mode);
        let b = scenario_specs(&net, mode);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for spec in &a {
            let ScenarioSpec::Two(x, y) = spec else {
                panic!("N-2 specs must be pairs")
            };
            assert_ne!(x, y, "N-2 never fails the same element twice");
        }
        let other = scenario_specs(
            &net,
            SweepMode::N2 {
                samples: 16,
                seed: 8,
            },
        );
        assert_ne!(a, other, "different seeds draw different scenarios");
    }

    #[test]
    fn ensemble_member_forecasts_depend_only_on_seed_and_index() {
        let (net, _) = fixture();
        let f1 = member_forecast(&net, 42, 3);
        let f2 = member_forecast(&net, 42, 3);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), net.pop_count());
        assert!(f1.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn sweep_output_is_identical_at_any_worker_count() {
        let (net, planner) = fixture();
        let seq = run_sweep(&planner, &net, SweepMode::N1).unwrap();
        for workers in [2, 8] {
            let par = planner.clone().with_parallelism(Parallelism::Threads(workers));
            let got = run_sweep(&par, &net, SweepMode::N1).unwrap();
            assert_eq!(got, seq, "N-1 sweep diverged at {workers} workers");
        }
    }

    #[test]
    fn budget_cut_and_resume_is_bit_identical() {
        let (net, planner) = fixture();
        let clean = run_sweep(&planner, &net, SweepMode::N1).unwrap();
        let budget = WorkBudget::unlimited().with_max_work(3);
        let run =
            run_sweep_budgeted(&planner, &net, SweepMode::N1, None, &budget, |_, _| {}).unwrap();
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = run
        else {
            panic!("expected a budget cut")
        };
        assert_eq!(stopped, StopReason::WorkExhausted);
        assert_eq!(resume_state.next_index, 3);
        assert_eq!(completed.records.len(), 3);
        let prior = SweepPrior {
            baseline: completed.baseline,
            records: completed.records,
        };
        let resumed = run_sweep_budgeted(
            &planner,
            &net,
            SweepMode::N1,
            Some(prior),
            &WorkBudget::unlimited(),
            |_, _| {},
        )
        .unwrap();
        let Budgeted::Complete(resumed) = resumed else {
            panic!("resume must complete")
        };
        assert_eq!(resumed, clean);
    }

    #[test]
    fn batch_callback_fires_on_checkpoint_boundaries() {
        let (net, planner) = fixture();
        let mut marks = Vec::new();
        let run = run_sweep_budgeted(
            &planner,
            &net,
            SweepMode::N1,
            None,
            &WorkBudget::unlimited(),
            |outcome, next| marks.push((outcome.records.len(), next)),
        )
        .unwrap();
        assert!(run.is_complete());
        // 10 scenarios (5 nodes + 5 links) → one full batch of 8.
        assert_eq!(marks, vec![(8, 8)]);
    }

    #[test]
    fn sampled_modes_reject_zero_samples_and_mismatched_networks() {
        let (net, planner) = fixture();
        let err = run_sweep(
            &planner,
            &net,
            SweepMode::N2 {
                samples: 0,
                seed: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument { ref context, .. } if context == "samples"));
        let small = Network::new(
            "tiny",
            NetworkKind::Regional,
            vec![pop("A", 35.0, -100.0)],
            vec![],
        )
        .unwrap();
        let err = run_sweep(&planner, &small, SweepMode::N1).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument { ref context, .. } if context == "network"));
    }

    #[test]
    fn ensemble_sweep_is_deterministic_and_reports_bands() {
        let (net, planner) = fixture();
        let mode = SweepMode::Ensemble {
            samples: 5,
            seed: 42,
        };
        let a = run_sweep(&planner, &net, mode).unwrap();
        let b = run_sweep(&planner, &net, mode).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.records.len(), 5);
        let (p5, p50, p95) = a.risk_bands().unwrap();
        assert!(p5 <= p50 && p50 <= p95);
    }

    #[test]
    fn ranking_orders_by_stranded_then_risk_then_index() {
        let (net, planner) = fixture();
        let outcome = run_sweep(&planner, &net, SweepMode::N1).unwrap();
        let ranked = outcome.ranked();
        assert_eq!(ranked.len(), outcome.records.len());
        for pair in ranked.windows(2) {
            let (ia, a) = &pair[0];
            let (ib, b) = &pair[1];
            let (sa, sb) = (outcome.delta_stranded(a), outcome.delta_stranded(b));
            let (ra, rb) = (outcome.delta_bit_risk(a), outcome.delta_bit_risk(b));
            let in_order = sa > sb
                || (sa == sb
                    && match ra.total_cmp(&rb) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => ia < ib,
                        std::cmp::Ordering::Less => false,
                    });
            assert!(in_order, "ranking out of order between {ia} and {ib}");
        }
        // Node 3 is the cut vertex to the stub: it strands its own 4
        // pairs plus stub-side pairs — strictly more than any other
        // element. It must rank first.
        assert_eq!(
            ranked[0].1.spec,
            ScenarioSpec::One(FailElement::Node(3)),
            "the articulation point must top the criticality report"
        );
    }

    #[test]
    fn worst_per_element_takes_the_worst_fork() {
        let (net, planner) = fixture();
        let mode = SweepMode::N2 {
            samples: 12,
            seed: 3,
        };
        let outcome = run_sweep(&planner, &net, mode).unwrap();
        let worst = outcome.worst_per_element();
        assert!(!worst.is_empty());
        for (elem, dbr, dst) in &worst {
            // Every reported element appears in some record, and its
            // reported deltas match that record's.
            let found = outcome.records.iter().any(|r| match &r.spec {
                ScenarioSpec::Two(a, b) => {
                    (a == elem || b == elem)
                        && outcome.delta_stranded(r) == *dst
                        && outcome.delta_bit_risk(r).to_bits() == dbr.to_bits()
                }
                _ => false,
            });
            assert!(found, "worst entry for {elem:?} has no backing record");
        }
    }
}
