//! Risk-aware OSPF/IS-IS link weights (§3.1 of the paper).
//!
//! "The RiskRoute metric can be used directly in standard intra-domain
//! routing protocols such as OSPF or ISIS. These protocols implement
//! shortest path routing based on link weights. … The approach would simply
//! be to create link weights that are a composite metric based on
//! operational objectives and RiskRoute."
//!
//! The catch: Eq. 1's impact factor β(i, j) depends on the *endpoints* of
//! each flow, while OSPF carries exactly one weight per link for all
//! traffic. This module builds the best single-metric approximation —
//! charging every link its length plus the reference-impact-scaled risk of
//! its endpoints — and quantifies what that deployable compromise costs
//! against the exact per-pair optimum.

use crate::intradomain::Planner;
use crate::ratios::RatioReport;
use crate::routing::{risk_sssp, Adjacency};
use riskroute_topology::Network;

/// One static weight per link: `miles + β_ref · (ρ(a) + ρ(b)) / 2`, where
/// `ρ` is the λ-scaled PoP risk and `β_ref` is the reference impact (use
/// [`mean_impact`] for the network's average pair).
///
/// Splitting each link's endpoint risks in half charges every *interior*
/// PoP of a path its full risk once (half on entry from each side), which
/// is exactly Eq. 1's interior term; only the endpoints differ from the
/// exact metric, and those are path-independent.
pub fn risk_aware_weights(network: &Network, planner: &Planner, beta_ref: f64) -> Vec<f64> {
    assert!(
        beta_ref.is_finite() && beta_ref >= 0.0,
        "reference impact must be finite and non-negative"
    );
    let w = planner.weights();
    network
        .links()
        .iter()
        .map(|l| {
            let rho_a = planner.risk().scaled(l.a, w);
            let rho_b = planner.risk().scaled(l.b, w);
            l.miles + beta_ref * (rho_a + rho_b) / 2.0
        })
        .collect()
}

/// The network's mean pair impact under the planner's model — the natural
/// `β_ref` (for §5.1's additive model it equals `2/N` exactly when shares
/// sum to 1).
pub fn mean_impact(planner: &Planner) -> f64 {
    let n = planner.pop_count();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += planner.impact(i, j);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// How well single-metric OSPF routing approximates exact RiskRoute.
#[derive(Debug, Clone, PartialEq)]
pub struct OspfEvaluation {
    /// Fraction of ordered pairs whose OSPF path is node-for-node identical
    /// to the exact RiskRoute path.
    pub path_fidelity: f64,
    /// Mean excess bit-risk of the OSPF path over the exact optimum
    /// (`mean(ospf/optimal) − 1`; 0 = perfect).
    pub mean_excess_bit_risk: f64,
    /// The §7 ratios of OSPF routing against the shortest-path baseline —
    /// directly comparable to the planner's own [`RatioReport`].
    pub report: RatioReport,
    /// Pairs evaluated.
    pub pairs: usize,
}

/// Route every pair over the static `link_weights` (plain SPF, as an OSPF
/// domain would) and score the result against exact RiskRoute.
///
/// # Panics
/// Panics when `link_weights` does not match the network's link count or
/// contains an invalid weight.
pub fn evaluate_ospf(network: &Network, planner: &Planner, link_weights: &[f64]) -> OspfEvaluation {
    assert_eq!(
        link_weights.len(),
        network.link_count(),
        "one weight per link required"
    );
    let ospf_adj = Adjacency::from_links(
        network.pop_count(),
        network
            .links()
            .iter()
            .zip(link_weights)
            .map(|(l, &w)| (l.a, l.b, w)),
    );
    let n = network.pop_count();
    let mut identical = 0usize;
    let mut excess_sum = 0.0;
    let mut pairs = 0usize;
    let mut outcomes = Vec::new();
    for i in 0..n {
        // One SPF per source, as a router would compute.
        let spf = risk_sssp(&ospf_adj, i, |_| 0.0);
        for j in 0..n {
            if i == j {
                continue;
            }
            let Some(ospf_nodes) = spf.path_to(j) else {
                continue;
            };
            let Some(exact) = planner.risk_route(i, j) else {
                continue;
            };
            let Some(shortest) = planner.shortest_route(i, j) else {
                continue;
            };
            let Ok(ospf_scored) = planner.evaluate(i, j, &ospf_nodes) else {
                continue;
            };
            if ospf_nodes == exact.nodes {
                identical += 1;
            }
            if exact.bit_risk_miles > 0.0 {
                excess_sum += ospf_scored.bit_risk_miles / exact.bit_risk_miles - 1.0;
            }
            pairs += 1;
            outcomes.push(crate::ratios::PairOutcome {
                src: i,
                dst: j,
                risk_route: ospf_scored,
                shortest,
            });
        }
    }
    assert!(pairs > 0, "network has no routable pairs");
    OspfEvaluation {
        path_fidelity: identical as f64 / pairs as f64,
        mean_excess_bit_risk: excess_sum / pairs as f64,
        report: RatioReport::aggregate(outcomes.iter()),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    fn diamond() -> (Network, Planner) {
        let net = Network::new(
            "diamond",
            NetworkKind::Regional,
            vec![
                pop("W", 35.0, -100.0),
                pop("N", 37.5, -97.0),
                pop("S", 35.0, -97.0),
                pop("E", 35.0, -94.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0], vec![0.0; 4]);
        let planner = Planner::new(
            &net,
            risk,
            PopShares::from_shares(vec![0.25; 4]),
            RiskWeights::historical_only(1e5),
        );
        (net, planner)
    }

    #[test]
    fn uniform_impact_makes_ospf_exact() {
        // When every pair shares the same β (uniform shares under the
        // additive model), the single-metric weighting reproduces RiskRoute
        // for every pair: fidelity 1, zero excess.
        let (net, planner) = diamond();
        let beta = mean_impact(&planner);
        assert!((beta - 0.5).abs() < 1e-12, "uniform shares: β = 0.5");
        let weights = risk_aware_weights(&net, &planner, beta);
        let eval = evaluate_ospf(&net, &planner, &weights);
        assert!((eval.path_fidelity - 1.0).abs() < 1e-12, "{eval:?}");
        assert!(eval.mean_excess_bit_risk.abs() < 1e-9);
        assert_eq!(eval.pairs, 12);
        // And it beats plain shortest-path routing.
        let plain = planner.ratio_report();
        assert!((eval.report.risk_reduction_ratio - plain.risk_reduction_ratio).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_impact_costs_fidelity_but_never_correctness() {
        // Skewed shares: β varies per pair, so one metric cannot be exact —
        // but OSPF paths scored in bit-risk must still land between the
        // shortest-path baseline and the exact optimum.
        let net = diamond().0;
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0], vec![0.0; 4]);
        let planner = Planner::new(
            &net,
            risk,
            PopShares::from_shares(vec![0.55, 0.2, 0.2, 0.05]),
            RiskWeights::historical_only(1e5),
        );
        let weights = risk_aware_weights(&net, &planner, mean_impact(&planner));
        let eval = evaluate_ospf(&net, &planner, &weights);
        // OSPF can never beat the exact per-pair optimum…
        assert!(eval.mean_excess_bit_risk >= -1e-12);
        let exact = planner.ratio_report();
        assert!(
            eval.report.risk_reduction_ratio <= exact.risk_reduction_ratio + 1e-9,
            "the single-metric approximation is bounded by the exact optimum"
        );
        // …and risk-aware weights can never do worse than risk-blind ones
        // in expectation over this diamond (the risky PoP is avoidable at
        // the same fidelity for every pair here, so the ratio stays
        // non-negative).
        assert!(eval.report.risk_reduction_ratio >= -1e-9);
    }

    #[test]
    fn zero_beta_reduces_to_plain_ospf() {
        let (net, planner) = diamond();
        let weights = risk_aware_weights(&net, &planner, 0.0);
        for (w, l) in weights.iter().zip(net.links()) {
            assert!((w - l.miles).abs() < 1e-12);
        }
        let eval = evaluate_ospf(&net, &planner, &weights);
        // Pure-distance OSPF equals the shortest-path baseline: zero risk
        // reduction.
        assert!(eval.report.risk_reduction_ratio.abs() < 1e-12);
    }

    #[test]
    fn weights_are_monotone_in_beta() {
        let (net, planner) = diamond();
        let lo = risk_aware_weights(&net, &planner, 0.1);
        let hi = risk_aware_weights(&net, &planner, 1.0);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b >= a);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per link")]
    fn mismatched_weights_panic() {
        let (net, planner) = diamond();
        let _ = evaluate_ospf(&net, &planner, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "reference impact must be finite")]
    fn negative_beta_panics() {
        let (net, planner) = diamond();
        let _ = risk_aware_weights(&net, &planner, -1.0);
    }
}
