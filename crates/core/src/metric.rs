//! The bit-risk-mile metric (Definition 1 / Eq. 1 of the paper).
//!
//! For a routing path `p = {p₁, …, p_K}` between PoPs i and j:
//!
//! ```text
//! r_{i,j}(p) = Σ_{x=2..K} [ d(p_x, p_{x−1}) + β_{i,j}·(λ_h·o_h(p_x) + λ_f·o_f(p_x)) ]
//! ```
//!
//! - `d` — great-circle link length (bit-miles),
//! - `β_{i,j} = c_i + c_j` — outage impact from population shares (§5.1),
//! - `o_h` — historical outage risk at the traversed PoP (§5.2),
//! - `o_f` — immediate/forecasted outage risk (§5.3),
//! - `λ_h`, `λ_f` — the operator's risk-averseness knobs (§5; §7 uses
//!   `λ_h = 10⁵` and `λ_f = 10³`).
//!
//! Risk is charged at each PoP the path *enters* (`p₂ … p_K`); the source
//! PoP's risk is sunk cost paid by every possible route and so never
//! influences route choice.

use riskroute_geo::GeoPoint;
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::Network;

/// How the outage impact β(i, j) is derived from population shares.
///
/// §5.1 defines β = c_i + c_j; §5 notes "the impact of an outage could also
/// be influenced by traffic flows between two PoPs" — the gravity model is
/// the classical traffic-matrix estimate (flow ∝ c_i·c_j).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum ImpactModel {
    /// The paper's §5.1 model: β = c_i + c_j.
    #[default]
    PopulationSum,
    /// Gravity traffic model: β = scale · c_i · c_j — outage impact tracks
    /// the traffic the PoP pair exchanges rather than the population it
    /// serves. Choose `scale` so β lands in the operator's preferred range
    /// (`scale = 2N` makes an average pair in an N-PoP network match the
    /// [`ImpactModel::PopulationSum`] average of 2/N).
    Gravity {
        /// Multiplier applied to `c_i · c_j`.
        scale: f64,
    },
}

impl ImpactModel {
    /// β(i, j) for shares `c_i`, `c_j`.
    pub fn beta(&self, ci: f64, cj: f64) -> f64 {
        match self {
            ImpactModel::PopulationSum => ci + cj,
            ImpactModel::Gravity { scale } => scale * ci * cj,
        }
    }
}


/// The λ tuning parameters of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskWeights {
    /// Historical-risk weight λ_h (> 0 for risk-averse routing; 0 disables).
    pub lambda_h: f64,
    /// Forecast-risk weight λ_f.
    pub lambda_f: f64,
}

impl RiskWeights {
    /// The paper's §7 settings: λ_h = 10⁵, λ_f = 10³.
    pub const PAPER: RiskWeights = RiskWeights {
        lambda_h: 1e5,
        lambda_f: 1e3,
    };

    /// Construct weights.
    ///
    /// # Panics
    /// Panics on negative or non-finite values.
    pub fn new(lambda_h: f64, lambda_f: f64) -> Self {
        assert!(
            lambda_h.is_finite() && lambda_h >= 0.0,
            "lambda_h must be finite and non-negative"
        );
        assert!(
            lambda_f.is_finite() && lambda_f >= 0.0,
            "lambda_f must be finite and non-negative"
        );
        RiskWeights { lambda_h, lambda_f }
    }

    /// Historical-only weights (λ_f = 0) — the Table-2 configuration.
    pub fn historical_only(lambda_h: f64) -> Self {
        RiskWeights::new(lambda_h, 0.0)
    }
}

impl Default for RiskWeights {
    /// Defaults to the paper's §7 settings.
    fn default() -> Self {
        RiskWeights::PAPER
    }
}

/// Per-PoP outage risk vectors for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRisk {
    historical: Vec<f64>,
    forecast: Vec<f64>,
}

impl NodeRisk {
    /// Build from explicit vectors (one entry per PoP).
    ///
    /// # Panics
    /// Panics when lengths differ or any value is negative/non-finite.
    pub fn new(historical: Vec<f64>, forecast: Vec<f64>) -> Self {
        assert_eq!(
            historical.len(),
            forecast.len(),
            "risk vectors must cover the same PoPs"
        );
        let valid = |v: &[f64]| v.iter().all(|x| x.is_finite() && *x >= 0.0);
        assert!(
            valid(&historical) && valid(&forecast),
            "risk values must be finite and non-negative"
        );
        NodeRisk {
            historical,
            forecast,
        }
    }

    /// Evaluate the historical model at every PoP of `network`, with zero
    /// forecast risk (the Table-2 configuration).
    pub fn from_historical(network: &Network, hazards: &HistoricalRisk) -> Self {
        let pts: Vec<GeoPoint> = network.pops().iter().map(|p| p.location).collect();
        let historical = hazards.risk_at_all(&pts);
        let forecast = vec![0.0; historical.len()];
        NodeRisk::new(historical, forecast)
    }

    /// Number of PoPs covered.
    pub fn len(&self) -> usize {
        self.historical.len()
    }

    /// Whether the vectors are empty.
    pub fn is_empty(&self) -> bool {
        self.historical.is_empty()
    }

    /// Historical risk `o_h` at PoP `v`.
    pub fn historical(&self, v: usize) -> f64 {
        self.historical[v]
    }

    /// Forecast risk `o_f` at PoP `v`.
    pub fn forecast(&self, v: usize) -> f64 {
        self.forecast[v]
    }

    /// The whole forecast vector (replay compares candidate forecasts
    /// against the active one to decide whether anything changed).
    pub fn forecast_slice(&self) -> &[f64] {
        &self.forecast
    }

    /// Replace the forecast vector (e.g. per advisory during replay).
    ///
    /// # Panics
    /// Panics on length mismatch or invalid values.
    pub fn set_forecast(&mut self, forecast: Vec<f64>) {
        assert_eq!(forecast.len(), self.historical.len(), "length mismatch");
        assert!(
            forecast.iter().all(|x| x.is_finite() && *x >= 0.0),
            "risk values must be finite and non-negative"
        );
        self.forecast = forecast;
    }

    /// The λ-combined risk charged on entering PoP `v` (before β scaling):
    /// `λ_h·o_h(v) + λ_f·o_f(v)`.
    pub fn scaled(&self, v: usize, w: RiskWeights) -> f64 {
        w.lambda_h * self.historical[v] + w.lambda_f * self.forecast[v]
    }

    /// Mean historical risk over all PoPs (Table 3's "Average PoP Risk").
    pub fn mean_historical(&self) -> f64 {
        if self.historical.is_empty() {
            0.0
        } else {
            self.historical.iter().sum::<f64>() / self.historical.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn impact_models_compute_beta() {
        assert_eq!(ImpactModel::PopulationSum.beta(0.3, 0.2), 0.5);
        assert!((ImpactModel::Gravity { scale: 10.0 }.beta(0.3, 0.2) - 0.6).abs() < 1e-12);
        assert_eq!(ImpactModel::default(), ImpactModel::PopulationSum);
        // Gravity punishes metro pairs relative to the additive model.
        let g = ImpactModel::Gravity { scale: 4.0 };
        let metro_pair = g.beta(0.4, 0.4);
        let edge_pair = g.beta(0.4, 0.01);
        assert!(
            metro_pair / edge_pair > (0.8 / 0.41),
            "sharper concentration"
        );
    }

    #[test]
    fn paper_weights() {
        assert_eq!(RiskWeights::PAPER.lambda_h, 1e5);
        assert_eq!(RiskWeights::PAPER.lambda_f, 1e3);
        assert_eq!(RiskWeights::default(), RiskWeights::PAPER);
        let h = RiskWeights::historical_only(1e6);
        assert_eq!(h.lambda_f, 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda_h must be finite")]
    fn negative_lambda_panics() {
        let _ = RiskWeights::new(-1.0, 0.0);
    }

    #[test]
    fn node_risk_accessors_and_scaling() {
        let r = NodeRisk::new(vec![1e-3, 2e-3], vec![0.0, 100.0]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.historical(0), 1e-3);
        assert_eq!(r.forecast(1), 100.0);
        let w = RiskWeights::new(1e5, 1e3);
        assert!((r.scaled(0, w) - 100.0).abs() < 1e-9);
        assert!((r.scaled(1, w) - (200.0 + 1e5)).abs() < 1e-6);
        assert!((r.mean_historical() - 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn set_forecast_replaces() {
        let mut r = NodeRisk::new(vec![0.0, 0.0], vec![0.0, 0.0]);
        r.set_forecast(vec![50.0, 100.0]);
        assert_eq!(r.forecast(1), 100.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_forecast_length_mismatch_panics() {
        let mut r = NodeRisk::new(vec![0.0], vec![0.0]);
        r.set_forecast(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "same PoPs")]
    fn mismatched_vectors_panic() {
        let _ = NodeRisk::new(vec![0.0], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_risk_panics() {
        let _ = NodeRisk::new(vec![-1.0], vec![0.0]);
    }

    #[test]
    fn zero_weights_zero_scaled_risk() {
        let r = NodeRisk::new(vec![5.0], vec![7.0]);
        assert_eq!(r.scaled(0, RiskWeights::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn empty_node_risk() {
        let r = NodeRisk::new(vec![], vec![]);
        assert!(r.is_empty());
        assert_eq!(r.mean_historical(), 0.0);
    }
}
