//! # RiskRoute
//!
//! A reproduction of *RiskRoute: A Framework for Mitigating Network Outage
//! Threats* (Eriksson, Durairajan, Barford — ACM CoNEXT 2013).
//!
//! RiskRoute routes and provisions networks around **bit-risk miles**: the
//! geographic distance network traffic travels plus the impact-scaled,
//! expected outage risk it encounters along the way (Definition 1 / Eq. 1 of
//! the paper). On top of that metric the framework provides:
//!
//! - **Intradomain RiskRoute** ([`intradomain`]): the minimum bit-risk-mile
//!   path between two PoPs of one provider (Eq. 3), and the aggregate
//!   risk-reduction / distance-increase trade-off against shortest-path
//!   routing (Eqs. 5–6).
//! - **Interdomain RiskRoute** ([`interdomain`]): upper/lower bit-risk
//!   bounds when traffic crosses peering networks (§6.2).
//! - **Provisioning** ([`provisioning`]): the new PoP-to-PoP links that most
//!   reduce total bit-risk miles (Eq. 4, with the paper's >50 % bit-mile
//!   shortcut filter), greedily extended to k links.
//! - **Peering recommendations** ([`peering`]): the best new peering /
//!   multihoming egress for a network (§6.3).
//! - **Disaster replay** ([`replay`]): advisory-by-advisory evaluation of
//!   routing during Hurricanes Irene, Katrina, and Sandy (§7.3).
//! - **Backup routing** ([`backup`]): the §3.1 deployment shapes — ranked
//!   loopless alternates (MPLS failover) and RFC 5714-style loop-free
//!   alternate next hops, both under the bit-risk metric.
//! - **Failure injection** ([`failure`]): impose a storm's damage on a
//!   topology and measure partitions and stranded population; rank PoPs by
//!   risk-weighted criticality.
//! - **Corridor risk** ([`corridor`]): integrate hazard risk along each
//!   link's line-of-sight fiber path and group links into shared-risk link
//!   groups.
//! - **Deployment paths** (§3.1): risk-aware OSPF link weights with a
//!   fidelity evaluation against the exact optimum ([`ospf`]), and
//!   MRC-style precomputed backup configurations ([`mrc`]).
//! - **Extensions** the paper sketches: composite SLA objectives
//!   ([`composite`], §6.4) and shared-risk analysis between providers
//!   ([`sharedrisk`], §8).
//! - **Scenario forks & resilience sweeps** ([`scenario`]): copy-on-write
//!   failure forks of a planner (deactivated PoPs/links, forecast
//!   overrides) that compose for N-2, plus deterministic N-1/N-2 sweep
//!   drivers and seeded Monte-Carlo hazard ensembles producing ranked
//!   criticality reports.
//! - **Budgeted execution & checkpoints** ([`budget`], [`checkpoint`]):
//!   cooperative deadlines, work caps, and cancellation for the expensive
//!   computations, plus crash-safe snapshot/resume of provisioning,
//!   replay, and scenario sweeps.
//!
//! # Quickstart
//!
//! ```
//! use riskroute::prelude::*;
//!
//! // Synthesize the paper's evaluation corpus (23 US networks) and a
//! // reduced-size population/hazard substrate for speed.
//! let corpus = Corpus::standard(42);
//! let population = PopulationModel::synthesize(42, 2_000);
//! let hazards = HistoricalRisk::standard(42, Some(300));
//!
//! let level3 = corpus.network("Level3").unwrap();
//! let planner = Planner::for_network(level3, &population, &hazards, RiskWeights::default());
//!
//! // Minimum bit-risk-mile route vs geographic shortest path.
//! let risky = planner.shortest_route(0, 5).unwrap();
//! let safe = planner.risk_route(0, 5).unwrap();
//! assert!(safe.bit_risk_miles <= risky.bit_risk_miles + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod backup;
pub mod budget;
pub mod chaos;
pub mod checkpoint;
pub mod composite;
pub mod corridor;
pub mod engine;
pub mod error;
pub mod failure;
pub mod interdomain;
pub mod intradomain;
pub mod metric;
pub mod mrc;
pub mod ospf;
pub mod peering;
pub mod provisioning;
pub mod ratios;
pub mod replay;
pub mod routing;
pub mod scenario;
pub mod sharedrisk;

pub use budget::{Budgeted, StopReason, WorkBudget};
pub use error::{render_chain, Error, Result};
pub use intradomain::{Planner, PlannerPool};
pub use riskroute_par::Parallelism;
pub use metric::{NodeRisk, RiskWeights};
pub use ratios::{PairOutcome, RatioReport};
pub use routing::RoutedPath;
pub use scenario::{
    base_exposure, run_sweep, run_sweep_budgeted, scenario_specs, ExposureReport, FailElement,
    ScenarioDelta, ScenarioFork, ScenarioSpec, SweepMode, SweepOutcome, SweepPrior, SweepRecord,
    SweepResume,
};

/// Convenient re-exports for driving the framework end to end.
pub mod prelude {
    pub use crate::backup::{backup_paths, lfa_next_hops};
    pub use crate::budget::{Budgeted, StopReason, WorkBudget};
    pub use crate::checkpoint::{LoadOutcome, Snapshot};
    pub use crate::failure::{criticality_ranking, storm_failure};
    pub use crate::interdomain::InterdomainAnalysis;
    pub use crate::intradomain::{Planner, PlannerPool};
    pub use crate::metric::{NodeRisk, RiskWeights};
    pub use crate::provisioning::{best_additional_link, greedy_links};
    pub use crate::ratios::RatioReport;
    pub use crate::replay::DisasterReplay;
    pub use crate::routing::RoutedPath;
    pub use crate::scenario::{
        run_sweep, ScenarioDelta, ScenarioFork, SweepMode, SweepOutcome,
    };
    pub use riskroute_forecast::{advisories_for, Storm};
    pub use riskroute_par::Parallelism;
    pub use riskroute_hazard::HistoricalRisk;
    pub use riskroute_population::{PopShares, PopulationModel};
    pub use riskroute_topology::{Corpus, Network, NetworkKind};
}
