//! Shared-risk analysis between providers — the §8 future-work extension.
//!
//! Two ISPs that concentrate infrastructure in the same high-risk metros
//! fail together: multihoming across them buys less resilience than the
//! peering graph suggests. This module quantifies that geographic risk
//! coupling: for every co-located PoP pair between two networks, both PoPs
//! are exposed to the same disasters, so the *shared* risk of the pair is
//! the smaller of the two PoPs' historical risks. Summing over co-located
//! pairs (counting each PoP once, via greedy matching) and normalizing by
//! the networks' own total risk yields a `[0, 1]` coupling coefficient.

use riskroute_geo::distance::great_circle_miles;
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::Network;

/// Result of a shared-risk comparison between two networks.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRiskReport {
    /// First network.
    pub network_a: String,
    /// Second network.
    pub network_b: String,
    /// Greedily matched co-located PoP pairs `(a_pop, b_pop, miles)`.
    pub matched_pairs: Vec<(usize, usize, f64)>,
    /// Sum over matched pairs of `min(o_h(a), o_h(b))`.
    pub shared_risk: f64,
    /// `shared_risk / min(Σ o_h(A), Σ o_h(B))` — the coupling coefficient
    /// in `[0, 1]`. Zero when either network carries no risk.
    pub coupling: f64,
}

/// Compute the shared-risk report for two networks.
///
/// PoPs within `radius_miles` are co-located; each PoP participates in at
/// most one matched pair (greedy nearest-first matching), so a dense metro
/// is not double counted.
///
/// # Panics
/// Panics when `radius_miles` is not positive/finite.
pub fn shared_risk(
    a: &Network,
    b: &Network,
    hazards: &HistoricalRisk,
    radius_miles: f64,
) -> SharedRiskReport {
    assert!(
        radius_miles.is_finite() && radius_miles > 0.0,
        "radius must be positive"
    );
    let risk_a: Vec<f64> = a.pops().iter().map(|p| hazards.risk(p.location)).collect();
    let risk_b: Vec<f64> = b.pops().iter().map(|p| hazards.risk(p.location)).collect();

    // All co-located candidate pairs, nearest first.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (i, p) in a.pops().iter().enumerate() {
        for (j, q) in b.pops().iter().enumerate() {
            let d = great_circle_miles(p.location, q.location);
            if d <= radius_miles {
                pairs.push((i, j, d));
            }
        }
    }
    pairs.sort_by(|x, y| x.2.total_cmp(&y.2).then(x.0.cmp(&y.0)));

    // Greedy one-to-one matching.
    let mut used_a = vec![false; a.pop_count()];
    let mut used_b = vec![false; b.pop_count()];
    let mut matched = Vec::new();
    let mut shared = 0.0;
    for (i, j, d) in pairs {
        if used_a[i] || used_b[j] {
            continue;
        }
        used_a[i] = true;
        used_b[j] = true;
        shared += risk_a[i].min(risk_b[j]);
        matched.push((i, j, d));
    }

    let total_a: f64 = risk_a.iter().sum();
    let total_b: f64 = risk_b.iter().sum();
    let denom = total_a.min(total_b);
    SharedRiskReport {
        network_a: a.name().to_string(),
        network_b: b.name().to_string(),
        matched_pairs: matched,
        shared_risk: shared,
        coupling: if denom > 0.0 { shared / denom } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn net(name: &str, coords: &[(f64, f64)]) -> Network {
        let pops = coords
            .iter()
            .enumerate()
            .map(|(i, &(lat, lon))| Pop {
                name: format!("{name}-{i}"),
                location: GeoPoint::new(lat, lon).unwrap(),
            })
            .collect();
        let links = (0..coords.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        Network::new(name, NetworkKind::Regional, pops, links).unwrap()
    }

    fn hazards() -> HistoricalRisk {
        HistoricalRisk::standard(42, Some(300))
    }

    #[test]
    fn identical_footprints_couple_fully() {
        let a = net("a", &[(29.95, -90.07), (30.45, -91.15)]); // NO + Baton Rouge
        let b = net("b", &[(29.96, -90.08), (30.46, -91.16)]);
        let r = shared_risk(&a, &b, &hazards(), 30.0);
        assert_eq!(r.matched_pairs.len(), 2);
        assert!(r.coupling > 0.95, "coupling {}", r.coupling);
    }

    #[test]
    fn disjoint_footprints_do_not_couple() {
        let a = net("a", &[(29.95, -90.07)]); // New Orleans
        let b = net("b", &[(47.61, -122.33)]); // Seattle
        let r = shared_risk(&a, &b, &hazards(), 30.0);
        assert!(r.matched_pairs.is_empty());
        assert_eq!(r.shared_risk, 0.0);
        assert_eq!(r.coupling, 0.0);
    }

    #[test]
    fn matching_is_one_to_one() {
        // Three b-PoPs stacked in one metro can match at most one a-PoP.
        let a = net("a", &[(32.78, -96.80)]);
        let b = net("b", &[(32.79, -96.81), (32.77, -96.79), (32.78, -96.82)]);
        let r = shared_risk(&a, &b, &hazards(), 30.0);
        assert_eq!(r.matched_pairs.len(), 1);
    }

    #[test]
    fn gulf_pair_couples_more_than_mixed_pair() {
        let gulf_a = net("ga", &[(29.95, -90.07), (30.69, -88.04)]);
        let gulf_b = net("gb", &[(29.96, -90.06), (30.70, -88.05)]);
        let inland_b = net("ib", &[(39.74, -104.99), (40.76, -111.89)]);
        let h = hazards();
        let coupled = shared_risk(&gulf_a, &gulf_b, &h, 30.0);
        let uncoupled = shared_risk(&gulf_a, &inland_b, &h, 30.0);
        assert!(coupled.coupling > uncoupled.coupling);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn invalid_radius_panics() {
        let a = net("a", &[(29.95, -90.07)]);
        let _ = shared_risk(&a, &a, &hazards(), 0.0);
    }
}
