//! Interdomain RiskRoute (§6.2): bit-risk bounds when traffic crosses
//! peering networks.
//!
//! The paper characterizes multi-network bit-risk miles by two bounds:
//! the **upper bound** is shortest-path routing "throughout all peering
//! networks" (no network cooperates on risk), and the **lower bound** is
//! RiskRoute given control of "every routing decision in every network".
//! Both are paths through the same *merged* topology — all PoPs of all
//! networks, intra-network links, plus inter-network hand-off links at
//! co-located PoPs of peering networks.

use crate::intradomain::Planner;
use crate::metric::{NodeRisk, RiskWeights};
use crate::ratios::{PairOutcome, RatioReport};
use riskroute_hazard::HistoricalRisk;
use riskroute_population::{PopShares, PopulationModel};
use riskroute_topology::colocation::{colocations, DEFAULT_COLOCATION_MILES};
use riskroute_topology::{Network, NetworkKind, PeeringGraph, Pop, PopId};
use std::collections::HashMap;
use std::ops::Range;

/// The merged multi-network topology with provenance.
#[derive(Debug, Clone)]
pub struct InterdomainTopology {
    merged: Network,
    /// merged PoP id → (network index, PoP id within that network).
    provenance: Vec<(usize, PopId)>,
    /// network name → index into `ranges`.
    name_index: HashMap<String, usize>,
    /// network index → name (inverse of `name_index`).
    names: Vec<String>,
    /// Per network, the merged-id range of its PoPs.
    ranges: Vec<Range<usize>>,
    /// Number of inter-network hand-off links created.
    handoff_links: usize,
}

impl InterdomainTopology {
    /// Merge `networks` under `peering`. PoPs of peering networks within
    /// `colocation_miles` are joined by hand-off links; a peering pair with
    /// no co-located PoPs falls back to joining its single nearest PoP pair
    /// (a private interconnect), so declared peerings are always usable.
    ///
    /// # Panics
    /// Panics on duplicate network names or an empty network list.
    pub fn merge(networks: &[&Network], peering: &PeeringGraph, colocation_miles: f64) -> Self {
        assert!(!networks.is_empty(), "need at least one network");
        let span = riskroute_obs::span!("interdomain_merge", networks = networks.len());
        let mut name_index = HashMap::new();
        let mut names = Vec::with_capacity(networks.len());
        let mut ranges = Vec::with_capacity(networks.len());
        let mut provenance = Vec::new();
        let mut pops: Vec<Pop> = Vec::new();
        let mut links: Vec<(PopId, PopId)> = Vec::new();

        for (ni, net) in networks.iter().enumerate() {
            let prev = name_index.insert(net.name().to_string(), ni);
            assert!(prev.is_none(), "duplicate network name {}", net.name());
            names.push(net.name().to_string());
            let offset = pops.len();
            ranges.push(offset..offset + net.pop_count());
            for (pi, p) in net.pops().iter().enumerate() {
                pops.push(Pop {
                    name: format!("{}:{}", net.name(), p.name),
                    location: p.location,
                });
                provenance.push((ni, pi));
            }
            for l in net.links() {
                links.push((offset + l.a, offset + l.b));
            }
        }

        // Hand-off links between peering networks. Dedupe against the whole
        // link set as we go: intra-network links are unique by construction,
        // and screening hand-offs here (instead of trusting the co-location
        // sweep) makes the final `Network::new` infallible by construction.
        let mut seen: std::collections::HashSet<(PopId, PopId)> = links
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let mut handoff_links = 0;
        let mut push_handoff = |links: &mut Vec<(PopId, PopId)>, x: PopId, y: PopId| {
            if x != y && seen.insert((x.min(y), x.max(y))) {
                links.push((x, y));
                handoff_links += 1;
            }
        };
        for a in 0..networks.len() {
            for b in (a + 1)..networks.len() {
                if !peering.are_peers(networks[a].name(), networks[b].name()) {
                    continue;
                }
                let colos = colocations(networks[a], networks[b], colocation_miles);
                if colos.is_empty() {
                    // Nearest-pair fallback: peering exists, so some private
                    // interconnect must carry it.
                    if let Some((pa, pb)) = nearest_pair(networks[a], networks[b]) {
                        push_handoff(&mut links, ranges[a].start + pa, ranges[b].start + pb);
                    }
                } else {
                    for c in colos {
                        push_handoff(
                            &mut links,
                            ranges[a].start + c.own_pop,
                            ranges[b].start + c.other_pop,
                        );
                    }
                }
            }
        }

        let merged = match Network::new("interdomain", NetworkKind::Tier1, pops, links) {
            Ok(net) => net,
            // Endpoints are offset into range, self-links and duplicates are
            // screened above — structural validity holds by construction.
            Err(_) => unreachable!("merged topology is structurally valid"),
        };
        let mut span = span;
        if span.is_active() {
            span.field("merged_pops", merged.pop_count());
            span.field("handoff_links", handoff_links);
            riskroute_obs::counter_add("interdomain_merges", 1);
            riskroute_obs::counter_add("interdomain_handoff_links", handoff_links as u64);
        }
        InterdomainTopology {
            merged,
            provenance,
            name_index,
            names,
            ranges,
            handoff_links,
        }
    }

    /// The merged network.
    pub fn merged(&self) -> &Network {
        &self.merged
    }

    /// Number of inter-network hand-off links.
    pub fn handoff_links(&self) -> usize {
        self.handoff_links
    }

    /// Merged id of `pop` in the named network.
    pub fn merged_id(&self, network: &str, pop: PopId) -> Option<usize> {
        let &ni = self.name_index.get(network)?;
        let range = &self.ranges[ni];
        (pop < range.len()).then(|| range.start + pop)
    }

    /// The merged ids of all PoPs of the named network.
    pub fn pops_of(&self, network: &str) -> Option<Vec<usize>> {
        let &ni = self.name_index.get(network)?;
        Some(self.ranges[ni].clone().collect())
    }

    /// Provenance of a merged PoP id: `(network name, PoP id)`.
    pub fn provenance(&self, merged_id: usize) -> (&str, PopId) {
        let (ni, pi) = self.provenance[merged_id];
        (self.names[ni].as_str(), pi)
    }
}

fn nearest_pair(a: &Network, b: &Network) -> Option<(PopId, PopId)> {
    let mut best: Option<(PopId, PopId, f64)> = None;
    for (i, p) in a.pops().iter().enumerate() {
        for (j, q) in b.pops().iter().enumerate() {
            let d = riskroute_geo::distance::great_circle_miles(p.location, q.location);
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((i, j, d));
            }
        }
    }
    best.map(|(i, j, _)| (i, j))
}

/// The interdomain analysis engine: merged topology plus a planner whose
/// shares/risk cover the merged PoP set.
#[derive(Debug, Clone)]
pub struct InterdomainAnalysis {
    topo: InterdomainTopology,
    planner: Planner,
}

impl InterdomainAnalysis {
    /// Build the analysis with the standard instantiation.
    ///
    /// Population shares follow §5.1 *per network*: each provider's PoPs
    /// split the population that provider serves (nearest-neighbour
    /// assignment, state-confined for geographically constrained regional
    /// networks), and the merged share vector is the concatenation — so the
    /// impact β(i,j) of a cross-provider pair reflects each endpoint's
    /// standing within its own network, exactly as in the intradomain case.
    /// Historical hazard risk; default co-location radius.
    pub fn new(
        networks: &[&Network],
        peering: &PeeringGraph,
        population: &PopulationModel,
        hazards: &HistoricalRisk,
        weights: RiskWeights,
    ) -> Self {
        let topo = InterdomainTopology::merge(networks, peering, DEFAULT_COLOCATION_MILES);
        let mut all_shares = Vec::with_capacity(topo.merged().pop_count());
        for net in networks {
            let states = riskroute_topology::regional::spec_for(net.name())
                .filter(|_| net.kind() == NetworkKind::Regional)
                .map(|s| s.states);
            let shares = PopShares::assign(population, net, states);
            all_shares.extend_from_slice(shares.shares());
        }
        let shares = PopShares::from_shares(all_shares);
        let risk = NodeRisk::from_historical(topo.merged(), hazards);
        let planner = Planner::new(topo.merged(), risk, shares, weights);
        InterdomainAnalysis { topo, planner }
    }

    /// Build from pre-assembled parts (tests, custom share models).
    pub fn from_parts(topo: InterdomainTopology, planner: Planner) -> Self {
        assert_eq!(
            planner.pop_count(),
            topo.merged().pop_count(),
            "planner must cover the merged topology"
        );
        InterdomainAnalysis { topo, planner }
    }

    /// The merged topology.
    pub fn topology(&self) -> &InterdomainTopology {
        &self.topo
    }

    /// The underlying planner (for replay and peering search).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Mutable planner access (replay updates forecast risk).
    pub fn planner_mut(&mut self) -> &mut Planner {
        &mut self.planner
    }

    /// §6.2 bounds for a merged pair: `(upper, lower)` where upper is the
    /// shortest path's bit-risk and lower is the RiskRoute path's. `None`
    /// when unreachable.
    pub fn bounds(
        &self,
        src: usize,
        dst: usize,
    ) -> Option<(crate::routing::RoutedPath, crate::routing::RoutedPath)> {
        let upper = self.planner.shortest_route(src, dst)?;
        let lower = self.planner.risk_route(src, dst)?;
        Some((upper, lower))
    }

    /// Pair outcomes for a source/destination sweep over merged ids.
    pub fn pair_outcomes(&self, sources: &[usize], dests: &[usize]) -> Vec<PairOutcome> {
        self.planner.pair_outcomes(sources, dests)
    }

    /// The §7 interdomain ratio report for one regional network: sources
    /// are its PoPs, destinations are all PoPs of `dest_networks`.
    ///
    /// When a storm (or a chaos plan) partitions the merged topology, the
    /// cross-component pairs are surfaced as
    /// [`RatioReport::stranded_pairs`] and the ratios aggregate the pairs
    /// that still route — the report never aborts on a partition.
    ///
    /// Returns `None` only when a network name is unknown or the sweep has
    /// neither informative nor stranded pairs (e.g. a single-PoP source set
    /// routed to itself).
    pub fn regional_report(&self, regional: &str, dest_networks: &[&str]) -> Option<RatioReport> {
        let sources = self.topo.pops_of(regional)?;
        let mut dests = Vec::new();
        for d in dest_networks {
            dests.extend(self.topo.pops_of(d)?);
        }
        let sweep = self.planner.pair_sweep(&sources, &dests);
        let report = RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len());
        (report.is_informative() || report.stranded_pairs > 0).then_some(report)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// Two small networks sharing the Dallas metro, plus one distant
    /// non-peer.
    fn corpus() -> (Network, Network, Network, PeeringGraph) {
        let a = Network::new(
            "A",
            NetworkKind::Regional,
            vec![pop("Dallas", 32.78, -96.80), pop("Houston", 29.76, -95.37)],
            vec![(0, 1)],
        )
        .unwrap();
        let b = Network::new(
            "B",
            NetworkKind::Regional,
            vec![
                pop("Dallas-B", 32.80, -96.85),
                pop("Memphis", 35.15, -90.05),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let c = Network::new(
            "C",
            NetworkKind::Regional,
            vec![
                pop("Seattle", 47.61, -122.33),
                pop("Portland", 45.52, -122.68),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let mut peering = PeeringGraph::new();
        peering.add_peering("A", "B");
        peering.add_network("C");
        (a, b, c, peering)
    }

    fn analysis() -> InterdomainAnalysis {
        let (a, b, c, peering) = corpus();
        let topo = InterdomainTopology::merge(&[&a, &b, &c], &peering, DEFAULT_COLOCATION_MILES);
        let n = topo.merged().pop_count();
        let planner = Planner::new(
            topo.merged(),
            NodeRisk::new(vec![0.0; n], vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::PAPER,
        );
        InterdomainAnalysis::from_parts(topo, planner)
    }

    #[test]
    fn merge_counts_and_provenance() {
        let (a, b, c, peering) = corpus();
        let topo = InterdomainTopology::merge(&[&a, &b, &c], &peering, DEFAULT_COLOCATION_MILES);
        assert_eq!(topo.merged().pop_count(), 6);
        // 3 intra links + 1 Dallas hand-off.
        assert_eq!(topo.merged().link_count(), 4);
        assert_eq!(topo.handoff_links(), 1);
        assert_eq!(topo.provenance(0), ("A", 0));
        assert_eq!(topo.provenance(3), ("B", 1));
        assert_eq!(topo.merged_id("B", 0), Some(2));
        assert_eq!(topo.merged_id("B", 7), None);
        assert_eq!(topo.merged_id("Z", 0), None);
        assert_eq!(topo.pops_of("C"), Some(vec![4, 5]));
    }

    #[test]
    fn peering_enables_cross_network_routes() {
        let an = analysis();
        let houston = an.topology().merged_id("A", 1).unwrap();
        let memphis = an.topology().merged_id("B", 1).unwrap();
        let (upper, lower) = an.bounds(houston, memphis).unwrap();
        // Route must go Houston → Dallas(A) → Dallas(B) → Memphis.
        assert_eq!(upper.nodes.len(), 4);
        assert!(lower.bit_risk_miles <= upper.bit_risk_miles + 1e-9);
    }

    #[test]
    fn non_peers_are_unreachable() {
        let an = analysis();
        let houston = an.topology().merged_id("A", 1).unwrap();
        let seattle = an.topology().merged_id("C", 0).unwrap();
        assert!(an.bounds(houston, seattle).is_none());
    }

    #[test]
    fn lower_bound_never_exceeds_upper() {
        let (a, b, c, peering) = corpus();
        let topo = InterdomainTopology::merge(&[&a, &b, &c], &peering, DEFAULT_COLOCATION_MILES);
        let n = topo.merged().pop_count();
        // Make the B-Dallas hand-off PoP risky so the bounds separate.
        let mut hist = vec![0.0; n];
        hist[2] = 1e-3;
        let planner = Planner::new(
            topo.merged(),
            NodeRisk::new(hist, vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::historical_only(1e5),
        );
        let an = InterdomainAnalysis::from_parts(topo, planner);
        for s in 0..4 {
            for d in 0..4 {
                if s == d {
                    continue;
                }
                if let Some((upper, lower)) = an.bounds(s, d) {
                    assert!(lower.bit_risk_miles <= upper.bit_risk_miles + 1e-9);
                }
            }
        }
    }

    #[test]
    fn nearest_pair_fallback_connects_non_colocated_peers() {
        let (a, _, c, _) = corpus();
        let mut peering = PeeringGraph::new();
        peering.add_peering("A", "C"); // Texas ↔ Pacific Northwest: nothing co-located
        let topo = InterdomainTopology::merge(&[&a, &c], &peering, DEFAULT_COLOCATION_MILES);
        assert_eq!(topo.handoff_links(), 1);
        let dallas = topo.merged_id("A", 0).unwrap();
        let seattle = topo.merged_id("C", 0).unwrap();
        let g = topo.merged().distance_graph();
        assert!(riskroute_graph::dijkstra::shortest_path(&g, dallas, seattle).is_some());
    }

    #[test]
    fn regional_report_aggregates_cross_network_pairs() {
        let an = analysis();
        let report = an.regional_report("A", &["A", "B"]).unwrap();
        assert!(report.pairs > 0);
        // Zero risk everywhere ⇒ RiskRoute equals shortest path.
        assert!(report.risk_reduction_ratio.abs() < 1e-12);
        assert!(report.distance_increase_ratio.abs() < 1e-12);
        assert!(an.regional_report("Nope", &["A"]).is_none());
    }

    #[test]
    fn partitioned_merge_surfaces_stranded_pairs() {
        // A and C are merged but do NOT peer: the merged graph has two
        // components. The regional report must still aggregate A's internal
        // pairs while counting every A→C pair as stranded.
        let an = analysis(); // C never peers with A or B
        let report = an.regional_report("A", &["A", "C"]).unwrap();
        assert!(report.is_informative(), "A's internal pairs still route");
        // 2 sources × 2 unreachable C PoPs.
        assert_eq!(report.stranded_pairs, 4);
        assert!(report.risk_reduction_ratio.is_finite());
        assert!(report.distance_increase_ratio.is_finite());
    }

    #[test]
    #[should_panic(expected = "duplicate network name")]
    fn duplicate_names_panic() {
        let (a, _, _, peering) = corpus();
        let _ = InterdomainTopology::merge(&[&a, &a], &peering, DEFAULT_COLOCATION_MILES);
    }

    #[test]
    #[should_panic(expected = "at least one network")]
    fn empty_merge_panics() {
        let peering = PeeringGraph::new();
        let _ = InterdomainTopology::merge(&[], &peering, DEFAULT_COLOCATION_MILES);
    }
}
