//! Robustness analysis: which new PoP-to-PoP links best reduce total
//! bit-risk miles (§6.3, Eq. 4).
//!
//! The candidate set `E_C` is "the collection of all links that currently do
//! not appear in the network", restricted by the paper's footnote 3 to
//! "links that would result in a >50 % reduction in bit-miles between the
//! two PoPs" — which removes impractical cross-country express links.
//!
//! Evaluating every candidate naively re-solves all-pairs RiskRoute per
//! candidate. We instead exploit the structure of the metric: for a pair
//! (i, j), a new link (a, b) can only improve the route via
//! `dist(i→a) + w(a→b) + dist(b→j)` (or the mirror), and
//! `dist(b→j) = dist(j→b) + β·(ρ(j) − ρ(b))` because reversing a path only
//! relocates the endpoint risk charges. Two SSSP trees per pair therefore
//! price *every* candidate in O(1) each.

use crate::budget::{Budgeted, WorkBudget};
use crate::intradomain::{unordered_pairs, Planner, PAIR_WAVE};
use riskroute_geo::distance::great_circle_miles;
use riskroute_par::Parallelism;
use riskroute_topology::{Network, PopId};

/// The paper's footnote-3 shortcut threshold: a candidate link must cut the
/// bit-mile distance between its endpoints by more than this fraction.
pub const SHORTCUT_THRESHOLD: f64 = 0.5;

/// Relaxation ladder for [`greedy_links`]: when no candidate passes the
/// strict footnote-3 threshold (well-meshed maps have no stretch-2 pairs at
/// all), the search relaxes stepwise — the footnote's *intent* is to
/// exclude impractical cross-country links, which the milder thresholds
/// still do. The threshold actually used is recorded on every
/// [`CandidateLink`].
pub const THRESHOLD_LADDER: &[f64] = &[SHORTCUT_THRESHOLD, 0.35, 0.2];

/// A scored candidate link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateLink {
    /// One endpoint.
    pub a: PopId,
    /// The other endpoint.
    pub b: PopId,
    /// Great-circle length of the would-be link, miles.
    pub miles: f64,
    /// Total aggregated bit-risk miles of the network *with* this link.
    pub total_bit_risk: f64,
    /// The shortcut threshold the candidate passed (footnote 3 uses 0.5;
    /// [`greedy_links`] may relax along [`THRESHOLD_LADDER`]).
    pub shortcut_threshold: f64,
}

/// Result of a greedy link-addition run.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyLinks {
    /// Total aggregated bit-risk miles of the original network.
    pub original_bit_risk: f64,
    /// The links chosen, in greedy order, with the total after each
    /// addition.
    pub added: Vec<CandidateLink>,
}

impl GreedyLinks {
    /// Fraction of the original bit-risk miles remaining after each added
    /// link — the y-axis of Figure 10.
    pub fn fraction_series(&self) -> Vec<f64> {
        self.added
            .iter()
            .map(|c| c.total_bit_risk / self.original_bit_risk)
            .collect()
    }
}

/// Enumerate the candidate links of `network`: non-edges whose direct
/// distance is under `(1 − SHORTCUT_THRESHOLD)` of the current bit-mile
/// shortest-path distance between the endpoints (footnote 3).
pub fn candidate_links(network: &Network, planner: &Planner) -> Vec<(PopId, PopId, f64)> {
    candidate_links_with_threshold(network, planner, SHORTCUT_THRESHOLD)
}

/// [`candidate_links`] with an explicit shortcut threshold in `(0, 1)`.
///
/// # Panics
/// Panics when `threshold` is outside `(0, 1)`.
pub fn candidate_links_with_threshold(
    network: &Network,
    planner: &Planner,
    threshold: f64,
) -> Vec<(PopId, PopId, f64)> {
    assert!(
        threshold.is_finite() && threshold > 0.0 && threshold < 1.0,
        "threshold must be in (0, 1)"
    );
    let n = network.pop_count();
    let per_source = |i: usize| {
        // Pure-distance tree from i (β = 0 ⇒ entry costs vanish).
        let tree = planner.risk_tree_distance(i);
        let mut out = Vec::new();
        for j in (i + 1)..n {
            if network.has_link(i, j) {
                continue;
            }
            let direct = great_circle_miles(network.location(i), network.location(j));
            let current = tree.dist(j);
            // Disconnected pairs always qualify: any new link is an infinite
            // improvement.
            if !current.is_finite() || direct < (1.0 - threshold) * current {
                out.push((i, j, direct));
            }
        }
        out
    };
    match planner.parallelism() {
        Parallelism::Sequential => (0..n).flat_map(per_source).collect(),
        par => {
            // One SSSP tree per source in parallel; concatenating the
            // per-source lists in source order reproduces the sequential
            // push order exactly (pure filtering, no float accumulation).
            let sources: Vec<usize> = (0..n).collect();
            riskroute_par::par_map_collect(par, &sources, |_, &i| per_source(i))
                .into_iter()
                .flatten()
                .collect()
        }
    }
}

/// Candidates at the strictest rung of [`THRESHOLD_LADDER`] that admits
/// any, plus the threshold used. Empty only when even the mildest rung has
/// no candidates.
pub fn candidate_links_adaptive(
    network: &Network,
    planner: &Planner,
) -> (Vec<(PopId, PopId, f64)>, f64) {
    for &t in THRESHOLD_LADDER {
        let c = candidate_links_with_threshold(network, planner, t);
        if !c.is_empty() {
            return (c, t);
        }
    }
    let mildest = THRESHOLD_LADDER.last().copied().unwrap_or(SHORTCUT_THRESHOLD);
    (Vec::new(), mildest)
}

/// Score every candidate link: the network's total aggregated bit-risk
/// miles if that single link were added (Eq. 4's objective). Candidates are
/// returned sorted best (lowest total) first.
pub fn score_candidates(
    network: &Network,
    planner: &Planner,
    candidates: &[(PopId, PopId, f64)],
) -> Vec<CandidateLink> {
    score_candidates_budgeted(network, planner, candidates, &WorkBudget::unlimited())
}

/// [`score_candidates`], charging one unit of work per candidate evaluated
/// to `budget`. The sweep itself is one clean stage: it always completes
/// once started (pricing is O(1) per candidate after the per-pair SSSP
/// trees), and callers observe exhaustion at the next stage boundary.
pub fn score_candidates_budgeted(
    network: &Network,
    planner: &Planner,
    candidates: &[(PopId, PopId, f64)],
    budget: &WorkBudget,
) -> Vec<CandidateLink> {
    let _obs = budget.scope().enter();
    budget.charge(candidates.len() as u64);
    riskroute_obs::counter_add("provision_candidates_scored", candidates.len() as u64);
    let n = network.pop_count();
    let rho = planner.rho();
    let mut totals = vec![0.0_f64; candidates.len()];

    match planner.parallelism() {
        Parallelism::Sequential => {
            for i in 0..n {
                for j in (i + 1)..n {
                    let beta = planner.impact(i, j);
                    let tree_i = planner.risk_tree(i, beta);
                    let tree_j = planner.risk_tree(j, beta);
                    let pricer = ViaPricer::new(&tree_i, &tree_j, rho, beta, j);
                    let old = tree_i.dist(j);
                    for (c, &(a, b, miles)) in candidates.iter().enumerate() {
                        let new = old.min(pricer.best_via(a, b, miles));
                        // Unreachable pairs stay unreachable only if the
                        // candidate does not bridge them; skip still-infinite
                        // contributions so totals remain comparable (all
                        // candidates see the same pair set).
                        if new.is_finite() {
                            totals[c] += new;
                        }
                    }
                }
            }
        }
        par => {
            // Each pair's two SSSP trees are priced in parallel; the
            // per-candidate `old.min(via)` vectors are then folded
            // sequentially in pair-major order — the exact nesting of the
            // sequential loop above — because float addition is
            // non-associative and the totals feed a total-ordered argmax.
            for wave in unordered_pairs(n).chunks(PAIR_WAVE) {
                let contribs = riskroute_par::par_map_collect(par, wave, |_, &(i, j)| {
                    let beta = planner.impact(i, j);
                    let tree_i = planner.risk_tree(i, beta);
                    let tree_j = planner.risk_tree(j, beta);
                    let pricer = ViaPricer::new(&tree_i, &tree_j, rho, beta, j);
                    let old = tree_i.dist(j);
                    candidates
                        .iter()
                        .map(|&(a, b, miles)| old.min(pricer.best_via(a, b, miles)))
                        .collect::<Vec<f64>>()
                });
                for per_pair in contribs {
                    for (c, new) in per_pair.into_iter().enumerate() {
                        if new.is_finite() {
                            totals[c] += new;
                        }
                    }
                }
            }
        }
    }

    let mut scored: Vec<CandidateLink> = candidates
        .iter()
        .zip(&totals)
        .map(|(&(a, b, miles), &total_bit_risk)| CandidateLink {
            a,
            b,
            miles,
            total_bit_risk,
            shortcut_threshold: SHORTCUT_THRESHOLD,
        })
        .collect();
    // Tie-break audit: the greedy argmax picks `scored[0]`, so the ranking
    // key must be total regardless of input order or NaN totals. `total_cmp`
    // is a total order over f64 (NaN sorts after every finite total, so a
    // poisoned candidate can never win), and exact ties — symmetric
    // topologies produce bit-identical totals — fall through to the
    // deterministic `(a, b)` endpoint key. Equivalent to the issue's
    // `(gain, src, dst)` key since gain = original − total with original
    // fixed across candidates.
    scored.sort_by(|x, y| {
        x.total_bit_risk
            .total_cmp(&y.total_bit_risk)
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    scored
}

/// Prices "route i→j forced through new link (a, b)" in O(1) per candidate
/// from one (i, j) pair's two SSSP trees. Carries everything β-dependent
/// precomputed so the per-candidate call takes only the candidate itself.
///
/// NaN audit: tree distances are never NaN (the engine sanitizes costs),
/// and `rev` maps unreachable to `+∞`, so the `min` in
/// [`ViaPricer::best_via`] is safe — a NaN could only enter via a
/// non-finite `miles`, which the candidate enumerators never produce
/// (great-circle distances are finite).
struct ViaPricer<'a> {
    tree_i: &'a crate::routing::RiskTree,
    tree_j: &'a crate::routing::RiskTree,
    rho: &'a [f64],
    beta: f64,
    /// β·ρ(j), fixed across candidates for the pair.
    rho_j: f64,
}

impl<'a> ViaPricer<'a> {
    fn new(
        tree_i: &'a crate::routing::RiskTree,
        tree_j: &'a crate::routing::RiskTree,
        rho: &'a [f64],
        beta: f64,
        j: usize,
    ) -> Self {
        let rho_j = beta * rho[j];
        ViaPricer {
            tree_i,
            tree_j,
            rho,
            beta,
            rho_j,
        }
    }

    /// β·ρ(v): the pair-scaled entry cost of PoP v.
    #[inline]
    fn rho_at(&self, v: usize) -> f64 {
        self.beta * self.rho[v]
    }

    /// dist(x→j) = dist(j→x) + β(ρ(j) − ρ(x)): reversing a path relocates
    /// the uncharged-endpoint from j to x.
    #[inline]
    fn rev(&self, x: usize) -> f64 {
        let d = self.tree_j.dist(x);
        if d.is_finite() {
            d + self.rho_j - self.rho_at(x)
        } else {
            f64::INFINITY
        }
    }

    /// Best bit-risk route i→j forced through new link (a, b), in either
    /// orientation.
    fn best_via(&self, a: usize, b: usize, miles: f64) -> f64 {
        let via_ab = self.tree_i.dist(a) + miles + self.rho_at(b) + self.rev(b);
        let via_ba = self.tree_i.dist(b) + miles + self.rho_at(a) + self.rev(a);
        via_ab.min(via_ba)
    }
}

/// Eq. 4: the single best additional link, or `None` when no candidate
/// passes the footnote-3 filter.
pub fn best_additional_link(network: &Network, planner: &Planner) -> Option<CandidateLink> {
    let cands = candidate_links(network, planner);
    if cands.is_empty() {
        return None;
    }
    score_candidates(network, planner, &cands)
        .into_iter()
        .next()
}

/// [`best_additional_link`] with threshold relaxation along
/// [`THRESHOLD_LADDER`]; the returned link records the threshold it passed.
pub fn best_additional_link_adaptive(
    network: &Network,
    planner: &Planner,
) -> Option<CandidateLink> {
    best_additional_link_adaptive_budgeted(network, planner, &WorkBudget::unlimited())
}

/// [`best_additional_link_adaptive`] charging candidate evaluations to
/// `budget`.
pub fn best_additional_link_adaptive_budgeted(
    network: &Network,
    planner: &Planner,
    budget: &WorkBudget,
) -> Option<CandidateLink> {
    let (cands, threshold) = candidate_links_adaptive(network, planner);
    if cands.is_empty() {
        return None;
    }
    score_candidates_budgeted(network, planner, &cands, budget)
        .into_iter()
        .next()
        .map(|c| CandidateLink {
            shortcut_threshold: threshold,
            ..c
        })
}

/// Resume state of a partial greedy run: the iteration to execute next.
/// The links chosen so far travel in the `completed` field of
/// [`Budgeted::Partial`]; feed them back through [`greedy_links_resume`]
/// (typically via a [`crate::checkpoint::Snapshot`]) to continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvisionResume {
    /// Index of the next greedy iteration (== links already chosen).
    pub next_iteration: usize,
}

/// Greedy k-link augmentation (§6.3): repeatedly add the best candidate and
/// re-evaluate. Returns fewer than `k` links when candidates run out.
///
/// `rebuild` must construct a fresh planner for an augmented copy of the
/// network (risk vectors and shares are position-stable because PoPs never
/// change, so callers normally reuse them).
pub fn greedy_links(
    network: &Network,
    planner: &Planner,
    k: usize,
    rebuild: impl FnMut(&Network) -> Planner,
) -> GreedyLinks {
    let (links, _) =
        greedy_links_budgeted(network, planner, k, rebuild, &WorkBudget::unlimited(), |_| {})
            .into_parts();
    links
}

/// [`greedy_links`] under a [`WorkBudget`]: the budget is checked before
/// every greedy iteration (a clean stage boundary), and candidate
/// evaluations inside [`score_candidates_budgeted`] are charged as work.
/// When the budget runs out the call returns [`Budgeted::Partial`] with the
/// links chosen so far — a consistent prefix of the uninterrupted run —
/// instead of being killed mid-flight.
///
/// `on_iteration` fires after every completed iteration with the links so
/// far; callers use it to write crash-safe checkpoints
/// ([`crate::checkpoint::write_atomic`]) or to flip the budget's cancel
/// flag (the chaos harness's seeded kill switch).
pub fn greedy_links_budgeted(
    network: &Network,
    planner: &Planner,
    k: usize,
    rebuild: impl FnMut(&Network) -> Planner,
    budget: &WorkBudget,
    on_iteration: impl FnMut(&GreedyLinks),
) -> Budgeted<GreedyLinks, ProvisionResume> {
    let prior = GreedyLinks {
        original_bit_risk: planner.aggregate_bit_risk(),
        added: Vec::new(),
    };
    greedy_links_resume(network, planner, k, rebuild, prior, budget, on_iteration)
}

/// Continue a greedy run from a completed prefix (`prior`), e.g. one loaded
/// from a checkpoint snapshot. `base_network`/`base_planner` are the
/// **unaugmented** inputs of the original run; the prior links are
/// reapplied first. Because every greedy iteration is a deterministic
/// function of the augmented network, a resumed run produces bit-identical
/// output to an uninterrupted one — the crash-consistency invariant
/// [`crate::chaos::run_kill_resume`] enforces.
pub fn greedy_links_resume(
    base_network: &Network,
    base_planner: &Planner,
    k: usize,
    mut rebuild: impl FnMut(&Network) -> Planner,
    prior: GreedyLinks,
    budget: &WorkBudget,
    mut on_iteration: impl FnMut(&GreedyLinks),
) -> Budgeted<GreedyLinks, ProvisionResume> {
    // Attribute the whole run to the budget owner's trace, wherever this
    // driver actually executes (serve worker threads included).
    let _obs = budget.scope().enter();
    let mut current_net = base_network.clone();
    for link in &prior.added {
        current_net = with_extra_link(&current_net, link.a, link.b);
    }
    // Rebuilt planners inherit the base planner's parallelism and
    // route-cache knobs: `rebuild` closures predate both and construct
    // default planners, and neither knob ever changes results — only
    // wall-clock.
    let mut current_planner = if prior.added.is_empty() {
        base_planner.clone()
    } else {
        rebuild(&current_net)
            .with_parallelism(base_planner.parallelism())
            .with_route_cache(base_planner.route_cache())
    };
    let mut result = prior;
    while result.added.len() < k {
        riskroute_obs::counter_add("provision_budget_checks", 1);
        if let Some(stopped) = budget.exhausted() {
            riskroute_obs::counter_add("provision_budget_stops", 1);
            let resume_state = ProvisionResume {
                next_iteration: result.added.len(),
            };
            return Budgeted::Partial {
                completed: result,
                resume_state,
                stopped,
            };
        }
        let round = result.added.len();
        let mut round_span = riskroute_obs::span!("provision_round", round = round);
        let prev_total = result
            .added
            .last()
            .map_or(result.original_bit_risk, |l| l.total_bit_risk);
        let Some(best) =
            best_additional_link_adaptive_budgeted(&current_net, &current_planner, budget)
        else {
            break;
        };
        current_net = with_extra_link(&current_net, best.a, best.b);
        let mut next_planner = rebuild(&current_net)
            .with_parallelism(base_planner.parallelism())
            .with_route_cache(base_planner.route_cache());
        // Trees the new link provably cannot improve survive into the next
        // round's cache (strict edge-addition test; see
        // `Planner::adopt_route_cache`), so re-measuring the augmented
        // network — and the next round's scoring — skips most SSSP re-runs.
        next_planner.adopt_route_cache(&current_planner, best.a, best.b);
        current_planner = next_planner;
        // Re-measure exactly (the sweep's total is exact already, but
        // recomputing guards the invariant under the rebuilt planner).
        let total = current_planner.aggregate_bit_risk();
        if round_span.is_active() {
            let gain = prev_total - total;
            round_span.field("gain_bit_risk_miles", gain);
            round_span.field("total_bit_risk_miles", total);
            riskroute_obs::counter_add("provision_rounds", 1);
            riskroute_obs::gauge_set("provision_best_gain", gain);
            riskroute_obs::gauge_set("provision_total_bit_risk_miles", total);
        }
        result.added.push(CandidateLink {
            total_bit_risk: total,
            ..best
        });
        on_iteration(&result);
    }
    Budgeted::Complete(result)
}

/// A copy of `network` with one extra link. Asking for a link that already
/// exists (or a self-link / out-of-range endpoint) returns the network
/// unchanged — the augmentation is a no-op, not an abort.
pub fn with_extra_link(network: &Network, a: PopId, b: PopId) -> Network {
    let mut links: Vec<(PopId, PopId)> = network.links().iter().map(|l| (l.a, l.b)).collect();
    links.push((a, b));
    match Network::new(
        network.name(),
        network.kind(),
        network.pops().to_vec(),
        links,
    ) {
        Ok(net) => net,
        Err(_) => network.clone(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A 5-PoP path graph along a line, with a risky middle PoP 2. The only
    /// way around the risk is a new link.
    ///
    /// `0 — 1 — 2(risky) — 3 — 4`
    fn line_network() -> (Network, Planner) {
        let net = Network::new(
            "line",
            NetworkKind::Regional,
            vec![
                pop("P0", 35.0, -100.0),
                pop("P1", 35.0, -98.0),
                pop("P2", 35.0, -96.0),
                pop("P3", 35.0, -94.0),
                pop("P4", 35.0, -92.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0, 0.0], vec![0.0; 5]);
        let shares = PopShares::from_shares(vec![0.2; 5]);
        let planner = Planner::new(&net, risk, shares, RiskWeights::historical_only(1e5));
        (net, planner)
    }

    #[test]
    fn candidates_respect_shortcut_filter() {
        let (net, planner) = line_network();
        let cands = candidate_links(&net, &planner);
        // (1,3) halves 1→3 (2 hops of ~113 mi → direct ~226 mi: NOT >50%).
        // (0,2), (2,4): direct equals current path → excluded.
        // (0,3): direct 339 vs path 339 → excluded. (0,4): 451 vs 451 → excluded.
        // On a straight line *no* chord shortens anything, so the filter
        // must reject everything.
        assert!(
            cands.is_empty(),
            "straight-line chords are not shortcuts: {cands:?}"
        );
    }

    #[test]
    fn bent_topology_admits_shortcut_candidates() {
        // A horseshoe: 0-1-2 go east, then 3-4 come back west just north.
        let net = Network::new(
            "horseshoe",
            NetworkKind::Regional,
            vec![
                pop("P0", 35.0, -100.0),
                pop("P1", 35.0, -97.0),
                pop("P2", 35.0, -94.0),
                pop("P3", 35.8, -94.0),
                pop("P4", 35.8, -100.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0; 5], vec![0.0; 5]);
        let shares = PopShares::from_shares(vec![0.2; 5]);
        let planner = Planner::new(&net, risk, shares, RiskWeights::historical_only(1e5));
        let cands = candidate_links(&net, &planner);
        // 0↔4 are ~55 miles apart but ~560 miles around the horseshoe.
        assert!(cands.iter().any(|&(a, b, _)| (a, b) == (0, 4)), "{cands:?}");
        let best = best_additional_link(&net, &planner).unwrap();
        assert_eq!((best.a, best.b), (0, 4));
    }

    #[test]
    fn disconnected_pairs_always_qualify() {
        let net = Network::new(
            "islands",
            NetworkKind::Regional,
            vec![
                pop("A", 35.0, -100.0),
                pop("B", 35.0, -99.0),
                pop("C", 40.0, -90.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0; 3], vec![0.0; 3]);
        let shares = PopShares::from_shares(vec![1.0 / 3.0; 3]);
        let planner = Planner::new(&net, risk, shares, RiskWeights::PAPER);
        let cands = candidate_links(&net, &planner);
        assert!(cands.iter().any(|&(_, b, _)| b == 2));
    }

    #[test]
    fn scored_totals_match_exact_recomputation() {
        let (net, planner) = line_network();
        // Hand the scorer an artificial candidate (the filter rejects chords
        // on a line, but scoring must still be exact for any given set).
        let direct = great_circle_miles(net.location(1), net.location(3));
        let cands = vec![(1usize, 3usize, direct)];
        let scored = score_candidates(&net, &planner, &cands);
        assert_eq!(scored.len(), 1);
        let augmented = with_extra_link(&net, 1, 3);
        let re_planner = Planner::new(
            &augmented,
            planner.risk().clone(),
            PopShares::from_shares(planner.shares().shares().to_vec()),
            planner.weights(),
        );
        let exact = re_planner.aggregate_bit_risk();
        assert!(
            (scored[0].total_bit_risk - exact).abs() < 1e-6,
            "sweep {} vs exact {}",
            scored[0].total_bit_risk,
            exact
        );
    }

    #[test]
    fn adding_the_bypass_link_cuts_bit_risk() {
        let (net, planner) = line_network();
        let before = planner.aggregate_bit_risk();
        // The 1–3 chord bypasses risky PoP 2.
        let augmented = with_extra_link(&net, 1, 3);
        let re_planner = Planner::new(
            &augmented,
            planner.risk().clone(),
            PopShares::from_shares(planner.shares().shares().to_vec()),
            planner.weights(),
        );
        assert!(re_planner.aggregate_bit_risk() < before);
    }

    #[test]
    fn greedy_series_is_monotone_nonincreasing() {
        // Use the horseshoe, which has real candidates.
        let net = Network::new(
            "horseshoe",
            NetworkKind::Regional,
            vec![
                pop("P0", 35.0, -100.0),
                pop("P1", 35.0, -97.0),
                pop("P2", 35.0, -94.0),
                pop("P3", 35.8, -94.0),
                pop("P4", 35.8, -100.0),
                pop("P5", 35.8, -97.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 5), (5, 4)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 2e-3, 0.0, 0.0, 0.0], vec![0.0; 6]);
        let shares = PopShares::from_shares(vec![1.0 / 6.0; 6]);
        let planner = Planner::new(
            &net,
            risk.clone(),
            shares.clone(),
            RiskWeights::historical_only(1e5),
        );
        let result = greedy_links(&net, &planner, 3, |n| {
            Planner::new(
                n,
                risk.clone(),
                shares.clone(),
                RiskWeights::historical_only(1e5),
            )
        });
        assert!(!result.added.is_empty());
        let series = result.fraction_series();
        assert!(series[0] <= 1.0 + 1e-12);
        for w in series.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "greedy total increased: {series:?}");
        }
    }

    #[test]
    fn greedy_stops_when_no_candidates() {
        let (net, planner) = line_network();
        let result = greedy_links(&net, &planner, 5, |n| {
            Planner::new(
                n,
                planner.risk().clone(),
                PopShares::from_shares(planner.shares().shares().to_vec()),
                planner.weights(),
            )
        });
        assert!(result.added.is_empty());
        assert!(result.fraction_series().is_empty());
    }

    /// The horseshoe-with-chord map used by the greedy tests: rich enough
    /// to admit several rounds of candidates.
    fn greedy_fixture() -> (Network, Planner) {
        let net = Network::new(
            "horseshoe",
            NetworkKind::Regional,
            vec![
                pop("P0", 35.0, -100.0),
                pop("P1", 35.0, -97.0),
                pop("P2", 35.0, -94.0),
                pop("P3", 35.8, -94.0),
                pop("P4", 35.8, -100.0),
                pop("P5", 35.8, -97.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 5), (5, 4)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 2e-3, 0.0, 0.0, 0.0], vec![0.0; 6]);
        let shares = PopShares::from_shares(vec![1.0 / 6.0; 6]);
        let planner = Planner::new(
            &net,
            risk,
            shares,
            RiskWeights::historical_only(1e5),
        );
        (net, planner)
    }

    fn fixture_rebuild(planner: &Planner) -> impl FnMut(&Network) -> Planner {
        let risk = planner.risk().clone();
        let shares = PopShares::from_shares(planner.shares().shares().to_vec());
        let weights = planner.weights();
        move |n: &Network| Planner::new(n, risk.clone(), shares.clone(), weights)
    }

    #[test]
    fn exhausted_budget_returns_a_partial_prefix() {
        use crate::budget::{Budgeted, StopReason, WorkBudget};
        let (net, planner) = greedy_fixture();
        let budget = WorkBudget::unlimited().with_max_work(0);
        let run = greedy_links_budgeted(
            &net,
            &planner,
            3,
            fixture_rebuild(&planner),
            &budget,
            |_| {},
        );
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = run
        else {
            panic!("zero budget must stop before the first iteration");
        };
        assert!(completed.added.is_empty());
        assert_eq!(resume_state.next_iteration, 0);
        assert_eq!(stopped, StopReason::WorkExhausted);
        assert!(completed.original_bit_risk.is_finite());
    }

    #[test]
    fn cancelled_run_resumes_to_the_identical_result() {
        use crate::budget::{Budgeted, StopReason, WorkBudget};
        use std::sync::atomic::Ordering;
        let (net, planner) = greedy_fixture();
        let uninterrupted = greedy_links(&net, &planner, 3, fixture_rebuild(&planner));
        assert!(
            uninterrupted.added.len() >= 2,
            "fixture must admit at least two greedy links"
        );
        // Kill after the first iteration via the cooperative cancel flag.
        let budget = WorkBudget::unlimited();
        let cancel = budget.cancel_handle();
        let run = greedy_links_budgeted(
            &net,
            &planner,
            3,
            fixture_rebuild(&planner),
            &budget,
            |links| {
                if links.added.len() == 1 {
                    cancel.store(true, Ordering::Relaxed);
                }
            },
        );
        let Budgeted::Partial {
            completed, stopped, ..
        } = run
        else {
            panic!("cancel flag must interrupt the run");
        };
        assert_eq!(stopped, StopReason::Cancelled);
        assert_eq!(completed.added.len(), 1);
        // Resume with a fresh budget: the final result is bit-identical.
        let resumed = greedy_links_resume(
            &net,
            &planner,
            3,
            fixture_rebuild(&planner),
            completed,
            &WorkBudget::unlimited(),
            |_| {},
        );
        let Budgeted::Complete(resumed) = resumed else {
            panic!("unlimited resume must complete");
        };
        assert_eq!(resumed, uninterrupted, "resume must be bit-identical");
    }

    #[test]
    fn score_charges_one_unit_per_candidate() {
        use crate::budget::WorkBudget;
        let (net, planner) = greedy_fixture();
        let cands = candidate_links_adaptive(&net, &planner).0;
        assert!(!cands.is_empty());
        let budget = WorkBudget::unlimited();
        let _ = score_candidates_budgeted(&net, &planner, &cands, &budget);
        assert_eq!(budget.work_done(), cands.len() as u64);
    }

    #[test]
    fn exactly_tied_candidates_rank_deterministically() {
        let (net, planner) = line_network();
        // Duplicating an existing link can never improve any route, so both
        // candidates score exactly Σ old — bitwise-identical totals that
        // force the argmax onto the (a, b) tie-break key.
        let m01 = great_circle_miles(net.location(0), net.location(1));
        let m34 = great_circle_miles(net.location(3), net.location(4));
        let fwd = vec![(0usize, 1usize, m01), (3usize, 4usize, m34)];
        let rev: Vec<_> = fwd.iter().rev().copied().collect();
        let s_fwd = score_candidates(&net, &planner, &fwd);
        let s_rev = score_candidates(&net, &planner, &rev);
        assert_eq!(
            s_fwd[0].total_bit_risk.to_bits(),
            s_fwd[1].total_bit_risk.to_bits(),
            "fixture must tie exactly"
        );
        assert_eq!(
            (s_fwd[0].a, s_fwd[0].b),
            (0, 1),
            "ties must break on the (a, b) endpoint key"
        );
        assert_eq!(s_fwd, s_rev, "ranking must not depend on input order");
        // The tie-break is also thread-count invariant.
        let par_planner = planner.clone().with_parallelism(Parallelism::Threads(2));
        assert_eq!(score_candidates(&net, &par_planner, &rev), s_fwd);
    }

    #[test]
    fn with_extra_link_preserves_everything_else() {
        let (net, _) = line_network();
        let augmented = with_extra_link(&net, 0, 4);
        assert_eq!(augmented.pop_count(), net.pop_count());
        assert_eq!(augmented.link_count(), net.link_count() + 1);
        assert!(augmented.has_link(0, 4));
        assert_eq!(augmented.name(), net.name());
    }
}
