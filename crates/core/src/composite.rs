//! Composite SLA / risk objectives — the §6.4 extension.
//!
//! "The RiskRoute framework could easily be expanded to include multiple
//! objective functions that would balance risk and SLA-related issues such
//! as latency in route calculations." This module provides that expansion:
//! a convex blend between the pure-latency objective (bit-miles, a direct
//! proxy for propagation delay) and the bit-risk objective, plus a sweep
//! helper exposing the Pareto trade-off curve.

use crate::error::Error;
use crate::intradomain::Planner;
use crate::metric::RiskWeights;
use crate::routing::RoutedPath;

/// A convex latency/risk blend: `α = 0` is pure shortest-path (SLA-only),
/// `α = 1` is full RiskRoute at the base weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeObjective {
    /// Blend factor in `[0, 1]`.
    pub alpha: f64,
    /// The full-risk-aversion weights blended toward.
    pub base: RiskWeights,
}

impl CompositeObjective {
    /// Construct a blend.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64, base: RiskWeights) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1]"
        );
        CompositeObjective { alpha, base }
    }

    /// The effective λ weights of the blend. Risk terms scale linearly with
    /// λ, so blending the objective is exactly blending the weights.
    pub fn weights(&self) -> RiskWeights {
        RiskWeights::new(
            self.alpha * self.base.lambda_h,
            self.alpha * self.base.lambda_f,
        )
    }
}

/// One point on the latency/risk trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// The blend factor that produced this point.
    pub alpha: f64,
    /// The route found under the blended objective.
    pub route: RoutedPath,
    /// The route's *unblended* bit-risk miles (evaluated at the base
    /// weights), so points are comparable.
    pub full_bit_risk_miles: f64,
}

/// Sweep the trade-off curve for one PoP pair: route under each `alpha`,
/// re-evaluating every route at the base weights. Returns one point per
/// alpha (skipping none — the pair must be reachable).
///
/// # Errors
/// [`Error::Unreachable`] when the pair has no connecting path (the weights
/// only re-price paths, so reachability is alpha-independent).
///
/// # Panics
/// Panics when `alphas` is empty.
pub fn tradeoff_sweep(
    base_planner: &Planner,
    i: usize,
    j: usize,
    alphas: &[f64],
) -> Result<Vec<TradeoffPoint>, Error> {
    assert!(!alphas.is_empty(), "need at least one alpha");
    let base = base_planner.weights();
    let mut out = Vec::with_capacity(alphas.len());
    for &alpha in alphas {
        let obj = CompositeObjective::new(alpha, base);
        let mut planner = base_planner.clone();
        planner.set_weights(obj.weights());
        let route = planner.try_risk_route(i, j)?;
        // Re-evaluate the same node sequence at full weights.
        let full = {
            let mut full_planner = base_planner.clone();
            full_planner.set_weights(base);
            // Evaluate by re-routing along the fixed node sequence: walk the
            // route's decomposition under base weights.
            let beta = full_planner.impact(i, j);
            let risk: f64 = route.nodes[1..]
                .iter()
                .map(|&v| beta * full_planner.risk().scaled(v, base))
                .sum();
            route.bit_miles + risk
        };
        out.push(TradeoffPoint {
            alpha,
            route,
            full_bit_risk_miles: full,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::NodeRisk;
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{Network, NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    fn diamond_planner() -> Planner {
        let net = Network::new(
            "diamond",
            NetworkKind::Regional,
            vec![
                pop("W", 35.0, -100.0),
                pop("N", 37.5, -97.0),
                pop("S", 35.0, -97.0),
                pop("E", 35.0, -94.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 1e-3, 0.0], vec![0.0; 4]);
        Planner::new(
            &net,
            risk,
            PopShares::from_shares(vec![0.25; 4]),
            RiskWeights::historical_only(1e5),
        )
    }

    #[test]
    fn alpha_zero_is_shortest_path() {
        let p = diamond_planner();
        let sweep = tradeoff_sweep(&p, 0, 3, &[0.0]).unwrap();
        let sp = p.shortest_route(0, 3).unwrap();
        assert_eq!(sweep[0].route.nodes, sp.nodes);
    }

    #[test]
    fn alpha_one_is_full_riskroute() {
        let p = diamond_planner();
        let sweep = tradeoff_sweep(&p, 0, 3, &[1.0]).unwrap();
        let rr = p.risk_route(0, 3).unwrap();
        assert_eq!(sweep[0].route.nodes, rr.nodes);
        assert!((sweep[0].full_bit_risk_miles - rr.bit_risk_miles).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotone_in_both_objectives() {
        let p = diamond_planner();
        let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
        let sweep = tradeoff_sweep(&p, 0, 3, &alphas).unwrap();
        for w in sweep.windows(2) {
            // More risk-aversion: bit-miles weakly increase, full bit-risk
            // weakly decreases.
            assert!(w[1].route.bit_miles >= w[0].route.bit_miles - 1e-9);
            assert!(w[1].full_bit_risk_miles <= w[0].full_bit_risk_miles + 1e-9);
        }
    }

    #[test]
    fn weights_blend_linearly() {
        let base = RiskWeights::new(1e5, 1e3);
        let half = CompositeObjective::new(0.5, base).weights();
        assert_eq!(half.lambda_h, 5e4);
        assert_eq!(half.lambda_f, 5e2);
        let zero = CompositeObjective::new(0.0, base).weights();
        assert_eq!(zero.lambda_h, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn out_of_range_alpha_panics() {
        let _ = CompositeObjective::new(1.5, RiskWeights::PAPER);
    }

    #[test]
    #[should_panic(expected = "at least one alpha")]
    fn empty_alphas_panic() {
        let p = diamond_planner();
        let _ = tradeoff_sweep(&p, 0, 3, &[]);
    }
}
