//! Crash-safe checkpoint snapshots for budgeted computations.
//!
//! A [`Snapshot`] captures the progress of a long provisioning or replay
//! run at a clean stage boundary, so a killed, preempted, or
//! budget-exhausted process (see [`crate::budget`]) can resume without
//! losing work — and so a resumed run reproduces the uninterrupted result
//! **bit-identically** (the crash-consistency invariant the chaos harness
//! enforces, [`crate::chaos::run_kill_resume`]).
//!
//! # Format
//!
//! Snapshots are line-oriented text (version 1):
//!
//! ```text
//! riskroute-snapshot/1
//! job <fnv1a-64 hex> <compact JSON>
//! progress <fnv1a-64 hex> <compact JSON>
//! end
//! ```
//!
//! - The **header** carries the format version; an unsupported version
//!   loads as [`Error::SnapshotVersion`], never a panic.
//! - The **job** line describes what was being computed (network, storm,
//!   k, stride, λ weights) — enough to restart from scratch.
//! - The **progress** line carries the completed prefix (chosen links /
//!   replayed ticks). Every `f64` round-trips exactly through
//!   `riskroute-json`'s shortest-representation rendering, which is what
//!   makes resumed runs bit-identical.
//! - Each JSON section is independently checksummed with FNV-1a (64-bit,
//!   in-tree — no registry dependencies), and the `end` marker makes
//!   completeness explicit. A truncated or bit-flipped file fails
//!   validation as [`Error::SnapshotIntegrity`].
//!
//! The two-section layout is deliberate: truncation eats the file from the
//! end, so a damaged snapshot usually still has a valid job line.
//! [`load_snapshot_with_fallback`] exploits this to degrade gracefully —
//! when the progress is unusable but the job survives, the caller gets the
//! job back and can fall back to a fresh run instead of dying.
//!
//! Writes go through [`write_atomic`] (temp file + rename in the target
//! directory), so a kill mid-write can never leave a torn snapshot behind:
//! the previous snapshot, if any, stays intact until the rename commits.

use crate::error::Error;
use crate::provisioning::{CandidateLink, GreedyLinks};
use crate::ratios::RatioReport;
use crate::replay::{DisasterReplay, ReplayTick};
use crate::scenario::{ExposureReport, FailElement, ScenarioSpec, SweepMode, SweepRecord};
use riskroute_json::{Json, JsonError};
use std::path::Path;

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// First-line magic prefix; the version number follows the slash.
const MAGIC: &str = "riskroute-snapshot/";

/// What a snapshotted run was computing — enough to restart it fresh when
/// the progress section is unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotJob {
    /// A greedy k-link provisioning run (`riskroute provision`).
    Provision {
        /// Network name.
        network: String,
        /// Total links requested.
        k: usize,
        /// Historical risk weight λ_h.
        lambda_h: f64,
        /// Forecast risk weight λ_f.
        lambda_f: f64,
    },
    /// A storm replay (`riskroute replay`).
    Replay {
        /// Network name.
        network: String,
        /// Storm name (lowercase; resolvable by the CLI).
        storm: String,
        /// Advisory stride.
        stride: usize,
        /// Historical risk weight λ_h.
        lambda_h: f64,
        /// Forecast risk weight λ_f.
        lambda_f: f64,
    },
    /// A scenario resilience sweep (`riskroute sweep`).
    Sweep {
        /// Network name.
        network: String,
        /// Sweep mode label (`"n1"`, `"n2"`, or `"ensemble"`).
        mode: String,
        /// Sample count (0 for exhaustive N-1).
        samples: usize,
        /// Sampling / ensemble master seed (0 for N-1).
        seed: u64,
        /// Historical risk weight λ_h.
        lambda_h: f64,
        /// Forecast risk weight λ_f.
        lambda_f: f64,
    },
}

impl SnapshotJob {
    /// The job kind tag used in the wire format.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotJob::Provision { .. } => "provision",
            SnapshotJob::Replay { .. } => "replay",
            SnapshotJob::Sweep { .. } => "sweep",
        }
    }
}

/// The completed prefix of a snapshotted run.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotProgress {
    /// Links chosen so far by the greedy provisioning loop.
    Provision(GreedyLinks),
    /// Ticks replayed so far plus the index of the next advisory.
    Replay {
        /// The replay prefix.
        replay: DisasterReplay,
        /// Index into the strided advisory stream to evaluate next.
        next_index: usize,
    },
    /// Scenarios evaluated so far by a resilience sweep.
    Sweep {
        /// The unfailed network's exposure (the sweep's Δ reference).
        baseline: ExposureReport,
        /// Evaluated scenario records, in canonical scenario order.
        records: Vec<SweepRecord>,
        /// Index into the canonical scenario list to evaluate next.
        next_index: usize,
    },
}

/// A complete checkpoint: job description plus completed prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// What was being computed.
    pub job: SnapshotJob,
    /// How far it got.
    pub progress: SnapshotProgress,
}

/// Outcome of [`load_snapshot_with_fallback`].
#[derive(Debug, Clone, PartialEq)]
pub enum LoadOutcome {
    /// The snapshot validated end to end; resume from its progress.
    Resume(Snapshot),
    /// The progress section was unusable, but the job line survived: the
    /// caller should fall back to a fresh run of `job` (degraded mode) and
    /// report `error` as the reason.
    Fallback {
        /// The recovered job description.
        job: SnapshotJob,
        /// Why the progress could not be used.
        error: Error,
    },
}

impl Snapshot {
    /// Snapshot a provisioning run.
    pub fn provision(
        network: &str,
        k: usize,
        lambda_h: f64,
        lambda_f: f64,
        links: &GreedyLinks,
    ) -> Snapshot {
        Snapshot {
            job: SnapshotJob::Provision {
                network: network.to_string(),
                k,
                lambda_h,
                lambda_f,
            },
            progress: SnapshotProgress::Provision(links.clone()),
        }
    }

    /// Snapshot a replay run.
    pub fn replay(
        network: &str,
        storm: &str,
        stride: usize,
        lambda_h: f64,
        lambda_f: f64,
        replay: &DisasterReplay,
        next_index: usize,
    ) -> Snapshot {
        Snapshot {
            job: SnapshotJob::Replay {
                network: network.to_string(),
                storm: storm.to_string(),
                stride,
                lambda_h,
                lambda_f,
            },
            progress: SnapshotProgress::Replay {
                replay: replay.clone(),
                next_index,
            },
        }
    }

    /// Snapshot a scenario sweep.
    pub fn sweep(
        network: &str,
        mode: SweepMode,
        lambda_h: f64,
        lambda_f: f64,
        baseline: ExposureReport,
        records: &[SweepRecord],
        next_index: usize,
    ) -> Snapshot {
        Snapshot {
            job: SnapshotJob::Sweep {
                network: network.to_string(),
                mode: mode.label().to_string(),
                samples: mode.samples(),
                seed: mode.seed(),
                lambda_h,
                lambda_f,
            },
            progress: SnapshotProgress::Sweep {
                baseline,
                records: records.to_vec(),
                next_index,
            },
        }
    }

    /// Render to the versioned, checksummed wire format.
    pub fn to_text(&self) -> String {
        let job = job_to_json(&self.job).to_string_compact();
        let progress = progress_to_json(&self.progress).to_string_compact();
        format!(
            "{MAGIC}{SNAPSHOT_VERSION}\njob {:016x} {job}\nprogress {:016x} {progress}\nend\n",
            fnv1a_64(job.as_bytes()),
            fnv1a_64(progress.as_bytes()),
        )
    }
}

/// FNV-1a 64-bit hash — the snapshot checksum (in-tree, dependency-free).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Write `contents` to `path` atomically: a temp file in the same
/// directory (same filesystem, so the rename cannot cross devices) is
/// written in full, then renamed over the target. A crash mid-write leaves
/// either the old file or no file — never a truncated one.
///
/// # Errors
/// Any I/O error from the write or rename; the temp file is cleaned up on
/// a failed rename.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let span = riskroute_obs::span!("checkpoint_write");
    let start = riskroute_obs::is_enabled().then(std::time::Instant::now);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    let result = match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    };
    let mut span = span;
    if let Some(start) = start {
        span.field("bytes", contents.len());
        riskroute_obs::counter_add("checkpoint_writes", 1);
        riskroute_obs::counter_add("checkpoint_bytes_written", contents.len() as u64);
        riskroute_obs::histogram_observe("checkpoint_write_seconds", start.elapsed().as_secs_f64());
    }
    result
}

fn integrity(reason: impl Into<String>) -> Error {
    Error::SnapshotIntegrity {
        reason: reason.into(),
    }
}

fn shape(e: &JsonError) -> Error {
    integrity(format!("undecodable section: {e}"))
}

/// Validate and load a snapshot from its wire text.
///
/// # Errors
/// [`Error::SnapshotVersion`] for an unsupported header version,
/// [`Error::SnapshotIntegrity`] for anything structurally wrong: missing
/// magic, truncated sections, checksum mismatches, undecodable JSON, or a
/// job/progress kind mismatch.
pub fn load_snapshot(text: &str) -> Result<Snapshot, Error> {
    let mut span = riskroute_obs::span!("checkpoint_load");
    if span.is_active() {
        span.field("bytes", text.len());
        riskroute_obs::counter_add("checkpoint_loads", 1);
        riskroute_obs::counter_add("checkpoint_bytes_read", text.len() as u64);
    }
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| integrity("empty snapshot"))?;
    let version_text = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| integrity(format!("bad magic in header {header:?}")))?;
    let found: u64 = version_text
        .trim()
        .parse()
        .map_err(|_| integrity(format!("unparsable version {version_text:?}")))?;
    if found != SNAPSHOT_VERSION {
        return Err(Error::SnapshotVersion {
            found,
            supported: SNAPSHOT_VERSION,
        });
    }
    let job_line = lines.next().ok_or_else(|| integrity("missing job line"))?;
    let job = job_from_json(&parse_section(job_line, "job")?)?;
    let progress_line = lines
        .next()
        .ok_or_else(|| integrity("missing progress line (truncated snapshot)"))?;
    let progress = progress_from_json(&parse_section(progress_line, "progress")?)?;
    if lines.next() != Some("end") {
        return Err(integrity("missing end marker (truncated snapshot)"));
    }
    let consistent = matches!(
        (&job, &progress),
        (SnapshotJob::Provision { .. }, SnapshotProgress::Provision(_))
            | (SnapshotJob::Replay { .. }, SnapshotProgress::Replay { .. })
            | (SnapshotJob::Sweep { .. }, SnapshotProgress::Sweep { .. })
    );
    if !consistent {
        return Err(integrity("job/progress kind mismatch"));
    }
    Ok(Snapshot { job, progress })
}

/// [`load_snapshot`], degrading gracefully: when the snapshot is invalid
/// but its job line still validates (the common shape of truncation, which
/// eats the file from the end), return [`LoadOutcome::Fallback`] so the
/// caller can rerun the job from scratch instead of failing outright. The
/// job-line grammar is stable across format versions, so even a stale
/// snapshot can fall back.
///
/// # Errors
/// The original typed load error, when not even the job is recoverable.
pub fn load_snapshot_with_fallback(text: &str) -> Result<LoadOutcome, Error> {
    let error = match load_snapshot(text) {
        Ok(snapshot) => return Ok(LoadOutcome::Resume(snapshot)),
        Err(e) => e,
    };
    let job = text
        .lines()
        .find(|l| l.starts_with("job "))
        .and_then(|line| parse_section(line, "job").ok())
        .and_then(|v| job_from_json(&v).ok());
    match job {
        Some(job) => Ok(LoadOutcome::Fallback { job, error }),
        None => Err(error),
    }
}

/// Parse one `"<tag> <checksum-hex> <json>"` line, validating the checksum
/// before touching the JSON.
fn parse_section(line: &str, tag: &str) -> Result<Json, Error> {
    let rest = line
        .strip_prefix(tag)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| integrity(format!("expected a {tag} line, got {line:?}")))?;
    let (checksum_hex, payload) = rest
        .split_once(' ')
        .ok_or_else(|| integrity(format!("{tag} line has no payload")))?;
    let expected = u64::from_str_radix(checksum_hex, 16)
        .map_err(|_| integrity(format!("{tag} checksum {checksum_hex:?} is not hex")))?;
    let actual = fnv1a_64(payload.as_bytes());
    if actual != expected {
        return Err(integrity(format!(
            "{tag} checksum mismatch (stored {expected:016x}, computed {actual:016x})"
        )));
    }
    riskroute_json::parse(payload).map_err(|e| shape(&e))
}

// --- JSON codecs (hand-rolled against riskroute-json, like the rest of the
// workspace's artifact types) ------------------------------------------------

fn job_to_json(job: &SnapshotJob) -> Json {
    match job {
        SnapshotJob::Provision {
            network,
            k,
            lambda_h,
            lambda_f,
        } => Json::obj([
            ("kind", Json::Str("provision".into())),
            ("network", Json::Str(network.clone())),
            ("k", Json::Num(*k as f64)),
            ("lambda_h", Json::Num(*lambda_h)),
            ("lambda_f", Json::Num(*lambda_f)),
        ]),
        SnapshotJob::Replay {
            network,
            storm,
            stride,
            lambda_h,
            lambda_f,
        } => Json::obj([
            ("kind", Json::Str("replay".into())),
            ("network", Json::Str(network.clone())),
            ("storm", Json::Str(storm.clone())),
            ("stride", Json::Num(*stride as f64)),
            ("lambda_h", Json::Num(*lambda_h)),
            ("lambda_f", Json::Num(*lambda_f)),
        ]),
        SnapshotJob::Sweep {
            network,
            mode,
            samples,
            seed,
            lambda_h,
            lambda_f,
        } => Json::obj([
            ("kind", Json::Str("sweep".into())),
            ("network", Json::Str(network.clone())),
            ("mode", Json::Str(mode.clone())),
            ("samples", Json::Num(*samples as f64)),
            // u64 seeds exceed f64's exact-integer range; a decimal string
            // round-trips every value.
            ("seed", Json::Str(seed.to_string())),
            ("lambda_h", Json::Num(*lambda_h)),
            ("lambda_f", Json::Num(*lambda_f)),
        ]),
    }
}

fn job_from_json(v: &Json) -> Result<SnapshotJob, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    let kind = get("kind")?.as_str().map_err(|e| shape(&e))?.to_string();
    let network = get("network")?.as_str().map_err(|e| shape(&e))?.to_string();
    let lambda_h = get("lambda_h")?.as_f64().map_err(|e| shape(&e))?;
    let lambda_f = get("lambda_f")?.as_f64().map_err(|e| shape(&e))?;
    match kind.as_str() {
        "provision" => Ok(SnapshotJob::Provision {
            network,
            k: get("k")?.as_usize().map_err(|e| shape(&e))?,
            lambda_h,
            lambda_f,
        }),
        "replay" => Ok(SnapshotJob::Replay {
            network,
            storm: get("storm")?.as_str().map_err(|e| shape(&e))?.to_string(),
            stride: get("stride")?.as_usize().map_err(|e| shape(&e))?,
            lambda_h,
            lambda_f,
        }),
        "sweep" => Ok(SnapshotJob::Sweep {
            network,
            mode: get("mode")?.as_str().map_err(|e| shape(&e))?.to_string(),
            samples: get("samples")?.as_usize().map_err(|e| shape(&e))?,
            seed: seed_from_json(get("seed")?)?,
            lambda_h,
            lambda_f,
        }),
        other => Err(integrity(format!("unknown job kind {other:?}"))),
    }
}

/// Decode a decimal-string u64 seed (see [`job_to_json`] for why seeds are
/// not JSON numbers).
fn seed_from_json(v: &Json) -> Result<u64, Error> {
    v.as_str()
        .map_err(|e| shape(&e))?
        .parse()
        .map_err(|_| integrity("seed is not a decimal u64"))
}

fn candidate_to_json(c: &CandidateLink) -> Json {
    Json::obj([
        ("a", Json::Num(c.a as f64)),
        ("b", Json::Num(c.b as f64)),
        ("miles", Json::Num(c.miles)),
        ("total_bit_risk", Json::Num(c.total_bit_risk)),
        ("shortcut_threshold", Json::Num(c.shortcut_threshold)),
    ])
}

fn candidate_from_json(v: &Json) -> Result<CandidateLink, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    Ok(CandidateLink {
        a: get("a")?.as_usize().map_err(|e| shape(&e))?,
        b: get("b")?.as_usize().map_err(|e| shape(&e))?,
        miles: get("miles")?.as_f64().map_err(|e| shape(&e))?,
        total_bit_risk: get("total_bit_risk")?.as_f64().map_err(|e| shape(&e))?,
        shortcut_threshold: get("shortcut_threshold")?.as_f64().map_err(|e| shape(&e))?,
    })
}

fn report_to_json(r: &RatioReport) -> Json {
    Json::obj([
        ("risk_reduction_ratio", Json::Num(r.risk_reduction_ratio)),
        ("distance_increase_ratio", Json::Num(r.distance_increase_ratio)),
        ("pairs", Json::Num(r.pairs as f64)),
        ("stranded_pairs", Json::Num(r.stranded_pairs as f64)),
    ])
}

fn report_from_json(v: &Json) -> Result<RatioReport, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    Ok(RatioReport {
        risk_reduction_ratio: get("risk_reduction_ratio")?.as_f64().map_err(|e| shape(&e))?,
        distance_increase_ratio: get("distance_increase_ratio")?
            .as_f64()
            .map_err(|e| shape(&e))?,
        pairs: get("pairs")?.as_usize().map_err(|e| shape(&e))?,
        stranded_pairs: get("stranded_pairs")?.as_usize().map_err(|e| shape(&e))?,
    })
}

fn tick_to_json(t: &ReplayTick) -> Json {
    Json::obj([
        ("advisory", Json::Num(t.advisory as f64)),
        ("label", Json::Str(t.label.clone())),
        ("pops_in_scope", Json::Num(t.pops_in_scope as f64)),
        (
            "pops_in_hurricane_winds",
            Json::Num(t.pops_in_hurricane_winds as f64),
        ),
        ("report", report_to_json(&t.report)),
        ("degraded", Json::Bool(t.degraded)),
    ])
}

fn tick_from_json(v: &Json) -> Result<ReplayTick, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    Ok(ReplayTick {
        advisory: get("advisory")?.as_usize().map_err(|e| shape(&e))?,
        label: get("label")?.as_str().map_err(|e| shape(&e))?.to_string(),
        pops_in_scope: get("pops_in_scope")?.as_usize().map_err(|e| shape(&e))?,
        pops_in_hurricane_winds: get("pops_in_hurricane_winds")?
            .as_usize()
            .map_err(|e| shape(&e))?,
        report: report_from_json(get("report")?)?,
        degraded: get("degraded")?.as_bool().map_err(|e| shape(&e))?,
    })
}

fn element_to_json(e: &FailElement) -> Json {
    match e {
        FailElement::Node(v) => Json::obj([
            ("kind", Json::Str("node".into())),
            ("v", Json::Num(*v as f64)),
        ]),
        FailElement::Link(a, b) => Json::obj([
            ("kind", Json::Str("link".into())),
            ("a", Json::Num(*a as f64)),
            ("b", Json::Num(*b as f64)),
        ]),
    }
}

fn element_from_json(v: &Json) -> Result<FailElement, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    match get("kind")?.as_str().map_err(|e| shape(&e))? {
        "node" => Ok(FailElement::Node(
            get("v")?.as_usize().map_err(|e| shape(&e))?,
        )),
        "link" => Ok(FailElement::Link(
            get("a")?.as_usize().map_err(|e| shape(&e))?,
            get("b")?.as_usize().map_err(|e| shape(&e))?,
        )),
        other => Err(integrity(format!("unknown fail element kind {other:?}"))),
    }
}

fn spec_to_json(spec: &ScenarioSpec) -> Json {
    match spec {
        ScenarioSpec::One(e) => Json::obj([
            ("kind", Json::Str("one".into())),
            ("e", element_to_json(e)),
        ]),
        ScenarioSpec::Two(e1, e2) => Json::obj([
            ("kind", Json::Str("two".into())),
            ("e1", element_to_json(e1)),
            ("e2", element_to_json(e2)),
        ]),
        ScenarioSpec::Member { index, seed } => Json::obj([
            ("kind", Json::Str("member".into())),
            ("index", Json::Num(*index as f64)),
            ("seed", Json::Str(seed.to_string())),
        ]),
    }
}

fn spec_from_json(v: &Json) -> Result<ScenarioSpec, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    match get("kind")?.as_str().map_err(|e| shape(&e))? {
        "one" => Ok(ScenarioSpec::One(element_from_json(get("e")?)?)),
        "two" => Ok(ScenarioSpec::Two(
            element_from_json(get("e1")?)?,
            element_from_json(get("e2")?)?,
        )),
        "member" => Ok(ScenarioSpec::Member {
            index: get("index")?.as_usize().map_err(|e| shape(&e))?,
            seed: seed_from_json(get("seed")?)?,
        }),
        other => Err(integrity(format!("unknown scenario spec kind {other:?}"))),
    }
}

fn exposure_to_json(e: &ExposureReport) -> Json {
    Json::obj([
        ("bit_risk_total", Json::Num(e.bit_risk_total)),
        ("routable_pairs", Json::Num(e.routable_pairs as f64)),
        ("stranded_pairs", Json::Num(e.stranded_pairs as f64)),
    ])
}

fn exposure_from_json(v: &Json) -> Result<ExposureReport, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    Ok(ExposureReport {
        bit_risk_total: get("bit_risk_total")?.as_f64().map_err(|e| shape(&e))?,
        routable_pairs: get("routable_pairs")?.as_usize().map_err(|e| shape(&e))?,
        stranded_pairs: get("stranded_pairs")?.as_usize().map_err(|e| shape(&e))?,
    })
}

fn sweep_record_to_json(r: &SweepRecord) -> Json {
    Json::obj([
        ("spec", spec_to_json(&r.spec)),
        ("label", Json::Str(r.label.clone())),
        ("exposure", exposure_to_json(&r.exposure)),
    ])
}

fn sweep_record_from_json(v: &Json) -> Result<SweepRecord, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    Ok(SweepRecord {
        spec: spec_from_json(get("spec")?)?,
        label: get("label")?.as_str().map_err(|e| shape(&e))?.to_string(),
        exposure: exposure_from_json(get("exposure")?)?,
    })
}

fn progress_to_json(progress: &SnapshotProgress) -> Json {
    match progress {
        SnapshotProgress::Provision(links) => Json::obj([
            ("kind", Json::Str("provision".into())),
            ("original_bit_risk", Json::Num(links.original_bit_risk)),
            (
                "added",
                Json::Arr(links.added.iter().map(candidate_to_json).collect()),
            ),
        ]),
        SnapshotProgress::Replay { replay, next_index } => Json::obj([
            ("kind", Json::Str("replay".into())),
            ("storm", Json::Str(replay.storm.clone())),
            ("network", Json::Str(replay.network.clone())),
            ("next_index", Json::Num(*next_index as f64)),
            (
                "ticks",
                Json::Arr(replay.ticks.iter().map(tick_to_json).collect()),
            ),
        ]),
        SnapshotProgress::Sweep {
            baseline,
            records,
            next_index,
        } => Json::obj([
            ("kind", Json::Str("sweep".into())),
            ("baseline", exposure_to_json(baseline)),
            ("next_index", Json::Num(*next_index as f64)),
            (
                "records",
                Json::Arr(records.iter().map(sweep_record_to_json).collect()),
            ),
        ]),
    }
}

fn progress_from_json(v: &Json) -> Result<SnapshotProgress, Error> {
    let get = |key: &str| v.field(key).map_err(|e| shape(&e));
    let kind = get("kind")?.as_str().map_err(|e| shape(&e))?.to_string();
    match kind.as_str() {
        "provision" => {
            let added = get("added")?
                .as_arr()
                .map_err(|e| shape(&e))?
                .iter()
                .map(candidate_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SnapshotProgress::Provision(GreedyLinks {
                original_bit_risk: get("original_bit_risk")?.as_f64().map_err(|e| shape(&e))?,
                added,
            }))
        }
        "replay" => {
            let ticks = get("ticks")?
                .as_arr()
                .map_err(|e| shape(&e))?
                .iter()
                .map(tick_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SnapshotProgress::Replay {
                replay: DisasterReplay {
                    storm: get("storm")?.as_str().map_err(|e| shape(&e))?.to_string(),
                    network: get("network")?.as_str().map_err(|e| shape(&e))?.to_string(),
                    ticks,
                },
                next_index: get("next_index")?.as_usize().map_err(|e| shape(&e))?,
            })
        }
        "sweep" => {
            let records = get("records")?
                .as_arr()
                .map_err(|e| shape(&e))?
                .iter()
                .map(sweep_record_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SnapshotProgress::Sweep {
                baseline: exposure_from_json(get("baseline")?)?,
                records,
                next_index: get("next_index")?.as_usize().map_err(|e| shape(&e))?,
            })
        }
        other => Err(integrity(format!("unknown progress kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_provision() -> Snapshot {
        Snapshot::provision(
            "Sprint",
            5,
            1e5,
            1e3,
            &GreedyLinks {
                original_bit_risk: 123456.789012345,
                added: vec![CandidateLink {
                    a: 3,
                    b: 11,
                    miles: 412.03125,
                    total_bit_risk: 98765.4321098765,
                    shortcut_threshold: 0.5,
                }],
            },
        )
    }

    fn sample_replay() -> Snapshot {
        Snapshot::replay(
            "Telepak",
            "katrina",
            4,
            1e5,
            1e3,
            &DisasterReplay {
                storm: "KATRINA".into(),
                network: "Telepak".into(),
                ticks: vec![ReplayTick {
                    advisory: 9,
                    label: "11 AM CDT SAT AUG 27 2005".into(),
                    pops_in_scope: 2,
                    pops_in_hurricane_winds: 1,
                    report: RatioReport {
                        risk_reduction_ratio: 0.123456789,
                        distance_increase_ratio: 0.0123456789,
                        pairs: 42,
                        stranded_pairs: 3,
                    },
                    degraded: true,
                }],
            },
            5,
        )
    }

    fn sample_sweep() -> Snapshot {
        Snapshot::sweep(
            "Level3",
            SweepMode::Ensemble {
                samples: 64,
                // Exercises the > 2^53 range that a JSON number would lose.
                seed: u64::MAX - 12345,
            },
            1e5,
            1e3,
            ExposureReport {
                bit_risk_total: 9_876_543.210987654,
                routable_pairs: 27_028,
                stranded_pairs: 0,
            },
            &[
                SweepRecord {
                    spec: ScenarioSpec::One(FailElement::Node(17)),
                    label: "node 17 (Denver)".into(),
                    exposure: ExposureReport {
                        bit_risk_total: 9_900_001.000000001,
                        routable_pairs: 26_796,
                        stranded_pairs: 232,
                    },
                },
                SweepRecord {
                    spec: ScenarioSpec::Two(FailElement::Link(3, 9), FailElement::Node(4)),
                    label: "link 3-9 (A - B) + node 4 (C)".into(),
                    exposure: ExposureReport {
                        bit_risk_total: 0.123_456_789_012_345_68,
                        routable_pairs: 5,
                        stranded_pairs: 27_023,
                    },
                },
                SweepRecord {
                    spec: ScenarioSpec::Member {
                        index: 63,
                        seed: u64::MAX - 12345,
                    },
                    label: "member 63".into(),
                    exposure: ExposureReport {
                        bit_risk_total: 1e300,
                        routable_pairs: 27_028,
                        stranded_pairs: 0,
                    },
                },
            ],
            3,
        )
    }

    #[test]
    fn snapshots_round_trip_bit_identically() {
        for snapshot in [sample_provision(), sample_replay(), sample_sweep()] {
            let text = snapshot.to_text();
            let back = load_snapshot(&text).unwrap();
            assert_eq!(back, snapshot, "exact round trip, f64s included");
        }
    }

    #[test]
    fn sweep_seeds_survive_beyond_f64_precision() {
        let text = sample_sweep().to_text();
        let back = load_snapshot(&text).unwrap();
        let SnapshotJob::Sweep { seed, .. } = back.job else {
            panic!("sweep job expected");
        };
        assert_eq!(seed, u64::MAX - 12345);
    }

    #[test]
    fn sweep_kind_mismatch_is_rejected() {
        let franken = Snapshot {
            job: sample_sweep().job,
            progress: sample_replay().progress,
        };
        let err = load_snapshot(&franken.to_text()).unwrap_err();
        assert!(err.to_string().contains("kind mismatch"));
    }

    #[test]
    fn truncated_bytes_fail_with_typed_integrity_error() {
        let text = sample_provision().to_text();
        // Every proper prefix must be a typed error (or, for a prefix that
        // still ends exactly after "end\n", the full document).
        for cut in 0..text.len() - 1 {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let err = load_snapshot(&text[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::SnapshotIntegrity { .. } | Error::SnapshotVersion { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let text = sample_replay().to_text();
        // Flip a digit inside the progress payload.
        let corrupted = text.replacen("\"pairs\":42", "\"pairs\":43", 1);
        assert_ne!(corrupted, text);
        let err = load_snapshot(&corrupted).unwrap_err();
        assert!(matches!(err, Error::SnapshotIntegrity { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn stale_version_is_a_typed_error_with_job_fallback() {
        let text = sample_provision()
            .to_text()
            .replacen("riskroute-snapshot/1", "riskroute-snapshot/99", 1);
        let err = load_snapshot(&text).unwrap_err();
        assert_eq!(
            err,
            Error::SnapshotVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            }
        );
        let outcome = load_snapshot_with_fallback(&text).unwrap();
        let LoadOutcome::Fallback { job, error } = outcome else {
            panic!("stale snapshot must fall back, not resume");
        };
        assert_eq!(job.kind(), "provision");
        assert!(matches!(error, Error::SnapshotVersion { .. }));
    }

    #[test]
    fn truncation_after_the_job_line_falls_back_to_the_job() {
        let text = sample_replay().to_text();
        let job_end = text.find("\nprogress ").unwrap() + 1;
        let outcome = load_snapshot_with_fallback(&text[..job_end]).unwrap();
        let LoadOutcome::Fallback { job, error } = outcome else {
            panic!("truncated progress must fall back");
        };
        assert!(matches!(job, SnapshotJob::Replay { ref storm, .. } if storm == "katrina"));
        assert!(matches!(error, Error::SnapshotIntegrity { .. }));
    }

    #[test]
    fn truncation_inside_the_job_line_is_unrecoverable_but_typed() {
        let text = sample_provision().to_text();
        let mid_job = text.find("\"network\"").unwrap();
        let err = load_snapshot_with_fallback(&text[..mid_job]).unwrap_err();
        assert!(matches!(err, Error::SnapshotIntegrity { .. }), "{err}");
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let provision = sample_provision();
        let replay = sample_replay();
        let franken = Snapshot {
            job: provision.job,
            progress: replay.progress,
        };
        let err = load_snapshot(&franken.to_text()).unwrap_err();
        assert!(err.to_string().contains("kind mismatch"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn write_atomic_replaces_never_truncates() {
        let dir = std::env::temp_dir().join("riskroute-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        write_atomic(&path, "first version\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first version\n");
        write_atomic(&path, "second version\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second version\n");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
