//! Backup routing support (§3.1 of the paper).
//!
//! "RiskRoute fits very nicely into the IP Fast Reroute framework by
//! offering an algorithm for backup/repair path calculation." This module
//! provides the two deployment shapes §3.1 sketches:
//!
//! - [`backup_paths`] — ranked loopless alternates for a PoP pair (MPLS
//!   failover tunnels, RFC 4090-style), ordered by bit-risk miles.
//! - [`lfa_next_hops`] — per-source loop-free alternate next hops toward a
//!   destination (RFC 5714 IP Fast Reroute), where both the primary and the
//!   alternate are chosen under the bit-risk metric.
//!
//! The bit-risk weighting is directional (risk is charged at the entered
//! PoP), but for a *fixed* source/destination pair every path's cost under
//! the symmetric half-risk weighting `d(u,v) + β·(ρ(u)+ρ(v))/2` differs
//! from its true Eq. 1 cost by the same constant `β·(ρ(src) − ρ(dst))/2` —
//! so ranking paths with Yen's algorithm over the symmetric graph yields
//! exactly the bit-risk ranking, and each returned path is re-evaluated
//! under the exact metric.

use crate::intradomain::Planner;
use crate::routing::RoutedPath;
use riskroute_graph::yen::k_shortest_paths;
use riskroute_graph::Graph;
use riskroute_topology::Network;

/// A primary path plus ranked backups for one PoP pair.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupPlan {
    /// Source PoP.
    pub src: usize,
    /// Destination PoP.
    pub dst: usize,
    /// The minimum bit-risk-mile path (Eq. 3).
    pub primary: RoutedPath,
    /// Loopless alternates in non-decreasing bit-risk order (may be empty
    /// when the topology admits only one loopless path).
    pub alternates: Vec<RoutedPath>,
}

/// Compute the primary plus up to `k - 1` ranked backup paths between `i`
/// and `j`. Returns `None` when the pair is unreachable.
///
/// # Panics
/// Panics when `k == 0` or a PoP index is out of range.
pub fn backup_paths(
    planner: &Planner,
    network: &Network,
    i: usize,
    j: usize,
    k: usize,
) -> Option<BackupPlan> {
    assert!(k > 0, "k must be positive");
    let beta = planner.impact(i, j);
    let w = planner.weights();
    let rho = |v: usize| beta * planner.risk().scaled(v, w);
    // Symmetric half-risk graph: same path ranking as the exact metric for
    // this fixed pair (see module docs).
    let mut g = Graph::with_nodes(network.pop_count());
    for l in network.links() {
        // A non-finite half-risk weight (poisoned risk vector) drops the
        // link from the ranking graph instead of aborting the plan — the
        // same unroutable treatment `risk_sssp` gives poisoned nodes.
        let _ = g.add_edge(l.a, l.b, l.miles + (rho(l.a) + rho(l.b)) / 2.0);
    }
    let ranked = k_shortest_paths(&g, i, j, k);
    if ranked.is_empty() {
        return None;
    }
    // Yen-ranked paths traverse real links, so evaluation cannot fail; a
    // hypothetical mismatch drops the path rather than aborting the plan.
    let mut paths: Vec<RoutedPath> = ranked
        .iter()
        .filter_map(|p| planner.evaluate(i, j, &p.nodes).ok())
        .collect();
    if paths.is_empty() {
        return None;
    }
    let primary = paths.remove(0);
    Some(BackupPlan {
        src: i,
        dst: j,
        primary,
        alternates: paths,
    })
}

/// One source's forwarding entry toward a destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NextHops {
    /// The source PoP.
    pub src: usize,
    /// Primary next hop (first hop of the RiskRoute path). `None` when the
    /// destination is unreachable.
    pub primary: Option<usize>,
    /// A loop-free alternate: a neighbor `n ≠ primary` whose own bit-risk
    /// distance to the destination is strictly below the source's (so
    /// forwarding through it can never loop back). `None` when no such
    /// neighbor exists — the PoP has no local protection against a primary
    /// failure.
    pub alternate: Option<usize>,
}

/// RFC 5714-style loop-free alternates toward `dst` for every source PoP,
/// under the bit-risk metric.
///
/// The LFA condition uses each pair's own impact factor β(src, dst), so the
/// protection decisions match what RiskRoute would actually route.
pub fn lfa_next_hops(planner: &Planner, network: &Network, dst: usize) -> Vec<NextHops> {
    let n = network.pop_count();
    let w = planner.weights();
    (0..n)
        .map(|src| {
            if src == dst {
                return NextHops {
                    src,
                    primary: None,
                    alternate: None,
                };
            }
            let beta = planner.impact(src, dst);
            let rho = |v: usize| beta * planner.risk().scaled(v, w);
            // Tree from dst under this pair's weighting; dist(x→dst) =
            // dist(dst→x) + β(ρ(dst) − ρ(x)) by the reversal identity.
            let tree = planner.risk_tree(dst, beta);
            let to_dst = |x: usize| {
                let d = tree.dist(x);
                if d.is_finite() {
                    d + rho(dst) - rho(x)
                } else {
                    f64::INFINITY
                }
            };
            let d_src = to_dst(src);
            if !d_src.is_finite() {
                return NextHops {
                    src,
                    primary: None,
                    alternate: None,
                };
            }
            // Primary = neighbor minimizing hop + remaining cost.
            let mut best: Option<(usize, f64)> = None;
            let mut alt: Option<(usize, f64)> = None;
            for l in network.links() {
                let (a, b) = (l.a, l.b);
                for (u, v) in [(a, b), (b, a)] {
                    if u != src {
                        continue;
                    }
                    let via = l.miles + rho(v) + to_dst(v);
                    if best.is_none_or(|(_, c)| via < c) {
                        best = Some((v, via));
                    }
                }
            }
            let primary = best.map(|(v, _)| v);
            for l in network.links() {
                let (a, b) = (l.a, l.b);
                for (u, v) in [(a, b), (b, a)] {
                    if u != src || Some(v) == primary {
                        continue;
                    }
                    // Loop-free condition: the alternate is strictly closer
                    // to the destination than we are.
                    if to_dst(v) < d_src - 1e-12 {
                        let via = l.miles + rho(v) + to_dst(v);
                        if alt.is_none_or(|(_, c)| via < c) {
                            alt = Some((v, via));
                        }
                    }
                }
            }
            NextHops {
                src,
                primary,
                alternate: alt.map(|(v, _)| v),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// Diamond with a risky southern waypoint.
    fn diamond() -> (Network, Planner) {
        let net = Network::new(
            "diamond",
            NetworkKind::Regional,
            vec![
                pop("W", 35.0, -100.0),
                pop("N", 37.5, -97.0),
                pop("S", 35.0, -97.0),
                pop("E", 35.0, -94.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0], vec![0.0; 4]);
        let planner = Planner::new(
            &net,
            risk,
            PopShares::from_shares(vec![0.25; 4]),
            RiskWeights::historical_only(1e5),
        );
        (net, planner)
    }

    #[test]
    fn primary_is_the_risk_route_and_alternates_are_ranked() {
        let (net, planner) = diamond();
        let plan = backup_paths(&planner, &net, 0, 3, 3).unwrap();
        let rr = planner.risk_route(0, 3).unwrap();
        assert_eq!(plan.primary.nodes, rr.nodes);
        assert!((plan.primary.bit_risk_miles - rr.bit_risk_miles).abs() < 1e-9);
        assert!(!plan.alternates.is_empty());
        let mut prev = plan.primary.bit_risk_miles;
        for alt in &plan.alternates {
            assert!(alt.bit_risk_miles >= prev - 1e-9, "alternates are ranked");
            prev = alt.bit_risk_miles;
        }
        // The diamond's backup for the safe northern route is the risky
        // southern one.
        assert_eq!(plan.alternates[0].nodes, vec![0, 2, 3]);
    }

    #[test]
    fn alternates_are_node_disjoint_from_nothing_but_loopless() {
        let (net, planner) = diamond();
        let plan = backup_paths(&planner, &net, 0, 3, 4).unwrap();
        for alt in &plan.alternates {
            let mut seen = std::collections::HashSet::new();
            assert!(alt.nodes.iter().all(|n| seen.insert(*n)));
            assert_ne!(alt.nodes, plan.primary.nodes);
        }
    }

    #[test]
    fn unreachable_pair_gives_none() {
        let net = Network::new(
            "split",
            NetworkKind::Regional,
            vec![
                pop("A", 30.0, -95.0),
                pop("B", 31.0, -95.0),
                pop("C", 40.0, -80.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let planner = Planner::new(
            &net,
            NodeRisk::new(vec![0.0; 3], vec![0.0; 3]),
            PopShares::from_shares(vec![1.0 / 3.0; 3]),
            RiskWeights::PAPER,
        );
        assert!(backup_paths(&planner, &net, 0, 2, 3).is_none());
    }

    #[test]
    fn lfa_protects_the_diamond() {
        let (net, planner) = diamond();
        let hops = lfa_next_hops(&planner, &net, 3);
        // Source 0: primary north (1), alternate south (2) — both neighbors
        // are strictly closer to E than W is.
        let w = &hops[0];
        assert_eq!(w.primary, Some(1));
        assert_eq!(w.alternate, Some(2));
        // Destination row is empty.
        assert_eq!(hops[3].primary, None);
        // N and S forward straight to E and have no loop-free alternate
        // (their only other neighbor, W, is farther from E).
        assert_eq!(hops[1].primary, Some(3));
        assert_eq!(hops[1].alternate, None);
        assert_eq!(hops[2].primary, Some(3));
        assert_eq!(hops[2].alternate, None);
    }

    #[test]
    fn lfa_handles_unreachable_sources() {
        let net = Network::new(
            "split",
            NetworkKind::Regional,
            vec![
                pop("A", 30.0, -95.0),
                pop("B", 31.0, -95.0),
                pop("C", 40.0, -80.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let planner = Planner::new(
            &net,
            NodeRisk::new(vec![0.0; 3], vec![0.0; 3]),
            PopShares::from_shares(vec![1.0 / 3.0; 3]),
            RiskWeights::PAPER,
        );
        let hops = lfa_next_hops(&planner, &net, 0);
        assert_eq!(hops[1].primary, Some(0));
        assert_eq!(hops[2].primary, None, "island has no route");
        assert_eq!(hops[2].alternate, None);
    }

    #[test]
    fn symmetric_ranking_matches_exact_costs() {
        // Every Yen-ranked alternate, re-evaluated exactly, must still be in
        // non-decreasing order — the constant-shift argument in practice.
        let (net, planner) = diamond();
        for (i, j) in [(0, 3), (3, 0), (1, 2)] {
            let plan = backup_paths(&planner, &net, i, j, 5).unwrap();
            let mut prev = plan.primary.bit_risk_miles;
            for alt in &plan.alternates {
                assert!(alt.bit_risk_miles >= prev - 1e-9);
                prev = alt.bit_risk_miles;
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (net, planner) = diamond();
        let _ = backup_paths(&planner, &net, 0, 3, 0);
    }
}
