//! Intradomain RiskRoute (§6.1): minimum bit-risk-mile routing within one
//! provider and the aggregate trade-off against shortest-path routing.

use crate::error::Error;
use crate::metric::{ImpactModel, NodeRisk, RiskWeights};
use crate::ratios::{PairOutcome, RatioReport};
use crate::routing::{evaluate_path, risk_sssp, Adjacency, RiskTree, RoutedPath};
use riskroute_hazard::HistoricalRisk;
use riskroute_par::Parallelism;
use riskroute_population::{PopShares, PopulationModel};
use riskroute_topology::Network;

/// How many unordered PoP pairs a parallel sweep dispatches per wave.
/// Purely a memory bound on the in-flight per-pair contribution vectors —
/// the reduction folds in pair order regardless of wave size or thread
/// count, so this constant never affects results.
pub(crate) const PAIR_WAVE: usize = 256;

/// The `i < j` pair list in lexicographic order — the canonical reduction
/// order every parallel sweep must replay to stay bit-identical to the
/// sequential nested loops.
pub(crate) fn unordered_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// The result of a degraded-mode pair sweep: the outcomes that routed plus
/// the (src, dst) pairs stranded by a partition.
#[derive(Debug, Clone, Default)]
pub struct PairSweep {
    /// Pairs that routed in both metrics.
    pub outcomes: Vec<PairOutcome>,
    /// Pairs with no connecting path (cross-component under a partition).
    pub stranded: Vec<(usize, usize)>,
}

/// The intradomain routing engine for one network.
///
/// Holds the topology adjacency, per-PoP risk vectors, population shares,
/// and the λ weights; answers RiskRoute (Eq. 3) and shortest-path queries,
/// and aggregates the §7 ratio reports.
#[derive(Debug, Clone)]
pub struct Planner {
    adjacency: Adjacency,
    risk: NodeRisk,
    shares: PopShares,
    weights: RiskWeights,
    impact_model: ImpactModel,
    parallelism: Parallelism,
}

impl Planner {
    /// Build a planner from prepared parts.
    ///
    /// # Panics
    /// Panics when vector lengths disagree with the network size.
    pub fn new(network: &Network, risk: NodeRisk, shares: PopShares, weights: RiskWeights) -> Self {
        assert_eq!(risk.len(), network.pop_count(), "risk must cover every PoP");
        assert_eq!(
            shares.shares().len(),
            network.pop_count(),
            "shares must cover every PoP"
        );
        let adjacency = Adjacency::from_links(
            network.pop_count(),
            network.links().iter().map(|l| (l.a, l.b, l.miles)),
        );
        Planner {
            adjacency,
            risk,
            shares,
            weights,
            impact_model: ImpactModel::default(),
            parallelism: Parallelism::Sequential,
        }
    }

    /// Set the parallelism knob for the planner's sweeps
    /// ([`pair_sweep`](Self::pair_sweep), [`aggregate_bit_risk`](Self::aggregate_bit_risk),
    /// and the provisioning scorer); returns the planner for chaining.
    ///
    /// Every setting produces **bit-identical** results — parallel sweeps
    /// reduce in the sequential order (see `riskroute-par`) — so the knob
    /// only trades wall-clock for cores.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the parallelism knob in place.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The active parallelism knob.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Switch the impact model (§5's traffic-flow alternative); returns the
    /// planner for chaining.
    pub fn with_impact_model(mut self, model: ImpactModel) -> Self {
        self.impact_model = model;
        self
    }

    /// The active impact model.
    pub fn impact_model(&self) -> ImpactModel {
        self.impact_model
    }

    /// Build a planner with the standard §5 instantiation: population
    /// shares by nearest-neighbour census assignment and historical risk
    /// from the five-corpus hazard model (zero forecast risk).
    pub fn for_network(
        network: &Network,
        population: &PopulationModel,
        hazards: &HistoricalRisk,
        weights: RiskWeights,
    ) -> Self {
        let shares = PopShares::assign(population, network, None);
        let risk = NodeRisk::from_historical(network, hazards);
        Planner::new(network, risk, shares, weights)
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.adjacency.node_count()
    }

    /// The adjacency (for provisioning analyses).
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// The per-PoP risk vectors.
    pub fn risk(&self) -> &NodeRisk {
        &self.risk
    }

    /// Mutable access to the risk vectors (replay updates the forecast
    /// component per advisory).
    pub fn risk_mut(&mut self) -> &mut NodeRisk {
        &mut self.risk
    }

    /// The population shares.
    pub fn shares(&self) -> &PopShares {
        &self.shares
    }

    /// The λ weights.
    pub fn weights(&self) -> RiskWeights {
        self.weights
    }

    /// Replace the λ weights.
    pub fn set_weights(&mut self, weights: RiskWeights) {
        self.weights = weights;
    }

    /// Outage impact β(i,j) under the active [`ImpactModel`]
    /// (§5.1's c_i + c_j by default).
    pub fn impact(&self, i: usize, j: usize) -> f64 {
        self.impact_model
            .beta(self.shares.share(i), self.shares.share(j))
    }

    /// The λ- and β-scaled risk charged for entering PoP `v` on an (i, j)
    /// route.
    #[inline]
    fn entry_cost(&self, beta: f64) -> impl Fn(usize) -> f64 + '_ {
        let w = self.weights;
        move |v| beta * self.risk.scaled(v, w)
    }

    /// Evaluate an explicit node sequence under the (i, j) pair's bit-risk
    /// metric (the path need not be optimal — backup planning evaluates
    /// Yen-ranked alternates this way).
    ///
    /// # Errors
    /// [`Error::NotAdjacent`] when consecutive nodes are not physically
    /// linked.
    pub fn evaluate(&self, i: usize, j: usize, nodes: &[usize]) -> Result<RoutedPath, Error> {
        let beta = self.impact(i, j);
        evaluate_path(&self.adjacency, nodes, self.entry_cost(beta))
    }

    /// The RiskRoute path (Eq. 3): minimum bit-risk miles from `i` to `j`.
    /// `None` when unreachable.
    pub fn risk_route(&self, i: usize, j: usize) -> Option<RoutedPath> {
        let beta = self.impact(i, j);
        let tree = risk_sssp(&self.adjacency, i, self.entry_cost(beta));
        let nodes = tree.path_to(j)?;
        // Tree paths traverse real links by construction.
        evaluate_path(&self.adjacency, &nodes, self.entry_cost(beta)).ok()
    }

    /// [`risk_route`](Self::risk_route) as a typed result: unreachable pairs
    /// come back as [`Error::Unreachable`] carrying the pair, for callers
    /// (like the CLI) that must report *why* rather than silently skip.
    pub fn try_risk_route(&self, i: usize, j: usize) -> Result<RoutedPath, Error> {
        self.risk_route(i, j).ok_or_else(|| Error::Unreachable {
            network: String::new(),
            src: i,
            dst: j,
        })
    }

    /// The geographic shortest path from `i` to `j`, *evaluated under the
    /// bit-risk metric* of the (i, j) pair so it is directly comparable to
    /// [`risk_route`](Self::risk_route). `None` when unreachable.
    pub fn shortest_route(&self, i: usize, j: usize) -> Option<RoutedPath> {
        let tree = risk_sssp(&self.adjacency, i, |_| 0.0);
        let nodes = tree.path_to(j)?;
        let beta = self.impact(i, j);
        evaluate_path(&self.adjacency, &nodes, self.entry_cost(beta)).ok()
    }

    /// Full SSSP under the (i, j) pair's bit-risk weighting, rooted at `root`
    /// (used by the provisioning sweep).
    pub(crate) fn risk_tree(&self, root: usize, beta: f64) -> RiskTree {
        risk_sssp(&self.adjacency, root, self.entry_cost(beta))
    }

    /// Pure bit-mile SSSP tree from `root` (the shortest-path baseline and
    /// the provisioning candidate filter both use it).
    pub(crate) fn risk_tree_distance(&self, root: usize) -> RiskTree {
        risk_sssp(&self.adjacency, root, |_| 0.0)
    }

    /// Route one source against every destination, appending routed pairs
    /// to `outcomes` and unroutable ones to `stranded` — the per-source unit
    /// of work shared verbatim by the sequential and parallel sweeps.
    fn sweep_source(
        &self,
        i: usize,
        dests: &[usize],
        outcomes: &mut Vec<PairOutcome>,
        stranded: &mut Vec<(usize, usize)>,
    ) {
        let dist_tree = risk_sssp(&self.adjacency, i, |_| 0.0);
        for &j in dests {
            if i == j {
                continue;
            }
            let beta = self.impact(i, j);
            let Some(sp_nodes) = dist_tree.path_to(j) else {
                stranded.push((i, j));
                continue;
            };
            let Ok(shortest) = evaluate_path(&self.adjacency, &sp_nodes, self.entry_cost(beta))
            else {
                stranded.push((i, j));
                continue;
            };
            let Some(risk_route) = self.risk_route(i, j) else {
                stranded.push((i, j));
                continue;
            };
            outcomes.push(PairOutcome {
                src: i,
                dst: j,
                risk_route,
                shortest,
            });
        }
    }

    /// Pair outcomes plus the pairs that could not be routed — the
    /// degraded-mode sweep. When a storm (or a chaos fault plan) partitions
    /// the topology, routing proceeds *within* each connected component and
    /// the cross-component pairs are surfaced as `stranded` instead of
    /// aborting the aggregation.
    pub fn pair_sweep(&self, sources: &[usize], dests: &[usize]) -> PairSweep {
        let span = riskroute_obs::span!("pair_sweep");
        let mut outcomes = Vec::with_capacity(sources.len() * dests.len());
        let mut stranded = Vec::new();
        match self.parallelism {
            Parallelism::Sequential => {
                for &i in sources {
                    self.sweep_source(i, dests, &mut outcomes, &mut stranded);
                }
            }
            par => {
                // One task per source; concatenating the per-source lists in
                // source order reproduces the sequential push order exactly.
                let per_source = riskroute_par::par_map_collect(par, sources, |_, &i| {
                    let mut outcomes = Vec::with_capacity(dests.len());
                    let mut stranded = Vec::new();
                    self.sweep_source(i, dests, &mut outcomes, &mut stranded);
                    (outcomes, stranded)
                });
                for (o, s) in per_source {
                    outcomes.extend(o);
                    stranded.extend(s);
                }
            }
        }
        let mut span = span;
        if span.is_active() {
            span.field("pairs_routed", outcomes.len());
            span.field("pairs_stranded", stranded.len());
            riskroute_obs::counter_add("pairs_routed", outcomes.len() as u64);
            riskroute_obs::counter_add("pairs_stranded", stranded.len() as u64);
            let bit_risk: f64 = outcomes.iter().map(|o| o.risk_route.bit_risk_miles).sum();
            riskroute_obs::gauge_set("pair_sweep_bit_risk_miles", bit_risk);
        }
        PairSweep { outcomes, stranded }
    }

    /// Pair outcomes for an explicit source × destination sweep (src ≠ dst,
    /// reachable pairs only). Distance trees are computed once per source.
    ///
    /// The interdomain analysis uses this with a regional network's PoPs as
    /// sources and all regional PoPs as destinations (§7).
    pub fn pair_outcomes(&self, sources: &[usize], dests: &[usize]) -> Vec<PairOutcome> {
        self.pair_sweep(sources, dests).outcomes
    }

    /// All informative pair outcomes over the whole network, for the
    /// Eq. 5/6 ratios.
    pub fn all_pair_outcomes(&self) -> Vec<PairOutcome> {
        let all: Vec<usize> = (0..self.pop_count()).collect();
        self.pair_outcomes(&all, &all)
    }

    /// The §7 ratio report over all PoP pairs (Eqs. 5–6). Stranded pairs
    /// (partitioned topologies) are counted on the report rather than
    /// aborting it.
    pub fn ratio_report(&self) -> RatioReport {
        let all: Vec<usize> = (0..self.pop_count()).collect();
        let sweep = self.pair_sweep(&all, &all);
        RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len())
    }

    /// Total aggregated bit-risk miles `Σ_{i<j} min_p r_{i,j}(p)` — the
    /// objective of the provisioning analysis (Eq. 4).
    pub fn aggregate_bit_risk(&self) -> f64 {
        let span = riskroute_obs::span!("aggregate_bit_risk");
        let n = self.pop_count();
        let mut total = 0.0;
        match self.parallelism {
            Parallelism::Sequential => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        if let Some(p) = self.risk_route(i, j) {
                            total += p.bit_risk_miles;
                        }
                    }
                }
            }
            par => {
                // Per-pair contributions computed in parallel, folded
                // strictly in lexicographic pair order: float addition is
                // non-associative, so only replaying the sequential order
                // keeps the sum bit-identical.
                for wave in unordered_pairs(n).chunks(PAIR_WAVE) {
                    let vals = riskroute_par::par_map_collect(par, wave, |_, &(i, j)| {
                        self.risk_route(i, j).map(|p| p.bit_risk_miles)
                    });
                    for v in vals.into_iter().flatten() {
                        total += v;
                    }
                }
            }
        }
        let mut span = span;
        if span.is_active() {
            span.field("total_bit_risk_miles", total);
            riskroute_obs::counter_add("aggregate_bit_risk_runs", 1);
            riskroute_obs::gauge_set("aggregate_bit_risk_miles", total);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A diamond where the northern detour avoids a risky middle PoP:
    ///
    /// ```text
    ///        1 (safe, north)
    ///      /   \
    ///    0       3
    ///      \   /
    ///        2 (risky, direct-ish)
    /// ```
    fn diamond() -> (Network, NodeRisk, PopShares) {
        let net = Network::new(
            "diamond",
            NetworkKind::Regional,
            vec![
                pop("West", 35.0, -100.0),
                pop("North", 37.5, -97.0),
                pop("South", 35.0, -97.0),
                pop("East", 35.0, -94.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        // PoP 2's risk at β = 0.5, λ_h = 1e5 is worth 250 bit-miles — more
        // than the ~140-mile northern detour, so RiskRoute must divert.
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0], vec![0.0; 4]);
        // Uniform shares: β = 0.5 for every pair.
        let shares = PopShares::from_shares(vec![0.25; 4]);
        (net, risk, shares)
    }

    fn planner(lambda_h: f64) -> Planner {
        let (net, risk, shares) = diamond();
        Planner::new(&net, risk, shares, RiskWeights::historical_only(lambda_h))
    }

    #[test]
    fn shortest_route_takes_risky_southern_path() {
        let p = planner(1e5);
        let sp = p.shortest_route(0, 3).unwrap();
        assert_eq!(sp.nodes, vec![0, 2, 3], "south is geographically shorter");
        assert!(sp.risk_miles > 0.0, "and pays the risk of PoP 2");
    }

    #[test]
    fn risk_route_detours_north_when_lambda_large() {
        let p = planner(1e5);
        let rr = p.risk_route(0, 3).unwrap();
        assert_eq!(rr.nodes, vec![0, 1, 3]);
        assert_eq!(rr.risk_miles, 0.0);
        assert!(rr.bit_miles > p.shortest_route(0, 3).unwrap().bit_miles);
    }

    #[test]
    fn risk_route_matches_shortest_when_lambda_zero() {
        let p = planner(0.0);
        let rr = p.risk_route(0, 3).unwrap();
        let sp = p.shortest_route(0, 3).unwrap();
        assert_eq!(rr.nodes, sp.nodes);
        assert_eq!(rr.bit_risk_miles, sp.bit_risk_miles);
    }

    #[test]
    fn risk_route_never_exceeds_shortest_in_bit_risk() {
        let p = planner(1e5);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let rr = p.risk_route(i, j).unwrap();
                let sp = p.shortest_route(i, j).unwrap();
                assert!(
                    rr.bit_risk_miles <= sp.bit_risk_miles + 1e-9,
                    "({i},{j}): rr {} > sp {}",
                    rr.bit_risk_miles,
                    sp.bit_risk_miles
                );
                assert!(
                    rr.bit_miles >= sp.bit_miles - 1e-9,
                    "RiskRoute can never be geographically shorter"
                );
            }
        }
    }

    #[test]
    fn ratio_report_reflects_the_detour() {
        let p = planner(1e5);
        let r = p.ratio_report();
        assert!(r.risk_reduction_ratio > 0.0);
        assert!(r.distance_increase_ratio > 0.0);
        assert_eq!(r.pairs, 12);
        let p0 = planner(0.0);
        let r0 = p0.ratio_report();
        assert!(r0.risk_reduction_ratio.abs() < 1e-12);
        assert!(r0.distance_increase_ratio.abs() < 1e-12);
    }

    #[test]
    fn larger_lambda_is_weakly_more_risk_averse() {
        let r5 = planner(1e5).ratio_report();
        let r6 = planner(1e6).ratio_report();
        assert!(r6.risk_reduction_ratio >= r5.risk_reduction_ratio - 1e-12);
        assert!(r6.distance_increase_ratio >= r5.distance_increase_ratio - 1e-12);
    }

    #[test]
    fn aggregate_bit_risk_sums_unordered_pairs() {
        let p = planner(1e5);
        let mut expect = 0.0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                expect += p.risk_route(i, j).unwrap().bit_risk_miles;
            }
        }
        assert!((p.aggregate_bit_risk() - expect).abs() < 1e-9);
    }

    #[test]
    fn unreachable_pairs_return_none() {
        let net = Network::new(
            "split",
            NetworkKind::Regional,
            vec![
                pop("A", 35.0, -100.0),
                pop("B", 36.0, -100.0),
                pop("C", 40.0, -90.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0; 3], vec![0.0; 3]);
        let shares = PopShares::from_shares(vec![0.4, 0.4, 0.2]);
        let p = Planner::new(&net, risk, shares, RiskWeights::PAPER);
        assert!(p.risk_route(0, 2).is_none());
        assert!(p.shortest_route(0, 2).is_none());
        assert!(p.risk_route(0, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "risk must cover every PoP")]
    fn mismatched_risk_length_panics() {
        let (net, _, shares) = diamond();
        let bad_risk = NodeRisk::new(vec![0.0], vec![0.0]);
        let _ = Planner::new(&net, bad_risk, shares, RiskWeights::PAPER);
    }

    #[test]
    fn impact_uses_shares() {
        let p = planner(1e5);
        assert!((p.impact(0, 3) - 0.5).abs() < 1e-12);
    }
}
