//! Intradomain RiskRoute (§6.1): minimum bit-risk-mile routing within one
//! provider and the aggregate trade-off against shortest-path routing.

use crate::engine::{self, CsrGraph, RepairOutcome, RouteTreeCache, TreeKey};
use crate::error::Error;
use crate::metric::{ImpactModel, NodeRisk, RiskWeights};
use crate::ratios::{PairOutcome, RatioReport};
use crate::routing::{evaluate_path, Adjacency, RiskTree, RoutedPath};
use riskroute_hazard::HistoricalRisk;
use riskroute_par::Parallelism;
use riskroute_population::{PopShares, PopulationModel};
use riskroute_topology::Network;
use std::sync::Arc;

/// How many unordered PoP pairs a parallel sweep dispatches per wave.
/// Purely a memory bound on the in-flight per-pair contribution vectors —
/// the reduction folds in pair order regardless of wave size or thread
/// count, so this constant never affects results.
pub(crate) const PAIR_WAVE: usize = 256;

/// The `i < j` pair list in lexicographic order — the canonical reduction
/// order every parallel sweep must replay to stay bit-identical to the
/// sequential nested loops.
pub(crate) fn unordered_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// Precompute the λ-combined per-PoP risk `ρ(v) = λ_h·o_h(v) + λ_f·o_f(v)`
/// for one cost state — the exact per-node value `entry_cost` closures
/// computed on the fly before the engine refactor, so β·ρ(v) is bitwise
/// unchanged.
fn compute_rho(risk: &NodeRisk, weights: RiskWeights) -> Vec<f64> {
    (0..risk.len()).map(|v| risk.scaled(v, weights)).collect()
}

/// The changed-edge log between two consecutive cost states of one
/// topology: the stamp of the previous state, its ρ vector, and the
/// ascending list of nodes whose ρ changed bitwise. Single-level by design
/// — only trees computed under `parent_stamp` can be carried forward, so a
/// second mutation retires the log along with the parent trees.
#[derive(Debug, Clone)]
struct CostDelta {
    /// Stamp of the cost state the delta starts from.
    parent_stamp: u64,
    /// ρ under the parent state (shared with any clones holding the log).
    old_rho: Arc<Vec<f64>>,
    /// Nodes whose ρ changed bitwise, ascending.
    changed: Arc<Vec<u32>>,
}

/// The result of a degraded-mode pair sweep: the outcomes that routed plus
/// the (src, dst) pairs stranded by a partition.
#[derive(Debug, Clone, Default)]
pub struct PairSweep {
    /// Pairs that routed in both metrics.
    pub outcomes: Vec<PairOutcome>,
    /// Pairs with no connecting path (cross-component under a partition).
    pub stranded: Vec<(usize, usize)>,
}

/// The intradomain routing engine for one network.
///
/// Holds the topology adjacency, per-PoP risk vectors, population shares,
/// and the λ weights; answers RiskRoute (Eq. 3) and shortest-path queries,
/// and aggregates the §7 ratio reports.
///
/// All SSSP goes through the [`crate::engine`] module: an immutable CSR
/// snapshot of the adjacency, pooled scratch-arena Dijkstra, and an exact
/// route-tree cache shared by clones of this planner. The cache is keyed
/// by a cost-state `stamp` minted whenever risk or weights change, so a
/// stale tree can never be observed; [`Self::with_route_cache`] turns
/// reuse off for debugging without changing a single output bit.
#[derive(Debug, Clone)]
pub struct Planner {
    adjacency: Adjacency,
    csr: Arc<CsrGraph>,
    risk: NodeRisk,
    shares: PopShares,
    weights: RiskWeights,
    impact_model: ImpactModel,
    parallelism: Parallelism,
    /// Precomputed λ-combined per-PoP risk `ρ(v) = risk.scaled(v, weights)`
    /// under the current cost state (shared with clones; rebuilt on any
    /// risk/weight mutation).
    rho: Arc<Vec<f64>>,
    /// Cost-state stamp naming the (topology, ρ) state all cached trees
    /// were computed under (see [`engine::next_stamp`]).
    stamp: u64,
    /// Changed-edge log from the previous cost state of this topology, when
    /// delta invalidation is on and exactly one cost mutation separates the
    /// states (see [`CostDelta`]).
    delta: Option<CostDelta>,
    /// A read-only parent cache to probe after the own cache misses
    /// (forecast-override scenario forks adopt base trees through it, both
    /// same-stamp and via delta repair). Never written to.
    parent_cache: Option<Arc<RouteTreeCache>>,
    cache: Arc<RouteTreeCache>,
    route_cache: bool,
    delta_invalidation: bool,
    bucket_queue: bool,
}

impl Planner {
    /// Build a planner from prepared parts.
    ///
    /// # Panics
    /// Panics when vector lengths disagree with the network size.
    pub fn new(network: &Network, risk: NodeRisk, shares: PopShares, weights: RiskWeights) -> Self {
        assert_eq!(risk.len(), network.pop_count(), "risk must cover every PoP");
        assert_eq!(
            shares.shares().len(),
            network.pop_count(),
            "shares must cover every PoP"
        );
        let adjacency = Adjacency::from_links(
            network.pop_count(),
            network.links().iter().map(|l| (l.a, l.b, l.miles)),
        );
        let csr = Arc::new(CsrGraph::from_adjacency(&adjacency));
        let rho = Arc::new(compute_rho(&risk, weights));
        let cache = Arc::new(RouteTreeCache::with_budget(network.pop_count()));
        Planner {
            adjacency,
            csr,
            risk,
            shares,
            weights,
            impact_model: ImpactModel::default(),
            parallelism: Parallelism::Sequential,
            rho,
            stamp: engine::next_stamp(),
            delta: None,
            parent_cache: None,
            cache,
            route_cache: true,
            delta_invalidation: true,
            bucket_queue: true,
        }
    }

    /// Set the parallelism knob for the planner's sweeps
    /// ([`pair_sweep`](Self::pair_sweep), [`aggregate_bit_risk`](Self::aggregate_bit_risk),
    /// and the provisioning scorer); returns the planner for chaining.
    ///
    /// Every setting produces **bit-identical** results — parallel sweeps
    /// reduce in the sequential order (see `riskroute-par`) — so the knob
    /// only trades wall-clock for cores.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the parallelism knob in place.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The active parallelism knob.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Switch the impact model (§5's traffic-flow alternative); returns the
    /// planner for chaining.
    pub fn with_impact_model(mut self, model: ImpactModel) -> Self {
        self.impact_model = model;
        self
    }

    /// The active impact model.
    pub fn impact_model(&self) -> ImpactModel {
        self.impact_model
    }

    /// Build a planner with the standard §5 instantiation: population
    /// shares by nearest-neighbour census assignment and historical risk
    /// from the five-corpus hazard model (zero forecast risk).
    pub fn for_network(
        network: &Network,
        population: &PopulationModel,
        hazards: &HistoricalRisk,
        weights: RiskWeights,
    ) -> Self {
        let shares = PopShares::assign(population, network, None);
        let risk = NodeRisk::from_historical(network, hazards);
        Planner::new(network, risk, shares, weights)
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.adjacency.node_count()
    }

    /// The adjacency (for provisioning analyses).
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// The per-PoP risk vectors.
    pub fn risk(&self) -> &NodeRisk {
        &self.risk
    }

    /// Replace the forecast risk vector (replay updates it per advisory).
    ///
    /// A forecast bitwise-equal to the active one is a no-op — in
    /// particular the cost-state stamp is kept, so repeated quiet ticks
    /// (zero-forecast advisories before and after a storm) keep hitting the
    /// shared route-tree cache. Any actual change rebuilds ρ and mints a
    /// fresh stamp, retiring every cached tree.
    ///
    /// # Panics
    /// Panics on length mismatch or invalid values.
    pub fn set_forecast(&mut self, forecast: Vec<f64>) {
        if self.risk.forecast_slice() == forecast.as_slice() {
            return;
        }
        self.risk.set_forecast(forecast);
        self.refresh_cost_state();
    }

    /// The population shares.
    pub fn shares(&self) -> &PopShares {
        &self.shares
    }

    /// The λ weights.
    pub fn weights(&self) -> RiskWeights {
        self.weights
    }

    /// Replace the λ weights. A changed value rebuilds ρ and retires every
    /// cached route tree (unchanged values are a no-op).
    pub fn set_weights(&mut self, weights: RiskWeights) {
        if weights == self.weights {
            return;
        }
        self.weights = weights;
        self.refresh_cost_state();
    }

    /// Enable or disable the route-tree cache (the CLI's
    /// `--no-route-cache` debug flag). The cache is exact, so this knob —
    /// like [`Self::with_parallelism`] — never changes any output bit, only
    /// how often SSSP actually runs.
    #[must_use]
    pub fn with_route_cache(mut self, enabled: bool) -> Self {
        self.route_cache = enabled;
        self
    }

    /// Whether the route-tree cache is consulted.
    pub fn route_cache(&self) -> bool {
        self.route_cache
    }

    /// Enable or disable edge-delta-aware cache invalidation (the CLI's
    /// `--no-delta-invalidation` debug flag). When on (the default), a cost
    /// mutation records the changed-edge log between the old and new state
    /// instead of only minting a fresh stamp, and cache misses first try to
    /// carry the parent-state tree across the delta — reusing it outright
    /// when provably untouched, repairing it incrementally otherwise (see
    /// [`engine::repair_tree`]). Both paths are exact, so this knob — like
    /// [`Self::with_route_cache`] — never changes any output bit, only how
    /// often SSSP runs from scratch.
    #[must_use]
    pub fn with_delta_invalidation(mut self, enabled: bool) -> Self {
        self.delta_invalidation = enabled;
        if !enabled {
            self.delta = None;
        }
        self
    }

    /// Whether delta-aware invalidation (and incremental SSSP repair) is on.
    pub fn delta_invalidation(&self) -> bool {
        self.delta_invalidation
    }

    /// Enable or disable the monotone bucket-queue SSSP frontier (the
    /// CLI's `--no-bucket-queue` debug flag). The bucket queue pops in the
    /// exact heap order (see `riskroute_graph::queue`), so this knob — like
    /// [`Self::with_route_cache`] — never changes any output bit, only the
    /// constant factor of every Dijkstra run.
    #[must_use]
    pub fn with_bucket_queue(mut self, enabled: bool) -> Self {
        self.bucket_queue = enabled;
        self
    }

    /// Whether SSSP runs on the bucket-queue frontier.
    pub fn bucket_queue(&self) -> bool {
        self.bucket_queue
    }

    /// The precomputed λ-combined per-PoP risk vector ρ under the current
    /// cost state (provisioning's O(1) via-pricing reads it).
    pub(crate) fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// Rebuild ρ after a risk or weight mutation and advance the cost
    /// state.
    ///
    /// With delta invalidation on, the changed-node set is computed by
    /// bitwise comparison of the old and new ρ vectors. An empty set means
    /// the cost function is bitwise unchanged — the stamp (and any pending
    /// delta) is kept and every cached tree stays valid as-is, so e.g. a
    /// forecast change under `λ_f = 0` invalidates nothing. A non-empty set
    /// mints a fresh stamp but records the changed-edge log, letting cache
    /// misses under the new stamp repair parent-state trees incrementally
    /// instead of rerunning Dijkstra from scratch. With the knob off, any
    /// mutation falls back to blanket invalidation (fresh stamp, no log).
    fn refresh_cost_state(&mut self) {
        let new_rho = Arc::new(compute_rho(&self.risk, self.weights));
        if self.delta_invalidation {
            let changed: Vec<u32> = self
                .rho
                .iter()
                .zip(new_rho.iter())
                .enumerate()
                .filter(|(_, (a, b))| a.to_bits() != b.to_bits())
                .map(|(v, _)| v as u32)
                .collect();
            if changed.is_empty() {
                return;
            }
            if riskroute_obs::is_enabled() {
                let edges: usize = changed
                    .iter()
                    .map(|&v| self.csr.out_degree(v as usize))
                    .sum();
                riskroute_obs::counter_add("changed_edges", edges as u64);
            }
            self.delta = Some(CostDelta {
                parent_stamp: self.stamp,
                old_rho: Arc::clone(&self.rho),
                changed: Arc::new(changed),
            });
        }
        self.rho = new_rho;
        self.stamp = engine::next_stamp();
    }

    /// Outage impact β(i,j) under the active [`ImpactModel`]
    /// (§5.1's c_i + c_j by default).
    pub fn impact(&self, i: usize, j: usize) -> f64 {
        self.impact_model
            .beta(self.shares.share(i), self.shares.share(j))
    }

    /// The λ- and β-scaled risk charged for entering PoP `v` on an (i, j)
    /// route.
    #[inline]
    fn entry_cost(&self, beta: f64) -> impl Fn(usize) -> f64 + '_ {
        let w = self.weights;
        move |v| beta * self.risk.scaled(v, w)
    }

    /// Evaluate an explicit node sequence under the (i, j) pair's bit-risk
    /// metric (the path need not be optimal — backup planning evaluates
    /// Yen-ranked alternates this way).
    ///
    /// # Errors
    /// [`Error::NotAdjacent`] when consecutive nodes are not physically
    /// linked.
    pub fn evaluate(&self, i: usize, j: usize, nodes: &[usize]) -> Result<RoutedPath, Error> {
        let beta = self.impact(i, j);
        evaluate_path(&self.adjacency, nodes, self.entry_cost(beta))
    }

    /// The RiskRoute path (Eq. 3): minimum bit-risk miles from `i` to `j`.
    /// `None` when unreachable.
    pub fn risk_route(&self, i: usize, j: usize) -> Option<RoutedPath> {
        let beta = self.impact(i, j);
        let tree = self.risk_tree(i, beta);
        let nodes = tree.path_to(j)?;
        // Tree paths traverse real links by construction.
        evaluate_path(&self.adjacency, &nodes, self.entry_cost(beta)).ok()
    }

    /// [`risk_route`](Self::risk_route) as a typed result: unreachable pairs
    /// come back as [`Error::Unreachable`] carrying the pair, for callers
    /// (like the CLI) that must report *why* rather than silently skip.
    pub fn try_risk_route(&self, i: usize, j: usize) -> Result<RoutedPath, Error> {
        self.risk_route(i, j).ok_or_else(|| Error::Unreachable {
            network: String::new(),
            src: i,
            dst: j,
        })
    }

    /// The geographic shortest path from `i` to `j`, *evaluated under the
    /// bit-risk metric* of the (i, j) pair so it is directly comparable to
    /// [`risk_route`](Self::risk_route). `None` when unreachable.
    pub fn shortest_route(&self, i: usize, j: usize) -> Option<RoutedPath> {
        let tree = self.risk_tree_distance(i);
        let beta = self.impact(i, j);
        self.routed_from_distance_tree(&tree, j, beta)
    }

    /// Assemble the shortest-path [`RoutedPath`] for destination `j`
    /// straight from a distance tree: `dist(j)` *is* the path's bit-miles
    /// (each hop added `miles + 0.0` in path order), and the β-independent
    /// ρ-sum recorded at settle time turns the pair's risk-miles into one
    /// multiply — no per-destination path re-walk.
    fn routed_from_distance_tree(
        &self,
        tree: &RiskTree,
        j: usize,
        beta: f64,
    ) -> Option<RoutedPath> {
        let nodes = tree.path_to(j)?;
        let bit_miles = tree.dist(j);
        let risk_miles = beta * tree.path_rho_sum(j);
        Some(RoutedPath {
            nodes,
            bit_miles,
            risk_miles,
            bit_risk_miles: bit_miles + risk_miles,
        })
    }

    /// Full SSSP under the (i, j) pair's bit-risk weighting, rooted at `root`
    /// (used by the provisioning sweep). Served from the route-tree cache
    /// when enabled; computed trees are shared behind an `Arc` with every
    /// clone of this planner in the same cost state.
    pub(crate) fn risk_tree(&self, root: usize, beta: f64) -> Arc<RiskTree> {
        let key = TreeKey {
            root: root as u32,
            beta_bits: beta.to_bits(),
            stamp: self.stamp,
        };
        if self.route_cache {
            if let Some(tree) = self.cache.get(&key) {
                return tree;
            }
            if let Some(parent) = &self.parent_cache {
                // Same stamp in the parent cache: interchangeable
                // bit-for-bit (forecast forks whose override left ρ
                // bitwise unchanged share the base stamp).
                if let Some(tree) = parent.peek(&key) {
                    self.cache.insert(key, Arc::clone(&tree));
                    return tree;
                }
            }
            if let Some(tree) = self.delta_repair(&key, root, beta) {
                return tree;
            }
        }
        let tree = Arc::new(engine::sssp(
            &self.csr,
            root,
            beta,
            &self.rho,
            self.bucket_queue,
        ));
        if self.route_cache {
            self.cache.insert(key, Arc::clone(&tree));
        }
        tree
    }

    /// Try to serve a cache miss by carrying the parent-state tree across
    /// the recorded changed-edge log: reuse it outright when the delta
    /// provably cannot touch it (counted as `trees_survived_delta`), repair
    /// it incrementally otherwise (counted as `sssp_repairs`). `None` falls
    /// through to a scratch SSSP run — either there is no log, no parent
    /// tree to carry, or the repair declined (cost tie or oversized cone).
    fn delta_repair(&self, key: &TreeKey, root: usize, beta: f64) -> Option<Arc<RiskTree>> {
        let delta = self.delta.as_ref()?;
        let parent_key = TreeKey {
            stamp: delta.parent_stamp,
            ..*key
        };
        let parent = self.cache.peek(&parent_key).or_else(|| {
            self.parent_cache
                .as_ref()
                .and_then(|cache| cache.peek(&parent_key))
        })?;
        debug_assert_eq!(parent.source(), root);
        match engine::repair_tree(
            &self.csr,
            &parent,
            beta,
            &delta.old_rho,
            &self.rho,
            &delta.changed,
            self.bucket_queue,
        ) {
            RepairOutcome::Survived => {
                if riskroute_obs::is_enabled() {
                    riskroute_obs::counter_add("trees_survived_delta", 1);
                }
                self.cache.insert(*key, Arc::clone(&parent));
                Some(parent)
            }
            RepairOutcome::Repaired(tree) => {
                if riskroute_obs::is_enabled() {
                    riskroute_obs::counter_add("sssp_repairs", 1);
                }
                let tree = Arc::new(tree);
                self.cache.insert(*key, Arc::clone(&tree));
                Some(tree)
            }
            RepairOutcome::Fallback => None,
        }
    }

    /// Pure bit-mile SSSP tree from `root` (the shortest-path baseline and
    /// the provisioning candidate filter both use it). β = 0 trees carry
    /// the ρ-sum channel, so one tree serves every pair metric.
    pub(crate) fn risk_tree_distance(&self, root: usize) -> Arc<RiskTree> {
        self.risk_tree(root, 0.0)
    }

    /// Route one source against every destination, appending routed pairs
    /// to `outcomes` and unroutable ones to `stranded` — the per-source unit
    /// of work shared verbatim by the sequential and parallel sweeps.
    ///
    /// The shortest-path leg is O(1) per destination: path miles and the
    /// ρ-sum are β-independent, so both were accumulated down the distance
    /// tree once for the whole source.
    fn sweep_source(
        &self,
        i: usize,
        dests: &[usize],
        outcomes: &mut Vec<PairOutcome>,
        stranded: &mut Vec<(usize, usize)>,
    ) {
        let dist_tree = self.risk_tree_distance(i);
        for &j in dests {
            if i == j {
                continue;
            }
            let beta = self.impact(i, j);
            let Some(shortest) = self.routed_from_distance_tree(&dist_tree, j, beta) else {
                stranded.push((i, j));
                continue;
            };
            let Some(risk_route) = self.risk_route(i, j) else {
                stranded.push((i, j));
                continue;
            };
            outcomes.push(PairOutcome {
                src: i,
                dst: j,
                risk_route,
                shortest,
            });
        }
    }

    /// Pair outcomes plus the pairs that could not be routed — the
    /// degraded-mode sweep. When a storm (or a chaos fault plan) partitions
    /// the topology, routing proceeds *within* each connected component and
    /// the cross-component pairs are surfaced as `stranded` instead of
    /// aborting the aggregation.
    pub fn pair_sweep(&self, sources: &[usize], dests: &[usize]) -> PairSweep {
        let span = riskroute_obs::span!("pair_sweep");
        let mut outcomes = Vec::with_capacity(sources.len() * dests.len());
        let mut stranded = Vec::new();
        match self.parallelism {
            Parallelism::Sequential => {
                for &i in sources {
                    self.sweep_source(i, dests, &mut outcomes, &mut stranded);
                }
            }
            par => {
                // One task per source; concatenating the per-source lists in
                // source order reproduces the sequential push order exactly.
                let per_source = riskroute_par::par_map_collect(par, sources, |_, &i| {
                    let mut outcomes = Vec::with_capacity(dests.len());
                    let mut stranded = Vec::new();
                    self.sweep_source(i, dests, &mut outcomes, &mut stranded);
                    (outcomes, stranded)
                });
                for (o, s) in per_source {
                    outcomes.extend(o);
                    stranded.extend(s);
                }
            }
        }
        let mut span = span;
        if span.is_active() {
            span.field("pairs_routed", outcomes.len());
            span.field("pairs_stranded", stranded.len());
            riskroute_obs::counter_add("pairs_routed", outcomes.len() as u64);
            riskroute_obs::counter_add("pairs_stranded", stranded.len() as u64);
            let bit_risk: f64 = outcomes.iter().map(|o| o.risk_route.bit_risk_miles).sum();
            riskroute_obs::gauge_set("pair_sweep_bit_risk_miles", bit_risk);
        }
        PairSweep { outcomes, stranded }
    }

    /// Route one explicit (i, j) pair: the shortest-path and RiskRoute legs
    /// of a [`PairOutcome`], or `None` when the pair is stranded.
    fn route_pair(&self, i: usize, j: usize) -> Option<PairOutcome> {
        let dist_tree = self.risk_tree_distance(i);
        let beta = self.impact(i, j);
        let shortest = self.routed_from_distance_tree(&dist_tree, j, beta)?;
        let risk_route = self.risk_route(i, j)?;
        Some(PairOutcome {
            src: i,
            dst: j,
            risk_route,
            shortest,
        })
    }

    /// Pair outcomes for an explicit `(src, dst)` pair list — the sampled
    /// sweep behind `ratio --sample` and the scale bench, where routing all
    /// n² pairs of a continental-scale network would be prohibitive.
    ///
    /// Outcomes and stranded pairs come back in pair-list order regardless
    /// of the parallelism knob (per-pair results are folded in list order,
    /// exactly like [`Self::pair_sweep`]'s per-source concatenation), so
    /// results are bit-identical at any worker count. Pairs with
    /// `src == dst` are skipped.
    pub fn pair_list_sweep(&self, pairs: &[(usize, usize)]) -> PairSweep {
        let span = riskroute_obs::span!("pair_list_sweep");
        let mut outcomes = Vec::with_capacity(pairs.len());
        let mut stranded = Vec::new();
        match self.parallelism {
            Parallelism::Sequential => {
                for &(i, j) in pairs {
                    if i == j {
                        continue;
                    }
                    match self.route_pair(i, j) {
                        Some(o) => outcomes.push(o),
                        None => stranded.push((i, j)),
                    }
                }
            }
            par => {
                for wave in pairs.chunks(PAIR_WAVE) {
                    let vals = riskroute_par::par_map_collect(par, wave, |_, &(i, j)| {
                        (i != j).then(|| self.route_pair(i, j).ok_or((i, j)))
                    });
                    for v in vals.into_iter().flatten() {
                        match v {
                            Ok(o) => outcomes.push(o),
                            Err(p) => stranded.push(p),
                        }
                    }
                }
            }
        }
        let mut span = span;
        if span.is_active() {
            span.field("pairs_routed", outcomes.len());
            span.field("pairs_stranded", stranded.len());
            riskroute_obs::counter_add("pairs_routed", outcomes.len() as u64);
            riskroute_obs::counter_add("pairs_stranded", stranded.len() as u64);
        }
        PairSweep { outcomes, stranded }
    }

    /// Pair outcomes for an explicit source × destination sweep (src ≠ dst,
    /// reachable pairs only). Distance trees are computed once per source.
    ///
    /// The interdomain analysis uses this with a regional network's PoPs as
    /// sources and all regional PoPs as destinations (§7).
    pub fn pair_outcomes(&self, sources: &[usize], dests: &[usize]) -> Vec<PairOutcome> {
        self.pair_sweep(sources, dests).outcomes
    }

    /// All informative pair outcomes over the whole network, for the
    /// Eq. 5/6 ratios.
    pub fn all_pair_outcomes(&self) -> Vec<PairOutcome> {
        let all: Vec<usize> = (0..self.pop_count()).collect();
        self.pair_outcomes(&all, &all)
    }

    /// The §7 ratio report over all PoP pairs (Eqs. 5–6). Stranded pairs
    /// (partitioned topologies) are counted on the report rather than
    /// aborting it.
    pub fn ratio_report(&self) -> RatioReport {
        let all: Vec<usize> = (0..self.pop_count()).collect();
        let sweep = self.pair_sweep(&all, &all);
        RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len())
    }

    /// Total aggregated bit-risk miles `Σ_{i<j} min_p r_{i,j}(p)` — the
    /// objective of the provisioning analysis (Eq. 4).
    pub fn aggregate_bit_risk(&self) -> f64 {
        let span = riskroute_obs::span!("aggregate_bit_risk");
        let n = self.pop_count();
        let mut total = 0.0;
        match self.parallelism {
            Parallelism::Sequential => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        if let Some(p) = self.risk_route(i, j) {
                            total += p.bit_risk_miles;
                        }
                    }
                }
            }
            par => {
                // Per-pair contributions computed in parallel, folded
                // strictly in lexicographic pair order: float addition is
                // non-associative, so only replaying the sequential order
                // keeps the sum bit-identical.
                for wave in unordered_pairs(n).chunks(PAIR_WAVE) {
                    let vals = riskroute_par::par_map_collect(par, wave, |_, &(i, j)| {
                        self.risk_route(i, j).map(|p| p.bit_risk_miles)
                    });
                    for v in vals.into_iter().flatten() {
                        total += v;
                    }
                }
            }
        }
        let mut span = span;
        if span.is_active() {
            span.field("total_bit_risk_miles", total);
            riskroute_obs::counter_add("aggregate_bit_risk_runs", 1);
            riskroute_obs::gauge_set("aggregate_bit_risk_miles", total);
        }
        total
    }

    /// Copy-on-write fork of this planner for a failure scenario. The
    /// adjacency and CSR snapshot are masked through `keep` (directed
    /// entries it rejects are dropped, order preserved), an optional
    /// forecast override replaces the forecast risk channel, and the fork
    /// mints a **fresh** cost-state stamp plus a **private** route-tree
    /// cache.
    ///
    /// The private cache matters: at capacity [`RouteTreeCache::insert`]
    /// purges every entry whose stamp differs from the inserting key's, so
    /// a fork writing into the *base's* shared cache could evict the base
    /// trees mid-sweep. Keys alone already guarantee no fork tree is ever
    /// *returned* to the base; the private cache also keeps fork churn from
    /// evicting base state. Deactivated nodes keep their indices (they
    /// simply lose all edges), so shares, risk, and pair indexing stay
    /// aligned with the base network.
    ///
    /// # Panics
    /// Panics when a forecast override has the wrong length or invalid
    /// values (same contract as [`Self::set_forecast`]).
    pub(crate) fn fork_masked(
        &self,
        keep: &dyn Fn(usize, usize) -> bool,
        forecast_override: Option<&[f64]>,
    ) -> Planner {
        let adjacency = self.adjacency.masked(keep);
        let csr = Arc::new(self.csr.masked(keep));
        let mut risk = self.risk.clone();
        if let Some(f) = forecast_override {
            risk.set_forecast(f.to_vec());
        }
        let rho = Arc::new(compute_rho(&risk, self.weights));
        let cache = Arc::new(RouteTreeCache::with_budget(self.pop_count()));
        Planner {
            adjacency,
            csr,
            risk,
            shares: self.shares.clone(),
            weights: self.weights,
            impact_model: self.impact_model,
            parallelism: self.parallelism,
            rho,
            stamp: engine::next_stamp(),
            // The masked topology is a different graph: no delta log from
            // the base state can be carried across it.
            delta: None,
            parent_cache: None,
            cache,
            route_cache: self.route_cache,
            delta_invalidation: self.delta_invalidation,
            bucket_queue: self.bucket_queue,
        }
    }

    /// Copy-on-write fork for a *forecast-only* scenario override: same
    /// topology (the CSR snapshot stays shared), new forecast channel. The
    /// fork gets a private insert cache — same eviction rationale as
    /// [`Self::fork_masked`] — but keeps the base cache as a read-only
    /// parent to probe, and applying the override through
    /// [`Self::set_forecast`] records the changed-edge log against the base
    /// stamp. A fork whose override leaves ρ bitwise unchanged therefore
    /// shares the base stamp outright, and any other fork repairs base
    /// trees incrementally instead of recomputing them from scratch.
    ///
    /// # Panics
    /// Panics when the override has the wrong length or invalid values
    /// (same contract as [`Self::set_forecast`]).
    pub(crate) fn fork_forecast(&self, forecast: &[f64]) -> Planner {
        let mut fork = self.clone();
        fork.cache = Arc::new(RouteTreeCache::with_budget(self.pop_count()));
        fork.parent_cache = Some(Arc::clone(&self.cache));
        fork.set_forecast(forecast.to_vec());
        fork
    }

    /// The cached β = 0 distance tree rooted at `root` under the current
    /// cost state, if any (scenario forks probe the base cache for trees to
    /// adopt).
    pub(crate) fn cached_distance_tree(&self, root: usize) -> Option<Arc<RiskTree>> {
        if !self.route_cache {
            return None;
        }
        self.cache.get(&TreeKey {
            root: root as u32,
            beta_bits: 0.0f64.to_bits(),
            stamp: self.stamp,
        })
    }

    /// Seed a β = 0 tree into this planner's cache under its current stamp
    /// (scenario forks store adopted base trees so the sweep never
    /// recomputes them).
    pub(crate) fn seed_distance_tree(&self, root: usize, tree: Arc<RiskTree>) {
        if !self.route_cache {
            return;
        }
        self.cache.insert(
            TreeKey {
                root: root as u32,
                beta_bits: 0.0f64.to_bits(),
                stamp: self.stamp,
            },
            tree,
        );
    }

    /// The current cost-state stamp (scenario forks assert empty-delta
    /// forks share the base stamp).
    pub(crate) fn cost_stamp(&self) -> u64 {
        self.stamp
    }

    /// Carry still-valid route trees from `prev` into this planner after
    /// greedy provisioning rebuilt it with one extra `(a, b)` link.
    ///
    /// A cached tree rooted at `r` under metric β provably survives the
    /// edge addition when the new link cannot improve *any* distance, i.e.
    /// (with `c(v) = β·ρ(v)` and `w` the new link's miles)
    ///
    /// ```text
    /// dist(r,a) + w + c(b) > dist(r,b)   and
    /// dist(r,b) + w + c(a) > dist(r,a)
    /// ```
    ///
    /// The inequalities are **strict** even though `≥` would preserve the
    /// distances: on an exact tie a fresh Dijkstra run could relax through
    /// the new link and flip the predecessor (and thus the printed path)
    /// without changing the distance, breaking the byte-identical
    /// cache-on/cache-off contract. Under strict inequality every
    /// improving relaxation of the fresh run is one the old run performed
    /// (the new link's relaxations are always strictly dominated later),
    /// so dist *and* pred come out bit-for-bit equal — surviving trees are
    /// simply re-keyed to this planner's stamp. An edge between two nodes
    /// unreachable from `r` also survives: it cannot create any new path
    /// from `r`.
    ///
    /// Adoption is skipped entirely (correct, just slower) unless `prev`
    /// has bitwise-identical ρ and an adjacency equal to this one minus
    /// exactly the appended link — greedy's `with_extra_link` appends the
    /// new link last, which is also what keeps relaxation order (and so
    /// every tie-break) aligned between the old and new graphs.
    pub(crate) fn adopt_route_cache(&mut self, prev: &Planner, a: usize, b: usize) {
        if !(self.route_cache && prev.route_cache) {
            return;
        }
        let n = self.adjacency.node_count();
        if n != prev.adjacency.node_count()
            || self.rho.len() != prev.rho.len()
            || !self
                .rho
                .iter()
                .zip(prev.rho.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
        {
            return;
        }
        let identical = self.adjacency == prev.adjacency;
        let mut new_miles = f64::INFINITY;
        if !identical {
            if a >= n || b >= n || a == b {
                return;
            }
            for u in 0..n {
                let new_list = self.adjacency.neighbors(u);
                let old_list = prev.adjacency.neighbors(u);
                if u == a || u == b {
                    let expect = if u == a { b } else { a };
                    if new_list.len() != old_list.len() + 1
                        || new_list[..old_list.len()] != *old_list
                    {
                        return;
                    }
                    match new_list.last() {
                        Some(&(tail, miles)) if tail == expect => new_miles = miles,
                        _ => return,
                    }
                } else if new_list != old_list {
                    return;
                }
            }
        }
        let mut kept: u64 = 0;
        let mut dropped: u64 = 0;
        for (key, tree) in prev.cache.entries_with_stamp(prev.stamp) {
            let survives = if identical {
                true
            } else {
                let beta = f64::from_bits(key.beta_bits);
                let (ca, cb) = if beta == 0.0 {
                    // Distance trees use a literal zero entry cost.
                    (0.0, 0.0)
                } else {
                    (
                        engine::sanitize_cost(beta * self.rho[a]),
                        engine::sanitize_cost(beta * self.rho[b]),
                    )
                };
                let (da, db) = (tree.dist(a), tree.dist(b));
                (!da.is_finite() && !db.is_finite())
                    || (da + new_miles + cb > db && db + new_miles + ca > da)
            };
            if survives {
                self.cache.insert(
                    TreeKey {
                        stamp: self.stamp,
                        ..key
                    },
                    tree,
                );
                kept += 1;
            } else {
                dropped += 1;
            }
        }
        if riskroute_obs::is_enabled() {
            riskroute_obs::counter_add("route_cache_revalidated", kept);
            riskroute_obs::counter_add("route_cache_invalidated", dropped);
        }
    }
}

/// A warm pool of engine handles keyed by `(network, λ_h, λ_f)`.
///
/// [`Planner`] construction pays for KDE-backed risk fitting, population
/// assignment, and the CSR snapshot; clones, by contrast, share the CSR and
/// the exact route-tree cache by `Arc`. A long-lived process (the
/// `riskroute serve` daemon) keeps one pool so every request against the
/// same network and weights reuses the warm engine — and because the cache
/// is stamp-keyed and exact, pooled answers stay byte-identical to a cold
/// one-shot run.
#[derive(Debug, Default)]
pub struct PlannerPool {
    inner: std::sync::Mutex<std::collections::HashMap<PoolKey, Planner>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PoolKey {
    network: String,
    lambda_h_bits: u64,
    lambda_f_bits: u64,
}

impl PlannerPool {
    /// An empty pool.
    pub fn new() -> Self {
        PlannerPool::default()
    }

    /// Fetch the warm planner for `(network, weights)`, building it with
    /// `build` on first use. Returns a clone sharing the pooled planner's
    /// CSR snapshot and route-tree cache; per-call knobs
    /// ([`Planner::with_parallelism`], [`Planner::with_route_cache`]) apply
    /// to the clone without disturbing the pool.
    pub fn planner_for(
        &self,
        network: &str,
        weights: RiskWeights,
        build: impl FnOnce() -> Planner,
    ) -> Planner {
        let key = PoolKey {
            network: network.to_string(),
            lambda_h_bits: weights.lambda_h.to_bits(),
            lambda_f_bits: weights.lambda_f.to_bits(),
        };
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if riskroute_obs::is_enabled() {
            let name = if inner.contains_key(&key) {
                "planner_pool_hits"
            } else {
                "planner_pool_misses"
            };
            riskroute_obs::counter_add(name, 1);
        }
        inner.entry(key).or_insert_with(build).clone()
    }

    /// Number of distinct warm engines held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A diamond where the northern detour avoids a risky middle PoP:
    ///
    /// ```text
    ///        1 (safe, north)
    ///      /   \
    ///    0       3
    ///      \   /
    ///        2 (risky, direct-ish)
    /// ```
    fn diamond() -> (Network, NodeRisk, PopShares) {
        let net = Network::new(
            "diamond",
            NetworkKind::Regional,
            vec![
                pop("West", 35.0, -100.0),
                pop("North", 37.5, -97.0),
                pop("South", 35.0, -97.0),
                pop("East", 35.0, -94.0),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        // PoP 2's risk at β = 0.5, λ_h = 1e5 is worth 250 bit-miles — more
        // than the ~140-mile northern detour, so RiskRoute must divert.
        let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0], vec![0.0; 4]);
        // Uniform shares: β = 0.5 for every pair.
        let shares = PopShares::from_shares(vec![0.25; 4]);
        (net, risk, shares)
    }

    fn planner(lambda_h: f64) -> Planner {
        let (net, risk, shares) = diamond();
        Planner::new(&net, risk, shares, RiskWeights::historical_only(lambda_h))
    }

    #[test]
    fn shortest_route_takes_risky_southern_path() {
        let p = planner(1e5);
        let sp = p.shortest_route(0, 3).unwrap();
        assert_eq!(sp.nodes, vec![0, 2, 3], "south is geographically shorter");
        assert!(sp.risk_miles > 0.0, "and pays the risk of PoP 2");
    }

    #[test]
    fn risk_route_detours_north_when_lambda_large() {
        let p = planner(1e5);
        let rr = p.risk_route(0, 3).unwrap();
        assert_eq!(rr.nodes, vec![0, 1, 3]);
        assert_eq!(rr.risk_miles, 0.0);
        assert!(rr.bit_miles > p.shortest_route(0, 3).unwrap().bit_miles);
    }

    #[test]
    fn risk_route_matches_shortest_when_lambda_zero() {
        let p = planner(0.0);
        let rr = p.risk_route(0, 3).unwrap();
        let sp = p.shortest_route(0, 3).unwrap();
        assert_eq!(rr.nodes, sp.nodes);
        assert_eq!(rr.bit_risk_miles, sp.bit_risk_miles);
    }

    #[test]
    fn risk_route_never_exceeds_shortest_in_bit_risk() {
        let p = planner(1e5);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let rr = p.risk_route(i, j).unwrap();
                let sp = p.shortest_route(i, j).unwrap();
                assert!(
                    rr.bit_risk_miles <= sp.bit_risk_miles + 1e-9,
                    "({i},{j}): rr {} > sp {}",
                    rr.bit_risk_miles,
                    sp.bit_risk_miles
                );
                assert!(
                    rr.bit_miles >= sp.bit_miles - 1e-9,
                    "RiskRoute can never be geographically shorter"
                );
            }
        }
    }

    #[test]
    fn ratio_report_reflects_the_detour() {
        let p = planner(1e5);
        let r = p.ratio_report();
        assert!(r.risk_reduction_ratio > 0.0);
        assert!(r.distance_increase_ratio > 0.0);
        assert_eq!(r.pairs, 12);
        let p0 = planner(0.0);
        let r0 = p0.ratio_report();
        assert!(r0.risk_reduction_ratio.abs() < 1e-12);
        assert!(r0.distance_increase_ratio.abs() < 1e-12);
    }

    #[test]
    fn larger_lambda_is_weakly_more_risk_averse() {
        let r5 = planner(1e5).ratio_report();
        let r6 = planner(1e6).ratio_report();
        assert!(r6.risk_reduction_ratio >= r5.risk_reduction_ratio - 1e-12);
        assert!(r6.distance_increase_ratio >= r5.distance_increase_ratio - 1e-12);
    }

    #[test]
    fn aggregate_bit_risk_sums_unordered_pairs() {
        let p = planner(1e5);
        let mut expect = 0.0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                expect += p.risk_route(i, j).unwrap().bit_risk_miles;
            }
        }
        assert!((p.aggregate_bit_risk() - expect).abs() < 1e-9);
    }

    #[test]
    fn unreachable_pairs_return_none() {
        let net = Network::new(
            "split",
            NetworkKind::Regional,
            vec![
                pop("A", 35.0, -100.0),
                pop("B", 36.0, -100.0),
                pop("C", 40.0, -90.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0; 3], vec![0.0; 3]);
        let shares = PopShares::from_shares(vec![0.4, 0.4, 0.2]);
        let p = Planner::new(&net, risk, shares, RiskWeights::PAPER);
        assert!(p.risk_route(0, 2).is_none());
        assert!(p.shortest_route(0, 2).is_none());
        assert!(p.risk_route(0, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "risk must cover every PoP")]
    fn mismatched_risk_length_panics() {
        let (net, _, shares) = diamond();
        let bad_risk = NodeRisk::new(vec![0.0], vec![0.0]);
        let _ = Planner::new(&net, bad_risk, shares, RiskWeights::PAPER);
    }

    #[test]
    fn impact_uses_shares() {
        let p = planner(1e5);
        assert!((p.impact(0, 3) - 0.5).abs() < 1e-12);
    }
}
