//! The dedicated shortest-path engine behind [`crate::Planner`].
//!
//! Every RiskRoute quantity — Eq. 3 routes, Eq. 4 provisioning scores,
//! Eq. 5/6 ratios — bottoms out in β-scaled SSSP, so this module owns the
//! three layers that make those runs cheap without changing a single bit of
//! output:
//!
//! 1. **CSR snapshot** ([`CsrGraph`]): an immutable compressed-sparse-row
//!    image of [`Adjacency`] — flat `offsets`/`targets`/`weights` arrays —
//!    so the Dijkstra inner loop walks two cache-friendly slices instead of
//!    chasing `Vec<Vec<(usize, f64)>>` pointers. Edge order within each
//!    node is preserved exactly, which keeps relaxation order (and
//!    therefore every tie-broken predecessor) identical to the reference
//!    [`risk_sssp`](crate::routing::risk_sssp).
//!
//! 2. **Scratch-arena Dijkstra** ([`SsspArena`]): per-worker reusable
//!    dist/pred/cost/heap buffers with generation-stamped lazy reset — a
//!    run bumps one `u32` generation instead of clearing four arrays, and a
//!    slot is live only when its stamp matches. Arenas are pooled through
//!    [`riskroute_par::ScratchPool`] so scoped pool workers reuse them
//!    across drains; steady-state runs allocate nothing but the output
//!    tree.
//!
//! 3. **Exact route-tree cache** ([`RouteTreeCache`]): completed trees
//!    keyed by `(root, β.to_bits(), stamp)` where the stamp names one
//!    immutable (topology, cost-function) state — any risk/weight mutation
//!    mints a fresh stamp, so a stale entry can never be *returned*, only
//!    evicted. After greedy provisioning adds a link `(a, b)` the planner
//!    re-keys still-valid trees into the new state via a strict
//!    edge-addition test (`Planner::adopt_route_cache`): a tree rooted at
//!    `r` survives when
//!    `dist(r,a) + w + c(b) > dist(r,b)` **and**
//!    `dist(r,b) + w + c(a) > dist(r,a)` (`c(v) = β·ρ(v)`). Strict
//!    inequality — not the `≥` that preserves distances alone — is what
//!    preserves the predecessor array bit-for-bit: on an exact tie a fresh
//!    run could route through the new link and flip the printed path even
//!    though the distance is unchanged. The cache is exact, never
//!    approximate: outputs are byte-identical with it on or off.

use crate::routing::{Adjacency, Entry, RiskTree, NO_PRED};
use riskroute_graph::queue::{inv_quantum_for_mean, BucketQueue};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Process-global source of cost-state stamps (see [`next_stamp`]).
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh, process-unique stamp naming one immutable
/// (topology, cost-function) planner state. Two planner values share a
/// stamp only when their trees are interchangeable bit-for-bit.
pub(crate) fn next_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Sanitize one β-scaled entry cost exactly like the reference SSSP:
/// non-finite or negative costs make the node unroutable.
pub(crate) fn sanitize_cost(c: f64) -> f64 {
    if c.is_finite() && c >= 0.0 {
        c
    } else {
        f64::INFINITY
    }
}

/// Immutable compressed-sparse-row snapshot of an [`Adjacency`].
///
/// `targets[offsets[u]..offsets[u+1]]` lists u's neighbors in the exact
/// order the nested-Vec adjacency stores them (append order of
/// `from_links`), with `weights` holding the matching link miles.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    /// Mean of the positive finite edge weights (0.0 when none): the edge
    /// component of the mean relaxation step in [`run_inv_quantum`], the
    /// per-run bucket-queue quantization choice. Byte-identity of the
    /// bucket path never depends on the derived factor — any positive
    /// factor keys costs monotonically — it only tunes bucket occupancy.
    mean_weight: f64,
}

/// Mean of the positive finite values in `weights` (0.0 when none).
fn mean_positive(weights: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for &w in weights {
        if w.is_finite() && w > 0.0 {
            sum += w;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

impl CsrGraph {
    /// Flatten an adjacency into CSR form, preserving per-node edge order.
    ///
    /// # Panics
    /// Panics when node or edge counts exceed the packed `u32` index range.
    pub fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.node_count();
        let m: usize = (0..n).map(|u| adj.neighbors(u).len()).sum();
        assert!(
            n < u32::MAX as usize && m < u32::MAX as usize,
            "graph exceeds the packed CSR index range"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        offsets.push(0u32);
        for u in 0..n {
            for &(v, miles) in adj.neighbors(u) {
                targets.push(v as u32);
                weights.push(miles);
            }
            offsets.push(targets.len() as u32);
        }
        let mean_weight = mean_positive(&weights);
        CsrGraph {
            offsets,
            targets,
            weights,
            mean_weight,
        }
    }

    /// A masked copy of this snapshot: directed edges `(u, v)` for which
    /// `keep(u, v)` returns `false` are dropped, and every surviving edge
    /// keeps its position relative to the others. Identical by construction
    /// to `from_adjacency` of the equivalently masked [`Adjacency`], so a
    /// scenario fork's Dijkstra replays the base relaxation order restricted
    /// to kept edges — the property that keeps fork tie-breaks bit-exact.
    pub(crate) fn masked(&self, keep: impl Fn(usize, usize) -> bool) -> CsrGraph {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        offsets.push(0u32);
        for u in 0..n {
            for e in self.edge_range(u) {
                let v = self.targets[e] as usize;
                if keep(u, v) {
                    targets.push(self.targets[e]);
                    weights.push(self.weights[e]);
                }
            }
            offsets.push(targets.len() as u32);
        }
        let mean_weight = mean_positive(&weights);
        CsrGraph {
            offsets,
            targets,
            weights,
            mean_weight,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (twice the undirected link count).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of directed edges leaving `u`. The snapshot is symmetric
    /// (every undirected link contributes both directions), so this is also
    /// the number of directed edges *entering* `u` — the count the
    /// `changed_edges` delta counter reports per changed-cost node.
    pub(crate) fn out_degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    #[inline]
    fn edge_range(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }
}

/// Reusable per-worker Dijkstra scratch state with generation-stamped lazy
/// reset: `dist`/`pred` slots are live only when `touched[v] == gen`, and a
/// node is settled only when `settled[v] == gen`, so "resetting" for the
/// next run is a single generation bump. A full clear happens only when the
/// `u32` generation wraps (once per ~4 billion runs).
pub(crate) struct SsspArena {
    dist: Vec<f64>,
    pred: Vec<u32>,
    costs: Vec<f64>,
    rho_sum: Vec<f64>,
    touched: Vec<u32>,
    settled: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Entry>,
    bucket: BucketQueue,
}

impl SsspArena {
    pub(crate) fn new() -> Self {
        SsspArena {
            dist: Vec::new(),
            pred: Vec::new(),
            costs: Vec::new(),
            rho_sum: Vec::new(),
            touched: Vec::new(),
            settled: Vec::new(),
            gen: 0,
            heap: BinaryHeap::new(),
            bucket: BucketQueue::new(),
        }
    }

    /// Open a new run over `n` nodes: grow buffers if the graph outgrew the
    /// arena, bump the generation (full clear on wrap), empty the heap.
    fn begin(&mut self, n: usize) {
        if self.touched.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.pred.resize(n, NO_PRED);
            self.costs.resize(n, 0.0);
            self.rho_sum.resize(n, 0.0);
            self.touched.resize(n, 0);
            self.settled.resize(n, 0);
        }
        if self.gen == u32::MAX {
            self.touched.fill(0);
            self.settled.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
    }

    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.touched[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }
}

/// The process-wide arena pool: scoped pool workers (and the sequential
/// path) check arenas out per run and return them for the next, so
/// steady-state SSSP allocates nothing but the output tree.
static ARENAS: riskroute_par::ScratchPool<SsspArena> =
    riskroute_par::ScratchPool::named("sssp_arena");

/// A min-frontier the Dijkstra loop can drive generically: the classic
/// binary heap or the monotone bucket queue. Both pop in the exact
/// `(cost, node)` order (see [`BucketQueue`]), so the search below is
/// bit-identical under either implementation — same settle order, same
/// relaxations, same length peaks.
trait Frontier {
    fn push(&mut self, e: Entry);
    fn pop(&mut self) -> Option<Entry>;
    fn len(&self) -> usize;
}

impl Frontier for BinaryHeap<Entry> {
    #[inline]
    fn push(&mut self, e: Entry) {
        BinaryHeap::push(self, e);
    }
    #[inline]
    fn pop(&mut self) -> Option<Entry> {
        BinaryHeap::pop(self)
    }
    #[inline]
    fn len(&self) -> usize {
        BinaryHeap::len(self)
    }
}

impl Frontier for BucketQueue {
    #[inline]
    fn push(&mut self, e: Entry) {
        BucketQueue::push(self, e);
    }
    #[inline]
    fn pop(&mut self) -> Option<Entry> {
        BucketQueue::pop(self)
    }
    #[inline]
    fn len(&self) -> usize {
        BucketQueue::len(self)
    }
}

/// Per-run bucket-queue quantization factor. The frontier advances by
/// edge weight *plus* the target's entry cost, so the quantum must come
/// from the mean of that full step — quantizing on edge weights alone
/// piles the whole frontier into a handful of buckets whenever entry
/// costs dominate (λ-scaled risk makes them ~10× the edge miles on the
/// paper's weights), and the per-pop bucket min-scan then loses to the
/// binary heap. Entry costs of ∞ (sanitized unreachable markers) carry
/// no step information and are skipped. Pop order is byte-identical for
/// any positive factor; this only tunes bucket occupancy.
fn run_inv_quantum(csr: &CsrGraph, entry_costs: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    for &c in entry_costs {
        if c.is_finite() {
            sum += c;
        }
    }
    let mean_entry = sum / entry_costs.len().max(1) as f64;
    inv_quantum_for_mean(csr.mean_weight + mean_entry)
}

/// Hot-loop tallies of one search, published to the collector by the
/// caller. Identical between the heap and bucket frontiers (the pop/push
/// sequences coincide); the settle/skip channels additionally feed the
/// bucket-path counters.
struct SearchStats {
    pops: u64,
    relaxations: u64,
    peak: usize,
    settles: u64,
    skipped: u64,
}

/// β-scaled SSSP from `source` over the CSR snapshot, using a pooled
/// scratch arena. Bit-for-bit equivalent to
/// [`crate::routing::risk_sssp`] with entry cost
/// `v ↦ β·ρ(v)` — same relaxation order, same heap tie-breaks, same
/// sanitization — and additionally records β-independent ρ-sums down the
/// tree when `beta == 0` (one distance tree then serves every pair metric
/// in O(1), see `Planner::sweep_source`).
///
/// `use_bucket` selects the monotone bucket-queue frontier instead of the
/// binary heap; the output is byte-identical either way (the bucket queue
/// pops in the exact heap order), so the knob only trades wall-clock.
///
/// # Panics
/// Panics when `source` is out of range.
pub fn sssp(csr: &CsrGraph, source: usize, beta: f64, rho: &[f64], use_bucket: bool) -> RiskTree {
    ARENAS.with(SsspArena::new, |arena| {
        run(arena, csr, source, beta, rho, use_bucket)
    })
}

fn run(
    arena: &mut SsspArena,
    csr: &CsrGraph,
    source: usize,
    beta: f64,
    rho: &[f64],
    use_bucket: bool,
) -> RiskTree {
    let n = csr.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    arena.begin(n);
    // β = 0 is the distance tree: the reference path used a literal zero
    // entry cost (never touching ρ), and that is also the tree for which
    // the β-independent ρ-sum channel is recorded.
    let track_rho = beta == 0.0;
    if track_rho {
        arena.costs[..n].fill(0.0);
    } else {
        for (slot, &r) in arena.costs[..n].iter_mut().zip(rho) {
            *slot = sanitize_cost(beta * r);
        }
    }

    let gen = arena.gen;
    arena.touched[source] = gen;
    arena.dist[source] = 0.0;
    arena.pred[source] = NO_PRED;
    let seed = Entry {
        cost: 0.0,
        node: source,
    };
    // The frontier is moved out of the arena for the duration of the search
    // so the generic loop can borrow the arena's flat buffers mutably
    // alongside it (a plain field borrow would alias).
    let stats = if use_bucket {
        let mut q = std::mem::take(&mut arena.bucket);
        q.reset(run_inv_quantum(csr, &arena.costs[..n]));
        q.push(seed);
        let stats = search(arena, csr, source, track_rho, rho, &mut q);
        arena.bucket = q;
        stats
    } else {
        let mut q = std::mem::take(&mut arena.heap);
        q.push(seed);
        let stats = search(arena, csr, source, track_rho, rho, &mut q);
        arena.heap = q;
        stats
    };
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("risk_sssp_runs", 1);
        riskroute_obs::counter_add("risk_sssp_pops", stats.pops);
        riskroute_obs::counter_add("risk_sssp_relaxations", stats.relaxations);
        riskroute_obs::gauge_max("risk_sssp_heap_peak", stats.peak as f64);
        if use_bucket {
            riskroute_obs::counter_add("bucket_queue_settles", stats.settles);
            riskroute_obs::counter_add("bucket_relaxations_skipped", stats.skipped);
        }
    }

    // Extract the compact output tree; untouched slots read as unreachable.
    let mut dist = Vec::with_capacity(n);
    let mut pred = Vec::with_capacity(n);
    for v in 0..n {
        if arena.touched[v] == gen {
            dist.push(arena.dist[v]);
            pred.push(arena.pred[v]);
        } else {
            dist.push(f64::INFINITY);
            pred.push(NO_PRED);
        }
    }
    let rho_sum = if track_rho {
        (0..n)
            .map(|v| {
                if arena.settled[v] == gen {
                    arena.rho_sum[v]
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    RiskTree::from_parts(source, dist, pred, rho_sum)
}

/// The Dijkstra hot loop, generic over the frontier. Monomorphized per
/// frontier type so neither path pays a dispatch branch; the loop body is
/// byte-for-byte the arithmetic the engine has always run.
fn search<Q: Frontier>(
    arena: &mut SsspArena,
    csr: &CsrGraph,
    source: usize,
    track_rho: bool,
    rho: &[f64],
    q: &mut Q,
) -> SearchStats {
    let gen = arena.gen;
    let mut stats = SearchStats {
        pops: 0,
        relaxations: 0,
        peak: q.len(),
        settles: 0,
        skipped: 0,
    };
    while let Some(Entry { cost, node }) = q.pop() {
        stats.pops += 1;
        if arena.settled[node] == gen {
            continue;
        }
        arena.settled[node] = gen;
        stats.settles += 1;
        if track_rho {
            // pred[node] is final once the node settles, so the ρ-sum can
            // accumulate in path order (matching evaluate_path's order).
            arena.rho_sum[node] = if node == source {
                0.0
            } else {
                arena.rho_sum[arena.pred[node] as usize] + rho[node]
            };
        }
        for e in csr.edge_range(node) {
            let v = csr.targets[e] as usize;
            if arena.settled[v] == gen {
                stats.skipped += 1;
                continue;
            }
            let next = cost + csr.weights[e] + arena.costs[v];
            if next < arena.dist_of(v) {
                arena.touched[v] = gen;
                arena.dist[v] = next;
                arena.pred[v] = node as u32;
                stats.relaxations += 1;
                q.push(Entry {
                    cost: next,
                    node: v,
                });
                stats.peak = stats.peak.max(q.len());
            }
        }
    }
    stats
}

/// Outcome of carrying one cached route tree across a cost delta (a set of
/// nodes whose λ-combined risk ρ changed bitwise while the topology stayed
/// fixed). Every variant preserves the byte-identical contract: a carried
/// tree is bit-for-bit the tree a from-scratch [`sssp`] run under the new
/// costs would produce, or the caller is told to run that scratch pass.
#[derive(Debug)]
pub(crate) enum RepairOutcome {
    /// The delta provably cannot touch this tree — dist, pred, *and* the
    /// ρ-sum channel are bitwise unaffected, so the old tree is valid
    /// as-is under the new cost state.
    Survived,
    /// The tree was repaired incrementally; the payload is bitwise equal
    /// to a from-scratch run under the new costs.
    Repaired(RiskTree),
    /// The repair would be ambiguous (a cost tie whose winner depends on
    /// relaxation order) or the affected cone is too large for repair to
    /// beat a scratch run — recompute from scratch.
    Fallback,
}

/// Per-node dirty state during [`repair_tree`]'s cone marking.
const TAINT_UNKNOWN: u8 = 0;
const TAINT_CLEAN: u8 = 1;
const TAINT_DIRTY: u8 = 2;

/// Recompute the β-independent ρ-sum channel of a β = 0 tree under a new ρ
/// vector. Bitwise-identical to what a scratch run records at settle time:
/// both evaluate the same recurrence `sum[v] = sum[pred[v]] + ρ(v)` (source
/// 0, unreachable ∞), and each value depends only on its parent's, so the
/// evaluation order cannot change a bit.
fn recompute_rho_sums(tree: &RiskTree, rho: &[f64]) -> Vec<f64> {
    let dist = tree.dist_slice();
    let pred = tree.pred_slice();
    let n = dist.len();
    let source = tree.source();
    let mut out = vec![0.0f64; n];
    let mut done = vec![false; n];
    done[source] = true;
    let mut chain: Vec<usize> = Vec::new();
    for v in 0..n {
        if done[v] {
            continue;
        }
        if !dist[v].is_finite() {
            out[v] = f64::INFINITY;
            done[v] = true;
            continue;
        }
        let mut cur = v;
        while !done[cur] {
            chain.push(cur);
            cur = pred[cur] as usize;
        }
        while let Some(y) = chain.pop() {
            out[y] = out[pred[y] as usize] + rho[y];
            done[y] = true;
        }
    }
    out
}

/// Attempt to carry `tree` (computed over `csr` with metric β under
/// `old_rho`) across a cost delta to `new_rho`, where `changed` lists every
/// node whose ρ differs bitwise. The topology must be the one the tree was
/// computed over — callers record deltas only across pure cost mutations.
///
/// The decision tree (see DESIGN.md "Incremental SSSP and edge-scoped
/// stamps" for the full correctness argument):
///
/// * **β = 0** — dist/pred never read ρ (the engine uses a literal zero
///   entry cost), so only the ρ-sum channel is at stake. If no changed node
///   other than the source is reachable, nothing references a changed ρ and
///   the tree [`Survived`](RepairOutcome::Survived); otherwise the ρ-sums
///   are recomputed along the unchanged parent chains.
///
/// * **β ≠ 0** — a changed node matters only when its *sanitized β-scaled
///   entry cost* changed bitwise (λ-shifts can cancel under the multiply,
///   and ∞ is canonical). A cost change at `v ≠ source` is provably
///   harmless when `v` is unreachable in the tree and its old cost was
///   finite: unreachability was then topological (any reachable node with
///   an edge into a finite-cost node would have relaxed it), and changing
///   `c(v)` cannot open a path. Every other effective change seeds an
///   incremental re-run: the seed nodes plus all their tree descendants
///   (whose dists embed the ancestors' entry costs) form the dirty cone,
///   which is reset and re-settled by a Dijkstra seeded from every
///   clean→dirty edge. Relaxations use the engine's exact arithmetic and
///   heap order; any *finite cost tie* observed along the way aborts to
///   [`Fallback`](RepairOutcome::Fallback), because the winner of a tie is
///   an artifact of scratch-run relaxation order that the repair cannot
///   reproduce in general. Tie-free repairs are therefore bit-exact: every
///   final (dist, pred) is the unique strict minimum over offers, the same
///   optimum the scratch run settles on.
pub(crate) fn repair_tree(
    csr: &CsrGraph,
    tree: &RiskTree,
    beta: f64,
    old_rho: &[f64],
    new_rho: &[f64],
    changed: &[u32],
    use_bucket: bool,
) -> RepairOutcome {
    let n = csr.node_count();
    let source = tree.source();
    if beta == 0.0 {
        let touched = changed
            .iter()
            .any(|&v| (v as usize) != source && tree.dist(v as usize).is_finite());
        if !touched {
            return RepairOutcome::Survived;
        }
        return RepairOutcome::Repaired(RiskTree::from_parts(
            source,
            tree.dist_slice().to_vec(),
            tree.pred_slice().to_vec(),
            recompute_rho_sums(tree, new_rho),
        ));
    }

    // Effective changes: nodes whose sanitized β-scaled entry cost moved.
    let mut seeds: Vec<usize> = Vec::new();
    for &v in changed {
        let v = v as usize;
        if v == source {
            // The source settles before any edge can relax into it, so its
            // entry cost is never charged.
            continue;
        }
        let old_c = sanitize_cost(beta * old_rho[v]);
        let new_c = sanitize_cost(beta * new_rho[v]);
        if old_c.to_bits() == new_c.to_bits() {
            continue;
        }
        if tree.dist(v).is_finite() || old_c == f64::INFINITY {
            // Reachable (its dist embeds the old cost), or a cost-blocked
            // node that may now be routable.
            seeds.push(v);
        }
        // Unreachable with a finite old cost: topologically cut off —
        // changing its entry cost cannot create a path.
    }
    if seeds.is_empty() {
        return RepairOutcome::Survived;
    }

    // Dirty cone: seeds plus every tree descendant of a seed (a descendant's
    // dist embeds each ancestor's entry cost). Memoized pred-chain walk.
    let dist_old = tree.dist_slice();
    let pred_old = tree.pred_slice();
    let mut taint = vec![TAINT_UNKNOWN; n];
    taint[source] = TAINT_CLEAN;
    let mut dirty_count = 0usize;
    for &v in &seeds {
        taint[v] = TAINT_DIRTY;
        dirty_count += 1;
    }
    let mut chain: Vec<usize> = Vec::new();
    for v in 0..n {
        if taint[v] != TAINT_UNKNOWN {
            continue;
        }
        if !dist_old[v].is_finite() {
            taint[v] = TAINT_CLEAN;
            continue;
        }
        let mut cur = v;
        while taint[cur] == TAINT_UNKNOWN {
            chain.push(cur);
            cur = pred_old[cur] as usize;
        }
        let verdict = taint[cur];
        while let Some(y) = chain.pop() {
            taint[y] = verdict;
            if verdict == TAINT_DIRTY {
                dirty_count += 1;
            }
        }
    }
    if dirty_count * 2 > n {
        return RepairOutcome::Fallback;
    }

    // Reset the cone and re-settle it with the engine's exact arithmetic and
    // heap order. Clean nodes keep their old (dist, pred) — their old paths
    // are all-clean, hence still optimal unless the repaired region opens a
    // strictly better one, which the cascade relaxations below apply.
    let costs: Vec<f64> = new_rho.iter().map(|&r| sanitize_cost(beta * r)).collect();
    let mut dist = dist_old.to_vec();
    let mut pred = pred_old.to_vec();
    for v in 0..n {
        if taint[v] == TAINT_DIRTY {
            dist[v] = f64::INFINITY;
            pred[v] = NO_PRED;
        }
    }
    let repairs = if use_bucket {
        let mut q = BucketQueue::new();
        q.reset(run_inv_quantum(csr, &costs));
        repair_cascade(csr, &costs, &taint, &mut dist, &mut pred, &mut q)
    } else {
        let mut q: BinaryHeap<Entry> = BinaryHeap::new();
        repair_cascade(csr, &costs, &taint, &mut dist, &mut pred, &mut q)
    };
    let Some(repairs) = repairs else {
        return RepairOutcome::Fallback;
    };
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("risk_sssp_repair_settles", repairs);
        if use_bucket {
            riskroute_obs::counter_add("bucket_queue_settles", repairs);
        }
    }
    RepairOutcome::Repaired(RiskTree::from_parts(source, dist, pred, Vec::new()))
}

/// Seed every clean→dirty edge and run the repair cascade over frontier
/// `q`, applying only strict improvements. Returns the number of repair
/// settles, or `None` when a finite cost tie makes the repair ambiguous
/// (the winner of a tie is a scratch-run relaxation-order artifact).
/// Seed order does not matter because only strict improvements are applied
/// and any finite tie aborts.
fn repair_cascade<Q: Frontier>(
    csr: &CsrGraph,
    costs: &[f64],
    taint: &[u8],
    dist: &mut [f64],
    pred: &mut [u32],
    q: &mut Q,
) -> Option<u64> {
    let n = csr.node_count();
    for u in 0..n {
        if taint[u] != TAINT_CLEAN || !dist[u].is_finite() {
            continue;
        }
        for e in csr.edge_range(u) {
            let v = csr.targets[e] as usize;
            if taint[v] != TAINT_DIRTY {
                continue;
            }
            let next = dist[u] + csr.weights[e] + costs[v];
            if next < dist[v] {
                dist[v] = next;
                pred[v] = u as u32;
                q.push(Entry { cost: next, node: v });
            } else if next == dist[v] && next.is_finite() {
                return None;
            }
        }
    }
    let mut settled = vec![false; n];
    let mut repairs: u64 = 0;
    while let Some(Entry { cost, node }) = q.pop() {
        if settled[node] {
            continue;
        }
        settled[node] = true;
        repairs += 1;
        for e in csr.edge_range(node) {
            let v = csr.targets[e] as usize;
            if settled[v] {
                // An offer into a repair-settled node is ≥ its final dist;
                // on equality the scratch run's strict `<` (or its
                // settled-skip) rejects it too, so skipping loses nothing.
                continue;
            }
            let next = cost + csr.weights[e] + costs[v];
            if next < dist[v] {
                dist[v] = next;
                pred[v] = node as u32;
                q.push(Entry { cost: next, node: v });
            } else if next == dist[v] && next.is_finite() {
                return None;
            }
        }
    }
    Some(repairs)
}

/// Key of one cached route tree: the SSSP root, the exact β bits (the cost
/// function is linear in β, so distinct bit patterns are distinct
/// metrics), and the planner cost-state stamp the tree was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TreeKey {
    /// SSSP root node.
    pub(crate) root: u32,
    /// `β.to_bits()` of the pair metric.
    pub(crate) beta_bits: u64,
    /// Cost-state stamp (see [`next_stamp`]).
    pub(crate) stamp: u64,
}

/// Roughly how much memory the cache may pin before it starts refusing
/// inserts (entries are ~`12·n + 96` bytes each).
const CACHE_BUDGET_BYTES: usize = 256 << 20;

struct CacheInner {
    map: HashMap<TreeKey, Arc<RiskTree>>,
    /// Stamp for which the cache already proved full after purging stale
    /// generations — inserts under it are skipped without rescanning.
    full_stamp: u64,
}

/// Exact, shared route-tree cache (see the module docs). Clones of a
/// planner share one cache through an `Arc`; the per-entry stamp keeps
/// divergent clones from ever observing each other's trees.
pub(crate) struct RouteTreeCache {
    inner: Mutex<CacheInner>,
    max_entries: usize,
}

impl RouteTreeCache {
    /// A cache sized so `max_entries` trees of an `n_nodes` graph stay
    /// within [`CACHE_BUDGET_BYTES`].
    pub(crate) fn with_budget(n_nodes: usize) -> Self {
        let per_tree = 96 + 12 * n_nodes.max(1);
        let max_entries = (CACHE_BUDGET_BYTES / per_tree).clamp(1024, 1 << 20);
        RouteTreeCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                full_stamp: 0,
            }),
            max_entries,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // Nothing inside the critical sections can panic; recover from
        // poisoning defensively rather than propagating an unwrap.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up a tree without touching the hit/miss counters — the
    /// delta-repair path probes for *parent-stamp* trees this way, so the
    /// pinned `route_cache_hits`/`route_cache_misses` series keep counting
    /// only current-state lookups.
    pub(crate) fn peek(&self, key: &TreeKey) -> Option<Arc<RiskTree>> {
        self.lock().map.get(key).cloned()
    }

    /// Look up a tree, counting the hit or miss.
    pub(crate) fn get(&self, key: &TreeKey) -> Option<Arc<RiskTree>> {
        let found = self.lock().map.get(key).cloned();
        if riskroute_obs::is_enabled() {
            let counter = if found.is_some() {
                "route_cache_hits"
            } else {
                "route_cache_misses"
            };
            riskroute_obs::counter_add(counter, 1);
        }
        found
    }

    /// Insert a freshly computed (or revalidated) tree. At capacity, stale
    /// stamps are purged once per stamp transition; if the current stamp
    /// alone fills the cache, further inserts under it are skipped (counted
    /// as `route_cache_insert_skips`) — correctness is unaffected, those
    /// trees are simply recomputed on demand.
    pub(crate) fn insert(&self, key: TreeKey, tree: Arc<RiskTree>) {
        let mut inner = self.lock();
        if inner.map.len() >= self.max_entries {
            if inner.full_stamp == key.stamp {
                drop(inner);
                riskroute_obs::counter_add("route_cache_insert_skips", 1);
                return;
            }
            inner.map.retain(|k, _| k.stamp == key.stamp);
            if inner.map.len() >= self.max_entries {
                inner.full_stamp = key.stamp;
                drop(inner);
                riskroute_obs::counter_add("route_cache_insert_skips", 1);
                return;
            }
        }
        // First writer wins on concurrent duplicate computes — the values
        // are identical by construction, so either Arc is fine.
        if let MapEntry::Vacant(slot) = inner.map.entry(key) {
            slot.insert(tree);
        }
    }

    /// Snapshot every entry computed under `stamp` (the adoption walk after
    /// greedy adds a link).
    pub(crate) fn entries_with_stamp(&self, stamp: u64) -> Vec<(TreeKey, Arc<RiskTree>)> {
        self.lock()
            .map
            .iter()
            .filter(|(k, _)| k.stamp == stamp)
            .map(|(k, t)| (*k, Arc::clone(t)))
            .collect()
    }

    /// Number of cached trees (all stamps).
    pub(crate) fn len(&self) -> usize {
        self.lock().map.len()
    }
}

impl std::fmt::Debug for RouteTreeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteTreeCache")
            .field("entries", &self.len())
            .field("max_entries", &self.max_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::routing::risk_sssp;

    /// Run both frontier implementations, assert they agree bit-for-bit,
    /// return one. Shadows `super::sssp` so every engine test doubles as a
    /// heap-vs-bucket equivalence check.
    fn sssp(csr: &CsrGraph, source: usize, beta: f64, rho: &[f64]) -> RiskTree {
        let heap = super::sssp(csr, source, beta, rho, false);
        let bucket = super::sssp(csr, source, beta, rho, true);
        assert_trees_bit_equal(&heap, &bucket);
        heap
    }

    /// Same double-run discipline for the repair path: both frontiers must
    /// reach the same outcome variant with bit-equal payloads.
    fn repair_tree(
        csr: &CsrGraph,
        tree: &RiskTree,
        beta: f64,
        old_rho: &[f64],
        new_rho: &[f64],
        changed: &[u32],
    ) -> RepairOutcome {
        let heap = super::repair_tree(csr, tree, beta, old_rho, new_rho, changed, false);
        let bucket = super::repair_tree(csr, tree, beta, old_rho, new_rho, changed, true);
        match (&heap, &bucket) {
            (RepairOutcome::Survived, RepairOutcome::Survived)
            | (RepairOutcome::Fallback, RepairOutcome::Fallback) => {}
            (RepairOutcome::Repaired(a), RepairOutcome::Repaired(b)) => {
                assert_trees_bit_equal(a, b);
            }
            (a, b) => panic!("frontier outcomes diverge: heap {a:?} vs bucket {b:?}"),
        }
        heap
    }

    fn square() -> Adjacency {
        Adjacency::from_links(
            4,
            vec![(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (3, 0, 10.0)],
        )
    }

    #[test]
    fn csr_preserves_edge_order_and_counts() {
        let adj = Adjacency::from_links(3, vec![(0, 1, 5.0), (0, 2, 7.0), (0, 1, 3.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 6);
        let edges: Vec<(u32, f64)> = csr
            .edge_range(0)
            .map(|e| (csr.targets[e], csr.weights[e]))
            .collect();
        assert_eq!(edges, vec![(1, 5.0), (2, 7.0), (1, 3.0)]);
    }

    #[test]
    fn engine_matches_reference_sssp_bit_for_bit() {
        let adj = square();
        let rho = [0.0, 100.0, 0.0, 0.25];
        let csr = CsrGraph::from_adjacency(&adj);
        for source in 0..4 {
            for beta in [0.0, 1.0, 2.5] {
                let fast = sssp(&csr, source, beta, &rho);
                let slow = risk_sssp(&adj, source, |v| beta * rho[v]);
                for t in 0..4 {
                    assert_eq!(fast.dist(t).to_bits(), slow.dist(t).to_bits());
                    assert_eq!(fast.path_to(t), slow.path_to(t));
                }
            }
        }
    }

    #[test]
    fn engine_handles_unreachable_and_poisoned_nodes() {
        let adj = Adjacency::from_links(4, vec![(0, 1, 5.0), (1, 2, 5.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        // ρ(2) scaled by β overflows to +inf → node 2 unroutable; node 3
        // has no links at all.
        let rho = [0.0, 0.0, f64::MAX, 0.0];
        let tree = sssp(&csr, 0, f64::MAX, &rho);
        assert!(!tree.reachable(2));
        assert!(!tree.reachable(3));
        assert!(tree.reachable(1));
        // β = 0 keeps the distance tree oblivious to ρ, as the reference
        // zero-cost closure was.
        let dist_tree = sssp(&csr, 0, 0.0, &rho);
        assert!(dist_tree.reachable(2));
        assert_eq!(dist_tree.dist(2), 10.0);
    }

    #[test]
    fn rho_sums_accumulate_in_path_order() {
        let adj = square();
        let rho = [1.0, 100.0, 7.0, 3.0];
        let csr = CsrGraph::from_adjacency(&adj);
        let tree = sssp(&csr, 0, 0.0, &rho);
        // 0→2 ties (via 1 or via 3); heap tie-break settles the smaller
        // node first, so the path goes via 1: ρ-sum = ρ(1) + ρ(2).
        let path = tree.path_to(2).unwrap();
        let expect: f64 = path.iter().skip(1).map(|&v| rho[v]).sum();
        assert_eq!(tree.path_rho_sum(2), expect);
        assert_eq!(tree.path_rho_sum(0), 0.0);
    }

    #[test]
    fn arena_generations_isolate_consecutive_runs() {
        let adj = square();
        let rho = [0.0; 4];
        let csr = CsrGraph::from_adjacency(&adj);
        // Repeated runs from different sources through the pooled arenas
        // must not leak state between generations.
        for _ in 0..3 {
            for s in 0..4 {
                let tree = sssp(&csr, s, 0.0, &rho);
                assert_eq!(tree.dist(s), 0.0);
                assert_eq!(tree.source(), s);
                for t in 0..4 {
                    let hops = tree.path_to(t).unwrap().len() - 1;
                    assert_eq!(tree.dist(t), 10.0 * hops as f64);
                }
            }
        }
    }

    /// Line 0-1-2-…-7, 10 miles per hop: unique paths, so no cost ties.
    fn line8() -> Adjacency {
        Adjacency::from_links(8, (0..7).map(|u| (u, u + 1, 10.0)))
    }

    fn assert_trees_bit_equal(a: &RiskTree, b: &RiskTree) {
        assert_eq!(a.source(), b.source());
        let n = a.dist_slice().len();
        for t in 0..n {
            assert_eq!(a.dist(t).to_bits(), b.dist(t).to_bits(), "dist[{t}]");
            assert_eq!(a.pred_slice()[t], b.pred_slice()[t], "pred[{t}]");
        }
        assert_eq!(a.rho_sum_slice().len(), b.rho_sum_slice().len());
        for t in 0..a.rho_sum_slice().len() {
            assert_eq!(
                a.rho_sum_slice()[t].to_bits(),
                b.rho_sum_slice()[t].to_bits(),
                "rho_sum[{t}]"
            );
        }
    }

    #[test]
    fn repair_beta_zero_survives_source_and_unreachable_changes() {
        let adj = Adjacency::from_links(4, vec![(0, 1, 5.0), (1, 2, 5.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        let old_rho = [1.0, 2.0, 3.0, 4.0];
        let tree = sssp(&csr, 0, 0.0, &old_rho);
        // Changing ρ at the source (never summed) and at the isolated node 3
        // (unreachable → ρ-sum stays ∞) cannot touch the ρ-sum channel.
        let new_rho = [9.0, 2.0, 3.0, 7.0];
        match repair_tree(&csr, &tree, 0.0, &old_rho, &new_rho, &[0, 3]) {
            RepairOutcome::Survived => {}
            other => panic!("expected Survived, got {other:?}"),
        }
        assert_trees_bit_equal(&tree, &sssp(&csr, 0, 0.0, &new_rho));
    }

    #[test]
    fn repair_beta_zero_recomputes_rho_sums_bit_for_bit() {
        let adj = square();
        let csr = CsrGraph::from_adjacency(&adj);
        let old_rho = [1.0, 0.3, 7.0, 0.1];
        let tree = sssp(&csr, 0, 0.0, &old_rho);
        let new_rho = [1.0, 2.75, 7.0, 0.1];
        match repair_tree(&csr, &tree, 0.0, &old_rho, &new_rho, &[1]) {
            RepairOutcome::Repaired(fixed) => {
                assert_trees_bit_equal(&fixed, &sssp(&csr, 0, 0.0, &new_rho));
            }
            other => panic!("expected Repaired, got {other:?}"),
        }
    }

    #[test]
    fn repair_beta_nonzero_matches_scratch_on_tie_free_graph() {
        let adj = line8();
        let csr = CsrGraph::from_adjacency(&adj);
        let old_rho = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for source in [0usize, 3] {
            for beta in [1.0, 2.5] {
                let tree = sssp(&csr, source, beta, &old_rho);
                // Perturb a tail node: the dirty cone is its descendant
                // chain, well under the n/2 fallback threshold.
                let mut new_rho = old_rho;
                new_rho[6] = 0.25;
                match repair_tree(&csr, &tree, beta, &old_rho, &new_rho, &[6]) {
                    RepairOutcome::Repaired(fixed) => {
                        assert_trees_bit_equal(&fixed, &sssp(&csr, source, beta, &new_rho));
                    }
                    other => panic!("source {source} β {beta}: expected Repaired, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn repair_beta_nonzero_survives_ineffective_and_blocked_changes() {
        let adj = Adjacency::from_links(4, vec![(0, 1, 5.0), (1, 2, 5.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        // Node 3 is topologically unreachable with a *finite* old cost, so
        // its ρ change is provably harmless; node 2's ρ change keeps the
        // sanitized cost at ∞ (negative either way), also harmless.
        let old_rho = [0.0, 1.0, -1.0, 2.0];
        let tree = sssp(&csr, 0, 1.0, &old_rho);
        assert!(!tree.reachable(2) && !tree.reachable(3));
        let new_rho = [0.0, 1.0, -5.0, 9.0];
        match repair_tree(&csr, &tree, 1.0, &old_rho, &new_rho, &[2, 3]) {
            RepairOutcome::Survived => {}
            other => panic!("expected Survived, got {other:?}"),
        }
        assert_trees_bit_equal(&tree, &sssp(&csr, 0, 1.0, &new_rho));
    }

    #[test]
    fn repair_reopens_cost_blocked_node() {
        let adj = line8();
        let csr = CsrGraph::from_adjacency(&adj);
        // Node 7's negative ρ sanitizes to an ∞ entry cost: unroutable.
        let old_rho = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1.0];
        let tree = sssp(&csr, 0, 1.0, &old_rho);
        assert!(!tree.reachable(7));
        let new_rho = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.5];
        match repair_tree(&csr, &tree, 1.0, &old_rho, &new_rho, &[7]) {
            RepairOutcome::Repaired(fixed) => {
                assert!(fixed.reachable(7));
                assert_trees_bit_equal(&fixed, &sssp(&csr, 0, 1.0, &new_rho));
            }
            other => panic!("expected Repaired, got {other:?}"),
        }
    }

    #[test]
    fn repair_falls_back_on_cost_tie() {
        // In the square, 0→2 ties via 1 and via 3: repairing a ρ change at
        // node 2 sees two equal clean→dirty offers — the winner is a
        // relaxation-order artifact, so the repair must refuse.
        let adj = square();
        let csr = CsrGraph::from_adjacency(&adj);
        let old_rho = [0.0, 0.0, 1.0, 0.0];
        let tree = sssp(&csr, 0, 1.0, &old_rho);
        let new_rho = [0.0, 0.0, 0.5, 0.0];
        match repair_tree(&csr, &tree, 1.0, &old_rho, &new_rho, &[2]) {
            RepairOutcome::Fallback => {}
            other => panic!("expected Fallback, got {other:?}"),
        }
    }

    #[test]
    fn repair_falls_back_when_cone_exceeds_half_the_graph() {
        let adj = line8();
        let csr = CsrGraph::from_adjacency(&adj);
        let old_rho = [0.0; 8];
        let tree = sssp(&csr, 0, 1.0, &old_rho);
        // Dirtying node 1 taints its whole descendant chain (nodes 1..8).
        let new_rho = [0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        match repair_tree(&csr, &tree, 1.0, &old_rho, &new_rho, &[1]) {
            RepairOutcome::Fallback => {}
            other => panic!("expected Fallback, got {other:?}"),
        }
    }

    #[test]
    fn cache_peek_does_not_count() {
        let cache = RouteTreeCache::with_budget(4);
        let adj = square();
        let csr = CsrGraph::from_adjacency(&adj);
        let tree = Arc::new(sssp(&csr, 0, 0.0, &[0.0; 4]));
        let key = TreeKey {
            root: 0,
            beta_bits: 0,
            stamp: next_stamp(),
        };
        assert!(cache.peek(&key).is_none());
        cache.insert(key, Arc::clone(&tree));
        assert!(cache.peek(&key).is_some());
    }

    #[test]
    fn cache_isolates_stamps_and_counts_hits() {
        let cache = RouteTreeCache::with_budget(4);
        let adj = square();
        let csr = CsrGraph::from_adjacency(&adj);
        let tree = Arc::new(sssp(&csr, 0, 0.0, &[0.0; 4]));
        let key = TreeKey {
            root: 0,
            beta_bits: 0,
            stamp: next_stamp(),
        };
        assert!(cache.get(&key).is_none());
        cache.insert(key, Arc::clone(&tree));
        assert!(cache.get(&key).is_some());
        let other_stamp = TreeKey {
            stamp: next_stamp(),
            ..key
        };
        assert!(cache.get(&other_stamp).is_none(), "stamps never alias");
        assert_eq!(cache.entries_with_stamp(key.stamp).len(), 1);
        assert_eq!(cache.len(), 1);
    }
}
