//! The dedicated shortest-path engine behind [`crate::Planner`].
//!
//! Every RiskRoute quantity — Eq. 3 routes, Eq. 4 provisioning scores,
//! Eq. 5/6 ratios — bottoms out in β-scaled SSSP, so this module owns the
//! three layers that make those runs cheap without changing a single bit of
//! output:
//!
//! 1. **CSR snapshot** ([`CsrGraph`]): an immutable compressed-sparse-row
//!    image of [`Adjacency`] — flat `offsets`/`targets`/`weights` arrays —
//!    so the Dijkstra inner loop walks two cache-friendly slices instead of
//!    chasing `Vec<Vec<(usize, f64)>>` pointers. Edge order within each
//!    node is preserved exactly, which keeps relaxation order (and
//!    therefore every tie-broken predecessor) identical to the reference
//!    [`risk_sssp`](crate::routing::risk_sssp).
//!
//! 2. **Scratch-arena Dijkstra** ([`SsspArena`]): per-worker reusable
//!    dist/pred/cost/heap buffers with generation-stamped lazy reset — a
//!    run bumps one `u32` generation instead of clearing four arrays, and a
//!    slot is live only when its stamp matches. Arenas are pooled through
//!    [`riskroute_par::ScratchPool`] so scoped pool workers reuse them
//!    across drains; steady-state runs allocate nothing but the output
//!    tree.
//!
//! 3. **Exact route-tree cache** ([`RouteTreeCache`]): completed trees
//!    keyed by `(root, β.to_bits(), stamp)` where the stamp names one
//!    immutable (topology, cost-function) state — any risk/weight mutation
//!    mints a fresh stamp, so a stale entry can never be *returned*, only
//!    evicted. After greedy provisioning adds a link `(a, b)` the planner
//!    re-keys still-valid trees into the new state via a strict
//!    edge-addition test (`Planner::adopt_route_cache`): a tree rooted at
//!    `r` survives when
//!    `dist(r,a) + w + c(b) > dist(r,b)` **and**
//!    `dist(r,b) + w + c(a) > dist(r,a)` (`c(v) = β·ρ(v)`). Strict
//!    inequality — not the `≥` that preserves distances alone — is what
//!    preserves the predecessor array bit-for-bit: on an exact tie a fresh
//!    run could route through the new link and flip the printed path even
//!    though the distance is unchanged. The cache is exact, never
//!    approximate: outputs are byte-identical with it on or off.

use crate::routing::{Adjacency, Entry, RiskTree, NO_PRED};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Process-global source of cost-state stamps (see [`next_stamp`]).
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh, process-unique stamp naming one immutable
/// (topology, cost-function) planner state. Two planner values share a
/// stamp only when their trees are interchangeable bit-for-bit.
pub(crate) fn next_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Sanitize one β-scaled entry cost exactly like the reference SSSP:
/// non-finite or negative costs make the node unroutable.
pub(crate) fn sanitize_cost(c: f64) -> f64 {
    if c.is_finite() && c >= 0.0 {
        c
    } else {
        f64::INFINITY
    }
}

/// Immutable compressed-sparse-row snapshot of an [`Adjacency`].
///
/// `targets[offsets[u]..offsets[u+1]]` lists u's neighbors in the exact
/// order the nested-Vec adjacency stores them (append order of
/// `from_links`), with `weights` holding the matching link miles.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Flatten an adjacency into CSR form, preserving per-node edge order.
    ///
    /// # Panics
    /// Panics when node or edge counts exceed the packed `u32` index range.
    pub fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.node_count();
        let m: usize = (0..n).map(|u| adj.neighbors(u).len()).sum();
        assert!(
            n < u32::MAX as usize && m < u32::MAX as usize,
            "graph exceeds the packed CSR index range"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        offsets.push(0u32);
        for u in 0..n {
            for &(v, miles) in adj.neighbors(u) {
                targets.push(v as u32);
                weights.push(miles);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// A masked copy of this snapshot: directed edges `(u, v)` for which
    /// `keep(u, v)` returns `false` are dropped, and every surviving edge
    /// keeps its position relative to the others. Identical by construction
    /// to `from_adjacency` of the equivalently masked [`Adjacency`], so a
    /// scenario fork's Dijkstra replays the base relaxation order restricted
    /// to kept edges — the property that keeps fork tie-breaks bit-exact.
    pub(crate) fn masked(&self, keep: impl Fn(usize, usize) -> bool) -> CsrGraph {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        offsets.push(0u32);
        for u in 0..n {
            for e in self.edge_range(u) {
                let v = self.targets[e] as usize;
                if keep(u, v) {
                    targets.push(self.targets[e]);
                    weights.push(self.weights[e]);
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (twice the undirected link count).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    #[inline]
    fn edge_range(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }
}

/// Reusable per-worker Dijkstra scratch state with generation-stamped lazy
/// reset: `dist`/`pred` slots are live only when `touched[v] == gen`, and a
/// node is settled only when `settled[v] == gen`, so "resetting" for the
/// next run is a single generation bump. A full clear happens only when the
/// `u32` generation wraps (once per ~4 billion runs).
pub(crate) struct SsspArena {
    dist: Vec<f64>,
    pred: Vec<u32>,
    costs: Vec<f64>,
    rho_sum: Vec<f64>,
    touched: Vec<u32>,
    settled: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Entry>,
}

impl SsspArena {
    pub(crate) fn new() -> Self {
        SsspArena {
            dist: Vec::new(),
            pred: Vec::new(),
            costs: Vec::new(),
            rho_sum: Vec::new(),
            touched: Vec::new(),
            settled: Vec::new(),
            gen: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Open a new run over `n` nodes: grow buffers if the graph outgrew the
    /// arena, bump the generation (full clear on wrap), empty the heap.
    fn begin(&mut self, n: usize) {
        if self.touched.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.pred.resize(n, NO_PRED);
            self.costs.resize(n, 0.0);
            self.rho_sum.resize(n, 0.0);
            self.touched.resize(n, 0);
            self.settled.resize(n, 0);
        }
        if self.gen == u32::MAX {
            self.touched.fill(0);
            self.settled.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
    }

    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.touched[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }
}

/// The process-wide arena pool: scoped pool workers (and the sequential
/// path) check arenas out per run and return them for the next, so
/// steady-state SSSP allocates nothing but the output tree.
static ARENAS: riskroute_par::ScratchPool<SsspArena> =
    riskroute_par::ScratchPool::named("sssp_arena");

/// β-scaled SSSP from `source` over the CSR snapshot, using a pooled
/// scratch arena. Bit-for-bit equivalent to
/// [`risk_sssp`](crate::routing::risk_sssp) with entry cost
/// `v ↦ β·ρ(v)` — same relaxation order, same heap tie-breaks, same
/// sanitization — and additionally records β-independent ρ-sums down the
/// tree when `beta == 0` (one distance tree then serves every pair metric
/// in O(1), see `Planner::sweep_source`).
///
/// # Panics
/// Panics when `source` is out of range.
pub(crate) fn sssp(csr: &CsrGraph, source: usize, beta: f64, rho: &[f64]) -> RiskTree {
    ARENAS.with(SsspArena::new, |arena| run(arena, csr, source, beta, rho))
}

fn run(arena: &mut SsspArena, csr: &CsrGraph, source: usize, beta: f64, rho: &[f64]) -> RiskTree {
    let n = csr.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    arena.begin(n);
    // β = 0 is the distance tree: the reference path used a literal zero
    // entry cost (never touching ρ), and that is also the tree for which
    // the β-independent ρ-sum channel is recorded.
    let track_rho = beta == 0.0;
    if track_rho {
        arena.costs[..n].fill(0.0);
    } else {
        for (slot, &r) in arena.costs[..n].iter_mut().zip(rho) {
            *slot = sanitize_cost(beta * r);
        }
    }

    let gen = arena.gen;
    arena.touched[source] = gen;
    arena.dist[source] = 0.0;
    arena.pred[source] = NO_PRED;
    arena.heap.push(Entry {
        cost: 0.0,
        node: source,
    });
    // Hot loop: count into plain locals, publish once at the end.
    let mut pops: u64 = 0;
    let mut relaxations: u64 = 0;
    let mut heap_peak: usize = arena.heap.len();
    while let Some(Entry { cost, node }) = arena.heap.pop() {
        pops += 1;
        if arena.settled[node] == gen {
            continue;
        }
        arena.settled[node] = gen;
        if track_rho {
            // pred[node] is final once the node settles, so the ρ-sum can
            // accumulate in path order (matching evaluate_path's order).
            arena.rho_sum[node] = if node == source {
                0.0
            } else {
                arena.rho_sum[arena.pred[node] as usize] + rho[node]
            };
        }
        for e in csr.edge_range(node) {
            let v = csr.targets[e] as usize;
            if arena.settled[v] == gen {
                continue;
            }
            let next = cost + csr.weights[e] + arena.costs[v];
            if next < arena.dist_of(v) {
                arena.touched[v] = gen;
                arena.dist[v] = next;
                arena.pred[v] = node as u32;
                relaxations += 1;
                arena.heap.push(Entry {
                    cost: next,
                    node: v,
                });
                heap_peak = heap_peak.max(arena.heap.len());
            }
        }
    }
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("risk_sssp_runs", 1);
        riskroute_obs::counter_add("risk_sssp_pops", pops);
        riskroute_obs::counter_add("risk_sssp_relaxations", relaxations);
        riskroute_obs::gauge_max("risk_sssp_heap_peak", heap_peak as f64);
    }

    // Extract the compact output tree; untouched slots read as unreachable.
    let mut dist = Vec::with_capacity(n);
    let mut pred = Vec::with_capacity(n);
    for v in 0..n {
        if arena.touched[v] == gen {
            dist.push(arena.dist[v]);
            pred.push(arena.pred[v]);
        } else {
            dist.push(f64::INFINITY);
            pred.push(NO_PRED);
        }
    }
    let rho_sum = if track_rho {
        (0..n)
            .map(|v| {
                if arena.settled[v] == gen {
                    arena.rho_sum[v]
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    RiskTree::from_parts(source, dist, pred, rho_sum)
}

/// Key of one cached route tree: the SSSP root, the exact β bits (the cost
/// function is linear in β, so distinct bit patterns are distinct
/// metrics), and the planner cost-state stamp the tree was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TreeKey {
    /// SSSP root node.
    pub(crate) root: u32,
    /// `β.to_bits()` of the pair metric.
    pub(crate) beta_bits: u64,
    /// Cost-state stamp (see [`next_stamp`]).
    pub(crate) stamp: u64,
}

/// Roughly how much memory the cache may pin before it starts refusing
/// inserts (entries are ~`12·n + 96` bytes each).
const CACHE_BUDGET_BYTES: usize = 256 << 20;

struct CacheInner {
    map: HashMap<TreeKey, Arc<RiskTree>>,
    /// Stamp for which the cache already proved full after purging stale
    /// generations — inserts under it are skipped without rescanning.
    full_stamp: u64,
}

/// Exact, shared route-tree cache (see the module docs). Clones of a
/// planner share one cache through an `Arc`; the per-entry stamp keeps
/// divergent clones from ever observing each other's trees.
pub(crate) struct RouteTreeCache {
    inner: Mutex<CacheInner>,
    max_entries: usize,
}

impl RouteTreeCache {
    /// A cache sized so `max_entries` trees of an `n_nodes` graph stay
    /// within [`CACHE_BUDGET_BYTES`].
    pub(crate) fn with_budget(n_nodes: usize) -> Self {
        let per_tree = 96 + 12 * n_nodes.max(1);
        let max_entries = (CACHE_BUDGET_BYTES / per_tree).clamp(1024, 1 << 20);
        RouteTreeCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                full_stamp: 0,
            }),
            max_entries,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // Nothing inside the critical sections can panic; recover from
        // poisoning defensively rather than propagating an unwrap.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up a tree, counting the hit or miss.
    pub(crate) fn get(&self, key: &TreeKey) -> Option<Arc<RiskTree>> {
        let found = self.lock().map.get(key).cloned();
        if riskroute_obs::is_enabled() {
            let counter = if found.is_some() {
                "route_cache_hits"
            } else {
                "route_cache_misses"
            };
            riskroute_obs::counter_add(counter, 1);
        }
        found
    }

    /// Insert a freshly computed (or revalidated) tree. At capacity, stale
    /// stamps are purged once per stamp transition; if the current stamp
    /// alone fills the cache, further inserts under it are skipped (counted
    /// as `route_cache_insert_skips`) — correctness is unaffected, those
    /// trees are simply recomputed on demand.
    pub(crate) fn insert(&self, key: TreeKey, tree: Arc<RiskTree>) {
        let mut inner = self.lock();
        if inner.map.len() >= self.max_entries {
            if inner.full_stamp == key.stamp {
                drop(inner);
                riskroute_obs::counter_add("route_cache_insert_skips", 1);
                return;
            }
            inner.map.retain(|k, _| k.stamp == key.stamp);
            if inner.map.len() >= self.max_entries {
                inner.full_stamp = key.stamp;
                drop(inner);
                riskroute_obs::counter_add("route_cache_insert_skips", 1);
                return;
            }
        }
        // First writer wins on concurrent duplicate computes — the values
        // are identical by construction, so either Arc is fine.
        if let MapEntry::Vacant(slot) = inner.map.entry(key) {
            slot.insert(tree);
        }
    }

    /// Snapshot every entry computed under `stamp` (the adoption walk after
    /// greedy adds a link).
    pub(crate) fn entries_with_stamp(&self, stamp: u64) -> Vec<(TreeKey, Arc<RiskTree>)> {
        self.lock()
            .map
            .iter()
            .filter(|(k, _)| k.stamp == stamp)
            .map(|(k, t)| (*k, Arc::clone(t)))
            .collect()
    }

    /// Number of cached trees (all stamps).
    pub(crate) fn len(&self) -> usize {
        self.lock().map.len()
    }
}

impl std::fmt::Debug for RouteTreeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteTreeCache")
            .field("entries", &self.len())
            .field("max_entries", &self.max_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::routing::risk_sssp;

    fn square() -> Adjacency {
        Adjacency::from_links(
            4,
            vec![(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (3, 0, 10.0)],
        )
    }

    #[test]
    fn csr_preserves_edge_order_and_counts() {
        let adj = Adjacency::from_links(3, vec![(0, 1, 5.0), (0, 2, 7.0), (0, 1, 3.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 6);
        let edges: Vec<(u32, f64)> = csr
            .edge_range(0)
            .map(|e| (csr.targets[e], csr.weights[e]))
            .collect();
        assert_eq!(edges, vec![(1, 5.0), (2, 7.0), (1, 3.0)]);
    }

    #[test]
    fn engine_matches_reference_sssp_bit_for_bit() {
        let adj = square();
        let rho = [0.0, 100.0, 0.0, 0.25];
        let csr = CsrGraph::from_adjacency(&adj);
        for source in 0..4 {
            for beta in [0.0, 1.0, 2.5] {
                let fast = sssp(&csr, source, beta, &rho);
                let slow = risk_sssp(&adj, source, |v| beta * rho[v]);
                for t in 0..4 {
                    assert_eq!(fast.dist(t).to_bits(), slow.dist(t).to_bits());
                    assert_eq!(fast.path_to(t), slow.path_to(t));
                }
            }
        }
    }

    #[test]
    fn engine_handles_unreachable_and_poisoned_nodes() {
        let adj = Adjacency::from_links(4, vec![(0, 1, 5.0), (1, 2, 5.0)]);
        let csr = CsrGraph::from_adjacency(&adj);
        // ρ(2) scaled by β overflows to +inf → node 2 unroutable; node 3
        // has no links at all.
        let rho = [0.0, 0.0, f64::MAX, 0.0];
        let tree = sssp(&csr, 0, f64::MAX, &rho);
        assert!(!tree.reachable(2));
        assert!(!tree.reachable(3));
        assert!(tree.reachable(1));
        // β = 0 keeps the distance tree oblivious to ρ, as the reference
        // zero-cost closure was.
        let dist_tree = sssp(&csr, 0, 0.0, &rho);
        assert!(dist_tree.reachable(2));
        assert_eq!(dist_tree.dist(2), 10.0);
    }

    #[test]
    fn rho_sums_accumulate_in_path_order() {
        let adj = square();
        let rho = [1.0, 100.0, 7.0, 3.0];
        let csr = CsrGraph::from_adjacency(&adj);
        let tree = sssp(&csr, 0, 0.0, &rho);
        // 0→2 ties (via 1 or via 3); heap tie-break settles the smaller
        // node first, so the path goes via 1: ρ-sum = ρ(1) + ρ(2).
        let path = tree.path_to(2).unwrap();
        let expect: f64 = path.iter().skip(1).map(|&v| rho[v]).sum();
        assert_eq!(tree.path_rho_sum(2), expect);
        assert_eq!(tree.path_rho_sum(0), 0.0);
    }

    #[test]
    fn arena_generations_isolate_consecutive_runs() {
        let adj = square();
        let rho = [0.0; 4];
        let csr = CsrGraph::from_adjacency(&adj);
        // Repeated runs from different sources through the pooled arenas
        // must not leak state between generations.
        for _ in 0..3 {
            for s in 0..4 {
                let tree = sssp(&csr, s, 0.0, &rho);
                assert_eq!(tree.dist(s), 0.0);
                assert_eq!(tree.source(), s);
                for t in 0..4 {
                    let hops = tree.path_to(t).unwrap().len() - 1;
                    assert_eq!(tree.dist(t), 10.0 * hops as f64);
                }
            }
        }
    }

    #[test]
    fn cache_isolates_stamps_and_counts_hits() {
        let cache = RouteTreeCache::with_budget(4);
        let adj = square();
        let csr = CsrGraph::from_adjacency(&adj);
        let tree = Arc::new(sssp(&csr, 0, 0.0, &[0.0; 4]));
        let key = TreeKey {
            root: 0,
            beta_bits: 0,
            stamp: next_stamp(),
        };
        assert!(cache.get(&key).is_none());
        cache.insert(key, Arc::clone(&tree));
        assert!(cache.get(&key).is_some());
        let other_stamp = TreeKey {
            stamp: next_stamp(),
            ..key
        };
        assert!(cache.get(&other_stamp).is_none(), "stamps never alias");
        assert_eq!(cache.entries_with_stamp(key.stamp).len(), 1);
        assert_eq!(cache.len(), 1);
    }
}
