//! The evaluation ratios of §7 (Eqs. 5–6).
//!
//! - **Risk reduction ratio** (Eq. 5): the fractional decrease of average
//!   bit-risk miles for RiskRoute compared with shortest-path routing.
//! - **Distance increase ratio** (Eq. 6): the fractional increase in average
//!   bit-miles RiskRoute pays for that reduction.

use crate::routing::RoutedPath;

/// Per-pair routing outcome feeding the ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct PairOutcome {
    /// Source PoP.
    pub src: usize,
    /// Destination PoP.
    pub dst: usize,
    /// The RiskRoute path (Eq. 3).
    pub risk_route: RoutedPath,
    /// The geographic shortest path, evaluated under the same bit-risk
    /// metric.
    pub shortest: RoutedPath,
}

/// Aggregated Eq. 5 / Eq. 6 ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioReport {
    /// Eq. 5: `1 − mean(r(p_rr) / r(p_shortest))`.
    pub risk_reduction_ratio: f64,
    /// Eq. 6: `mean(d(p_rr) / d(p_shortest)) − 1`.
    pub distance_increase_ratio: f64,
    /// Number of (ordered) pairs aggregated.
    pub pairs: usize,
    /// Pairs that could not be routed at all (the topology was partitioned
    /// between them) — excluded from the means, surfaced for the degraded-
    /// mode report instead of aborting the aggregation.
    pub stranded_pairs: usize,
}

impl RatioReport {
    /// Aggregate outcomes into the two ratios.
    ///
    /// Pairs with `src == dst`, an unreachable destination, or a zero-length
    /// shortest path (distinct PoPs co-located at the same coordinates, as
    /// happens between providers sharing a carrier hotel) carry no
    /// information — the paper's `1/N²` normalization includes trivial terms
    /// whose ratio is taken as 1; we normalize by the count of informative
    /// pairs instead, which only rescales both ratios by the same ≈1 factor.
    ///
    /// An aggregation with **zero** informative pairs no longer panics: it
    /// reports both ratios as 0.0 with `pairs == 0`, which callers (and the
    /// CLI) can distinguish and report as [`crate::Error::NoInformativePairs`].
    pub fn aggregate<'a>(outcomes: impl IntoIterator<Item = &'a PairOutcome>) -> RatioReport {
        RatioReport::aggregate_with_stranded(outcomes, 0)
    }

    /// [`aggregate`](Self::aggregate), additionally recording how many pairs
    /// were stranded by a partition (see
    /// [`Planner::pair_sweep`](crate::Planner::pair_sweep)).
    pub fn aggregate_with_stranded<'a>(
        outcomes: impl IntoIterator<Item = &'a PairOutcome>,
        stranded_pairs: usize,
    ) -> RatioReport {
        let mut risk_ratio_sum = 0.0;
        let mut dist_ratio_sum = 0.0;
        let mut pairs = 0usize;
        for o in outcomes {
            if o.src == o.dst || o.shortest.bit_risk_miles <= 0.0 || o.shortest.bit_miles <= 0.0 {
                continue;
            }
            risk_ratio_sum += o.risk_route.bit_risk_miles / o.shortest.bit_risk_miles;
            dist_ratio_sum += o.risk_route.bit_miles / o.shortest.bit_miles;
            pairs += 1;
        }
        if pairs == 0 {
            return RatioReport {
                risk_reduction_ratio: 0.0,
                distance_increase_ratio: 0.0,
                pairs: 0,
                stranded_pairs,
            };
        }
        RatioReport {
            risk_reduction_ratio: 1.0 - risk_ratio_sum / pairs as f64,
            distance_increase_ratio: dist_ratio_sum / pairs as f64 - 1.0,
            pairs,
            stranded_pairs,
        }
    }

    /// Whether the aggregation carried any information at all.
    pub fn is_informative(&self) -> bool {
        self.pairs > 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn path(nodes: Vec<usize>, miles: f64, risk: f64) -> RoutedPath {
        RoutedPath {
            nodes,
            bit_miles: miles,
            risk_miles: risk,
            bit_risk_miles: miles + risk,
        }
    }

    #[test]
    fn identical_routes_give_zero_ratios() {
        let o = PairOutcome {
            src: 0,
            dst: 1,
            risk_route: path(vec![0, 1], 100.0, 5.0),
            shortest: path(vec![0, 1], 100.0, 5.0),
        };
        let r = RatioReport::aggregate([&o]);
        assert!(r.risk_reduction_ratio.abs() < 1e-12);
        assert!(r.distance_increase_ratio.abs() < 1e-12);
        assert_eq!(r.pairs, 1);
    }

    #[test]
    fn textbook_twenty_percent_example() {
        // "a risk reduction ratio of 0.2 implies that using RiskRoute reduces
        // the bit-risk miles of a routing path by 20%" — and symmetric for
        // the distance increase ratio.
        let o = PairOutcome {
            src: 0,
            dst: 1,
            risk_route: path(vec![0, 2, 1], 120.0, 40.0), // 160 bit-risk
            shortest: path(vec![0, 1], 100.0, 100.0),     // 200 bit-risk
        };
        let r = RatioReport::aggregate([&o]);
        assert!((r.risk_reduction_ratio - 0.2).abs() < 1e-12);
        assert!((r.distance_increase_ratio - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aggregation_averages_pairs() {
        let a = PairOutcome {
            src: 0,
            dst: 1,
            risk_route: path(vec![0, 1], 80.0, 0.0),
            shortest: path(vec![0, 1], 100.0, 0.0),
        };
        let b = PairOutcome {
            src: 1,
            dst: 0,
            risk_route: path(vec![1, 0], 100.0, 0.0),
            shortest: path(vec![1, 0], 100.0, 0.0),
        };
        let r = RatioReport::aggregate([&a, &b]);
        assert!((r.risk_reduction_ratio - 0.1).abs() < 1e-12);
        assert_eq!(r.pairs, 2);
    }

    #[test]
    fn diagonal_pairs_are_skipped() {
        let trivial = PairOutcome {
            src: 2,
            dst: 2,
            risk_route: path(vec![2], 0.0, 0.0),
            shortest: path(vec![2], 0.0, 0.0),
        };
        let real = PairOutcome {
            src: 0,
            dst: 1,
            risk_route: path(vec![0, 1], 90.0, 0.0),
            shortest: path(vec![0, 1], 100.0, 0.0),
        };
        let r = RatioReport::aggregate([&trivial, &real]);
        assert_eq!(r.pairs, 1);
    }

    #[test]
    fn empty_aggregation_degrades_to_zero_ratios() {
        let r = RatioReport::aggregate([]);
        assert!(!r.is_informative());
        assert_eq!(r.pairs, 0);
        assert_eq!(r.risk_reduction_ratio, 0.0);
        assert_eq!(r.distance_increase_ratio, 0.0);
    }

    #[test]
    fn stranded_pairs_are_carried_on_the_report() {
        let real = PairOutcome {
            src: 0,
            dst: 1,
            risk_route: path(vec![0, 1], 90.0, 0.0),
            shortest: path(vec![0, 1], 100.0, 0.0),
        };
        let r = RatioReport::aggregate_with_stranded([&real], 3);
        assert_eq!(r.pairs, 1);
        assert_eq!(r.stranded_pairs, 3);
        assert!(r.is_informative());
    }
}
