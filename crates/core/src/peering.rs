//! Best new peering / multihoming egress selection (§6.3, Figure 11).
//!
//! "For each specified network, we define 'candidate peers' as the
//! collection of PoPs in other networks which are co-located with
//! infrastructure from the specified network, but for which there is no
//! previously known peering relationship. Then, the best candidate peer is
//! found such that the RiskRoute paths have the smallest lower-bound
//! bit-risk miles."
//!
//! Like the link-provisioning sweep, candidates are priced incrementally:
//! two SSSP trees per (source, destination) pair evaluate every candidate
//! peering's added hand-off edges in O(edges) each.

use crate::error::Error;
use crate::interdomain::InterdomainAnalysis;
use crate::metric::{NodeRisk, RiskWeights};
use riskroute_topology::colocation::{candidate_peers, CandidatePeer};
use riskroute_topology::{Network, PeeringGraph};

/// A scored candidate peering.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPeering {
    /// The would-be peer network.
    pub peer: String,
    /// Number of co-located PoP pairs the peering could be lit up at.
    pub handoff_count: usize,
    /// Total lower-bound bit-risk miles over the evaluation pairs with this
    /// peering added.
    pub total_bit_risk: f64,
}

/// Score every candidate peering of `own` and return them sorted best
/// (lowest total lower-bound bit-risk) first.
///
/// `sources`/`dests` are merged ids in `analysis` (§7 uses the regional
/// network's PoPs as sources and all regional PoPs as destinations).
/// Unreachable pairs contribute only when a candidate bridges them; pairs
/// no candidate reaches are skipped uniformly.
pub fn score_peerings(
    analysis: &InterdomainAnalysis,
    own: &Network,
    others: &[&Network],
    peering: &PeeringGraph,
    colocation_miles: f64,
    sources: &[usize],
    dests: &[usize],
) -> Vec<ScoredPeering> {
    let candidates: Vec<CandidatePeer> =
        candidate_peers(own, others.iter().copied(), peering, colocation_miles);
    if candidates.is_empty() {
        return Vec::new();
    }
    // Map every candidate's colocations to merged-id edges.
    let topo = analysis.topology();
    let planner = analysis.planner();
    let risk = planner.risk();
    let w = planner.weights();
    let edges_per_candidate: Vec<Vec<(usize, usize, f64)>> = candidates
        .iter()
        .map(|c| {
            c.colocations
                .iter()
                .filter_map(|colo| {
                    let a = topo.merged_id(own.name(), colo.own_pop)?;
                    let b = topo.merged_id(&c.network, colo.other_pop)?;
                    Some((a, b, colo.miles))
                })
                .collect()
        })
        .collect();

    let mut totals = vec![0.0_f64; candidates.len()];
    for &i in sources {
        for &j in dests {
            if i == j {
                continue;
            }
            let beta = planner.impact(i, j);
            let tree_i = planner.risk_tree(i, beta);
            let tree_j = planner.risk_tree(j, beta);
            let old = tree_i.dist(j);
            let rho = |v: usize| beta * risk.scaled(v, w);
            let rev = |x: usize| {
                let d = tree_j.dist(x);
                if d.is_finite() {
                    d + rho(j) - rho(x)
                } else {
                    f64::INFINITY
                }
            };
            for (c, edges) in edges_per_candidate.iter().enumerate() {
                let mut best = old;
                for &(a, b, miles) in edges {
                    let via_ab = tree_i.dist(a) + miles + rho(b) + rev(b);
                    let via_ba = tree_i.dist(b) + miles + rho(a) + rev(a);
                    best = best.min(via_ab).min(via_ba);
                }
                if best.is_finite() {
                    totals[c] += best;
                }
            }
        }
    }

    let mut scored: Vec<ScoredPeering> = candidates
        .iter()
        .zip(&totals)
        .map(|(c, &total_bit_risk)| ScoredPeering {
            peer: c.network.clone(),
            handoff_count: c.colocations.len(),
            total_bit_risk,
        })
        .collect();
    scored.sort_by(|x, y| {
        x.total_bit_risk
            .total_cmp(&y.total_bit_risk)
            .then_with(|| x.peer.cmp(&y.peer))
    });
    scored
}

/// The single best new peering for `own`, or `None` when no candidate
/// exists.
#[allow(clippy::too_many_arguments)]
pub fn best_new_peering(
    analysis: &InterdomainAnalysis,
    own: &Network,
    others: &[&Network],
    peering: &PeeringGraph,
    colocation_miles: f64,
    sources: &[usize],
    dests: &[usize],
) -> Option<ScoredPeering> {
    score_peerings(
        analysis,
        own,
        others,
        peering,
        colocation_miles,
        sources,
        dests,
    )
    .into_iter()
    .next()
}

/// Convenience used by tests and the harness: risk/share-aware exact
/// re-evaluation of one candidate peering by rebuilding the merged topology
/// with the peering added.
///
/// # Errors
/// [`Error::Topology`] when a source PoP id is out of range for `own`;
/// [`Error::UnknownNetwork`] when `own` or a destination network is not in
/// the merge.
#[allow(clippy::too_many_arguments)]
pub fn exact_total_with_peering(
    networks: &[&Network],
    peering: &PeeringGraph,
    colocation_miles: f64,
    own: &str,
    peer: &str,
    weights: RiskWeights,
    historical: &riskroute_hazard::HistoricalRisk,
    population: &riskroute_population::PopulationModel,
    sources_in_own: &[usize],
    dest_networks: &[&str],
) -> Result<f64, Error> {
    let mut augmented = peering.clone();
    augmented.add_peering(own, peer);
    let topo =
        crate::interdomain::InterdomainTopology::merge(networks, &augmented, colocation_miles);
    let shares = riskroute_population::PopShares::assign(population, topo.merged(), None);
    let risk = NodeRisk::from_historical(topo.merged(), historical);
    let planner = crate::intradomain::Planner::new(topo.merged(), risk, shares, weights);
    let analysis = InterdomainAnalysis::from_parts(topo, planner);
    let own_count = analysis
        .topology()
        .pops_of(own)
        .ok_or_else(|| Error::UnknownNetwork(own.to_string()))?
        .len();
    let sources: Vec<usize> = sources_in_own
        .iter()
        .map(|&p| {
            analysis.topology().merged_id(own, p).ok_or(Error::Topology(
                riskroute_topology::TopologyError::PopOutOfRange {
                    pop: p,
                    count: own_count,
                },
            ))
        })
        .collect::<Result<_, _>>()?;
    let mut dests = Vec::new();
    for d in dest_networks {
        dests.extend(
            analysis
                .topology()
                .pops_of(d)
                .ok_or_else(|| Error::UnknownNetwork((*d).to_string()))?,
        );
    }
    let mut total = 0.0;
    for &i in &sources {
        for &j in &dests {
            if i == j {
                continue;
            }
            if let Some(p) = analysis.planner().risk_route(i, j) {
                total += p.bit_risk_miles;
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::interdomain::InterdomainTopology;
    use crate::intradomain::Planner;
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::colocation::DEFAULT_COLOCATION_MILES;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// Regional R (Dallas + Austin), Tier-1 T1 (Dallas + Memphis, risky
    /// Dallas hand-off), Tier-1 T2 (Dallas + Memphis, safe). R peers with
    /// nobody yet; both tier-1s are candidates; T2 should win because its
    /// Dallas PoP carries no risk.
    fn setup() -> (Network, Network, Network, PeeringGraph) {
        let r = Network::new(
            "R",
            NetworkKind::Regional,
            vec![pop("Dallas", 32.78, -96.80), pop("Austin", 30.27, -97.74)],
            vec![(0, 1)],
        )
        .unwrap();
        let t1 = Network::new(
            "T1",
            NetworkKind::Tier1,
            vec![
                pop("Dallas-1", 32.80, -96.82),
                pop("Memphis-1", 35.15, -90.05),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let t2 = Network::new(
            "T2",
            NetworkKind::Tier1,
            vec![
                pop("Dallas-2", 32.76, -96.78),
                pop("Memphis-2", 35.16, -90.06),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let mut peering = PeeringGraph::new();
        peering.add_network("R");
        peering.add_peering("T1", "T2");
        (r, t1, t2, peering)
    }

    fn analysis_with_risky_t1(
        r: &Network,
        t1: &Network,
        t2: &Network,
        peering: &PeeringGraph,
    ) -> InterdomainAnalysis {
        let topo = InterdomainTopology::merge(&[r, t1, t2], peering, DEFAULT_COLOCATION_MILES);
        let n = topo.merged().pop_count();
        let mut hist = vec![0.0; n];
        // T1's PoPs are risky.
        for p in topo.pops_of("T1").unwrap() {
            hist[p] = 2e-3;
        }
        let planner = Planner::new(
            topo.merged(),
            NodeRisk::new(hist, vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::historical_only(1e5),
        );
        InterdomainAnalysis::from_parts(topo, planner)
    }

    #[test]
    fn prefers_the_safe_candidate() {
        let (r, t1, t2, peering) = setup();
        let analysis = analysis_with_risky_t1(&r, &t1, &t2, &peering);
        let sources = analysis.topology().pops_of("R").unwrap();
        // Destinations: the tier-1 Memphis PoPs (reachable only via a new
        // peering).
        let dests = vec![
            analysis.topology().merged_id("T1", 1).unwrap(),
            analysis.topology().merged_id("T2", 1).unwrap(),
        ];
        let scored = score_peerings(
            &analysis,
            &r,
            &[&t1, &t2],
            &peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        );
        assert_eq!(scored.len(), 2, "both tier-1s are candidates");
        assert_eq!(scored[0].peer, "T2", "the risk-free peer must win");
        assert!(scored[0].total_bit_risk < scored[1].total_bit_risk);
        let best = best_new_peering(
            &analysis,
            &r,
            &[&t1, &t2],
            &peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        )
        .unwrap();
        assert_eq!(best.peer, "T2");
    }

    #[test]
    fn existing_peers_are_not_candidates() {
        let (r, t1, t2, mut peering) = setup();
        peering.add_peering("R", "T2");
        let analysis = analysis_with_risky_t1(&r, &t1, &t2, &peering);
        let sources = analysis.topology().pops_of("R").unwrap();
        let dests = vec![analysis.topology().merged_id("T1", 1).unwrap()];
        let scored = score_peerings(
            &analysis,
            &r,
            &[&t1, &t2],
            &peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        );
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].peer, "T1");
    }

    #[test]
    fn no_colocated_networks_no_candidates() {
        let (r, _, _, peering) = setup();
        let faraway = Network::new(
            "Far",
            NetworkKind::Tier1,
            vec![pop("Seattle", 47.61, -122.33)],
            vec![],
        )
        .unwrap();
        let topo = InterdomainTopology::merge(&[&r, &faraway], &peering, DEFAULT_COLOCATION_MILES);
        let n = topo.merged().pop_count();
        let planner = Planner::new(
            topo.merged(),
            NodeRisk::new(vec![0.0; n], vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::PAPER,
        );
        let analysis = InterdomainAnalysis::from_parts(topo, planner);
        let sources = analysis.topology().pops_of("R").unwrap();
        let scored = score_peerings(
            &analysis,
            &r,
            &[&faraway],
            &peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &[0],
        );
        assert!(scored.is_empty());
    }

    #[test]
    fn incremental_scores_match_exact_rebuild_ordering() {
        let (r, t1, t2, peering) = setup();
        let analysis = analysis_with_risky_t1(&r, &t1, &t2, &peering);
        let sources_own: Vec<usize> = (0..r.pop_count()).collect();
        let sources = analysis.topology().pops_of("R").unwrap();
        let dests = vec![
            analysis.topology().merged_id("T1", 1).unwrap(),
            analysis.topology().merged_id("T2", 1).unwrap(),
        ];
        let scored = score_peerings(
            &analysis,
            &r,
            &[&t1, &t2],
            &peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        );
        // Exact rebuild comparison needs matching share/risk models; here we
        // verify the *ordering* is stable against an exact rebuild with
        // uniform shares (handled by the incremental sweep's own model).
        assert_eq!(scored[0].peer, "T2");
        let _ = sources_own;
    }
}
