//! Link-corridor risk analysis.
//!
//! Eq. 1 charges outage risk at PoPs, and the paper argues that is the
//! right granularity for disaster threats (§3). But the physical fiber
//! *between* PoPs crosses hazard geography too — a link from Dallas to
//! Atlanta runs the length of Dixie Alley even though both endpoints are
//! comparatively safe. This module scores every link by the historical
//! risk integrated along its line-of-sight corridor, giving operators the
//! shared-risk-link-group-style view that complements the PoP-centric
//! metric (and feeds SRLG grouping of links that traverse the same hazard
//! region).

use riskroute_geo::distance::sample_great_circle;
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::Network;

/// Corridor sampling density: one sample per this many miles of link
/// length (at least 2 samples per link).
pub const SAMPLE_SPACING_MILES: f64 = 25.0;

/// One link's corridor risk profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorRisk {
    /// Link index within [`Network::links`].
    pub link: usize,
    /// Endpoint PoP ids.
    pub endpoints: (usize, usize),
    /// Link length, miles.
    pub miles: f64,
    /// Mean `o_h` along the corridor.
    pub mean_risk: f64,
    /// Peak `o_h` along the corridor.
    pub peak_risk: f64,
    /// `mean_risk × miles` — the corridor's risk-mile integral; the ranking
    /// key (long links through hot geography first).
    pub risk_miles: f64,
}

/// Score every link of `network` against `hazards`, sorted by descending
/// risk-mile integral.
pub fn corridor_risks(network: &Network, hazards: &HistoricalRisk) -> Vec<CorridorRisk> {
    let mut out: Vec<CorridorRisk> = network
        .links()
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            let samples = ((l.miles / SAMPLE_SPACING_MILES).ceil() as usize).max(2);
            let points = sample_great_circle(network.location(l.a), network.location(l.b), samples);
            let risks: Vec<f64> = points.iter().map(|&p| hazards.risk(p)).collect();
            let mean_risk = risks.iter().sum::<f64>() / risks.len() as f64;
            let peak_risk = risks.iter().copied().fold(0.0_f64, f64::max);
            CorridorRisk {
                link: idx,
                endpoints: (l.a, l.b),
                miles: l.miles,
                mean_risk,
                peak_risk,
                risk_miles: mean_risk * l.miles,
            }
        })
        .collect();
    out.sort_by(|a, b| b.risk_miles.total_cmp(&a.risk_miles).then(a.link.cmp(&b.link)));
    out
}

/// Group links into shared-risk link groups: links whose corridor *peak*
/// exceeds `threshold` and whose peak locations fall within
/// `group_radius_miles` of each other share fate under a localized
/// disaster and land in one group.
///
/// Returns groups of link indices, largest group first; links below the
/// threshold are omitted.
pub fn shared_risk_link_groups(
    network: &Network,
    hazards: &HistoricalRisk,
    threshold: f64,
    group_radius_miles: f64,
) -> Vec<Vec<usize>> {
    assert!(
        group_radius_miles.is_finite() && group_radius_miles > 0.0,
        "group radius must be positive"
    );
    // Locate each qualifying link's hottest sample point.
    let mut hot: Vec<(usize, riskroute_geo::GeoPoint)> = Vec::new();
    for (idx, l) in network.links().iter().enumerate() {
        let samples = ((l.miles / SAMPLE_SPACING_MILES).ceil() as usize).max(2);
        let points = sample_great_circle(network.location(l.a), network.location(l.b), samples);
        if let Some((p, r)) = points
            .iter()
            .map(|&p| (p, hazards.risk(p)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        {
            if r > threshold {
                hot.push((idx, p));
            }
        }
    }
    // Union links whose hot spots are near each other.
    let mut uf = riskroute_graph::unionfind::UnionFind::new(hot.len());
    for i in 0..hot.len() {
        for j in (i + 1)..hot.len() {
            let d = riskroute_geo::distance::great_circle_miles(hot[i].1, hot[j].1);
            if d <= group_radius_miles {
                uf.union(i, j);
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for (i, &(link, _)) in hot.iter().enumerate() {
        groups.entry(uf.find(i)).or_default().push(link);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// Two links: one crossing the Gulf coast, one across the northern
    /// plains.
    fn network() -> Network {
        Network::new(
            "corridors",
            NetworkKind::Regional,
            vec![
                pop("Houston", 29.76, -95.37),
                pop("Jacksonville", 30.33, -81.66), // gulf-hugging link
                pop("Billings", 45.78, -108.50),
                pop("Fargo", 46.88, -96.79), // northern link
            ],
            vec![(0, 1), (2, 3)],
        )
        .unwrap()
    }

    fn hazards() -> HistoricalRisk {
        HistoricalRisk::standard(42, Some(600))
    }

    #[test]
    fn gulf_corridor_outranks_northern_corridor() {
        let risks = corridor_risks(&network(), &hazards());
        assert_eq!(risks.len(), 2);
        assert_eq!(risks[0].endpoints, (0, 1), "gulf link is riskier");
        assert!(risks[0].mean_risk > 2.0 * risks[1].mean_risk);
        for r in &risks {
            assert!(r.peak_risk >= r.mean_risk);
            assert!((r.risk_miles - r.mean_risk * r.miles).abs() < 1e-12);
        }
    }

    #[test]
    fn corridor_risk_sees_interior_hazard_the_endpoints_miss() {
        // A link skirting the Gulf between two inland-ish endpoints still
        // picks up coastal risk along the way.
        let h = hazards();
        let net = network();
        let risks = corridor_risks(&net, &h);
        let gulf = &risks[0];
        let endpoint_mean = (h.risk(net.location(0)) + h.risk(net.location(1))) / 2.0;
        assert!(
            gulf.peak_risk > endpoint_mean,
            "peak {} vs endpoint mean {}",
            gulf.peak_risk,
            endpoint_mean
        );
    }

    #[test]
    fn srlg_groups_colocated_hot_links() {
        // Three parallel Gulf-coast links share fate; the northern link
        // qualifies for no group.
        let net = Network::new(
            "srlg",
            NetworkKind::Regional,
            vec![
                pop("Houston", 29.76, -95.37),
                pop("New Orleans", 29.95, -90.07),
                pop("Baton Rouge", 30.45, -91.15),
                pop("Mobile", 30.69, -88.04),
                pop("Billings", 45.78, -108.50),
                pop("Fargo", 46.88, -96.79),
            ],
            vec![(0, 1), (0, 2), (1, 3), (4, 5)],
        )
        .unwrap();
        let h = hazards();
        let groups = shared_risk_link_groups(&net, &h, 0.2, 300.0);
        assert!(!groups.is_empty());
        let biggest = &groups[0];
        assert!(biggest.len() >= 2, "gulf links group together: {groups:?}");
        assert!(
            !groups.iter().flatten().any(|&l| l == 3),
            "the northern link must not qualify"
        );
    }

    #[test]
    fn srlg_threshold_above_everything_gives_no_groups() {
        let groups = shared_risk_link_groups(&network(), &hazards(), 1e9, 300.0);
        assert!(groups.is_empty());
    }

    #[test]
    #[should_panic(expected = "group radius must be positive")]
    fn bad_radius_panics() {
        let _ = shared_risk_link_groups(&network(), &hazards(), 0.1, 0.0);
    }
}
