//! Failure injection and criticality analysis.
//!
//! The paper motivates RiskRoute with the outages disasters actually cause
//! (§1–2: Katrina, the Japan earthquake, Sandy). This module closes the
//! loop: *impose* a storm's damage on a topology and measure what breaks —
//! and rank each PoP by how much the network depends on it versus how much
//! risk it sits under.

use crate::metric::NodeRisk;
use riskroute_forecast::StormSwath;
use riskroute_graph::centrality::{articulation_points, betweenness};
use riskroute_graph::components::connected_components;
use riskroute_graph::Graph;
use riskroute_population::PopShares;
use riskroute_topology::{Network, PopId};

/// Outcome of failing every PoP a storm's hurricane-force winds touch.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// PoPs destroyed (inside hurricane-force winds at any advisory).
    pub failed_pops: Vec<PopId>,
    /// Links lost with them.
    pub lost_links: usize,
    /// Connected components among the surviving PoPs.
    pub survivor_components: usize,
    /// Ordered survivor pairs that can no longer reach each other.
    pub disconnected_pairs: usize,
    /// Population share served by failed PoPs.
    pub failed_population_share: f64,
    /// Population share served by survivors cut off from the largest
    /// surviving component.
    pub isolated_population_share: f64,
}

impl FailureReport {
    /// Total share of the population losing service or connectivity.
    pub fn total_affected_share(&self) -> f64 {
        self.failed_population_share + self.isolated_population_share
    }
}

/// Fail every PoP of `network` that `swath` ever places under
/// hurricane-force winds, and measure the damage.
///
/// `shares` must cover the network's PoPs (§5.1 population assignment).
///
/// # Panics
/// Panics when `shares` does not match the network size.
pub fn storm_failure(network: &Network, shares: &PopShares, swath: &StormSwath) -> FailureReport {
    assert_eq!(
        shares.shares().len(),
        network.pop_count(),
        "shares must cover every PoP"
    );
    let failed: Vec<PopId> = (0..network.pop_count())
        .filter(|&p| swath.ever_in_hurricane_winds(network.location(p)))
        .collect();
    let is_failed = {
        let mut v = vec![false; network.pop_count()];
        for &p in &failed {
            v[p] = true;
        }
        v
    };

    // Survivor subgraph with original indices compacted.
    let survivors: Vec<PopId> = (0..network.pop_count())
        .filter(|&p| !is_failed[p])
        .collect();
    let index_of: std::collections::HashMap<PopId, usize> =
        survivors.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut g = Graph::with_nodes(survivors.len());
    let mut lost_links = 0;
    for l in network.links() {
        match (index_of.get(&l.a), index_of.get(&l.b)) {
            (Some(&a), Some(&b)) => {
                // Compacted survivor indices are in range and links of a
                // valid network carry valid lengths.
                if g.add_edge(a, b, l.miles).is_err() {
                    debug_assert!(false, "surviving link ({a},{b}) rejected");
                    lost_links += 1;
                }
            }
            _ => lost_links += 1,
        }
    }

    let comps = connected_components(&g);
    let survivor_components = comps.len();
    let disconnected_pairs = {
        let total = survivors.len() * survivors.len().saturating_sub(1);
        let connected: usize = comps.iter().map(|c| c.len() * (c.len() - 1)).sum();
        total - connected
    };
    let failed_population_share: f64 = failed.iter().map(|&p| shares.share(p)).sum();
    let isolated_population_share = if let Some(largest) = comps.iter().max_by_key(|c| c.len()) {
        let in_largest: std::collections::HashSet<usize> = largest.iter().copied().collect();
        survivors
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_largest.contains(i))
            .map(|(_, &p)| shares.share(p))
            .sum()
    } else {
        0.0
    };

    FailureReport {
        failed_pops: failed,
        lost_links,
        survivor_components,
        disconnected_pairs,
        failed_population_share,
        isolated_population_share,
    }
}

/// One PoP's criticality profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PopCriticality {
    /// The PoP.
    pub pop: PopId,
    /// PoP name.
    pub name: String,
    /// Weighted betweenness over the bit-mile graph (traffic dependence).
    pub betweenness: f64,
    /// Whether removing this PoP disconnects the network.
    pub articulation: bool,
    /// Historical outage risk `o_h` at the PoP.
    pub historical_risk: f64,
    /// `betweenness × o_h` — dependence times exposure; the PoPs to worry
    /// about first.
    pub exposure: f64,
}

/// Rank every PoP by risk-weighted criticality, highest exposure first.
pub fn criticality_ranking(network: &Network, risk: &NodeRisk) -> Vec<PopCriticality> {
    assert_eq!(risk.len(), network.pop_count(), "risk must cover every PoP");
    let g = network.distance_graph();
    let bc = betweenness(&g);
    let aps: std::collections::HashSet<PopId> = articulation_points(&g).into_iter().collect();
    let mut out: Vec<PopCriticality> = (0..network.pop_count())
        .map(|p| PopCriticality {
            pop: p,
            name: network.pops()[p].name.clone(),
            betweenness: bc[p],
            articulation: aps.contains(&p),
            historical_risk: risk.historical(p),
            exposure: bc[p] * risk.historical(p),
        })
        .collect();
    out.sort_by(|a, b| b.exposure.total_cmp(&a.exposure).then(a.pop.cmp(&b.pop)));
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_forecast::{advisories_for, ForecastRisk, Storm};
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// Houston – New Orleans – Atlanta chain with a northern bypass.
    fn gulf_network() -> Network {
        Network::new(
            "gulf",
            NetworkKind::Regional,
            vec![
                pop("Houston", 29.76, -95.37),
                pop("New Orleans", 29.95, -90.07),
                pop("Atlanta", 33.75, -84.39),
                pop("Little Rock", 34.75, -92.29),
            ],
            vec![(0, 1), (1, 2), (0, 3), (3, 2)],
        )
        .unwrap()
    }

    fn katrina_swath() -> StormSwath {
        StormSwath::new(
            advisories_for(Storm::Katrina)
                .iter()
                .map(ForecastRisk::from_advisory)
                .collect(),
        )
    }

    #[test]
    fn katrina_fails_new_orleans_but_bypass_survives() {
        let net = gulf_network();
        let shares = PopShares::from_shares(vec![0.25; 4]);
        let report = storm_failure(&net, &shares, &katrina_swath());
        assert!(report.failed_pops.contains(&1), "New Orleans must fail");
        assert!(!report.failed_pops.contains(&3), "Little Rock survives");
        // The northern bypass keeps the survivors connected.
        assert_eq!(report.survivor_components, 1);
        assert_eq!(report.disconnected_pairs, 0);
        assert!(
            (report.failed_population_share - 0.25 * report.failed_pops.len() as f64).abs() < 1e-12
        );
        assert_eq!(report.isolated_population_share, 0.0);
        assert!(report.lost_links >= 2, "NO's two links go down");
    }

    #[test]
    fn chain_without_bypass_partitions() {
        let net = Network::new(
            "chain",
            NetworkKind::Regional,
            vec![
                pop("Houston", 29.76, -95.37),
                pop("New Orleans", 29.95, -90.07),
                pop("Atlanta", 33.75, -84.39),
            ],
            vec![(0, 1), (1, 2)],
        )
        .unwrap();
        let shares = PopShares::from_shares(vec![0.5, 0.2, 0.3]);
        let report = storm_failure(&net, &shares, &katrina_swath());
        assert_eq!(report.failed_pops, vec![1]);
        assert_eq!(report.survivor_components, 2);
        assert_eq!(report.disconnected_pairs, 2, "Houston and Atlanta split");
        assert!((report.failed_population_share - 0.2).abs() < 1e-12);
        // Atlanta (0.3) is cut off from the larger Houston component? Both
        // components have one node; the largest is chosen deterministically —
        // isolated share is the smaller of the two shares' component... both
        // size 1, max_by_key picks the later one; assert the sum instead.
        assert!(
            (report.total_affected_share() - (0.2 + report.isolated_population_share)).abs()
                < 1e-12
        );
        assert!(report.isolated_population_share > 0.0);
    }

    #[test]
    fn storm_missing_the_network_breaks_nothing() {
        let net = Network::new(
            "pnw",
            NetworkKind::Regional,
            vec![
                pop("Seattle", 47.61, -122.33),
                pop("Portland", 45.52, -122.68),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let shares = PopShares::from_shares(vec![0.6, 0.4]);
        let report = storm_failure(&net, &shares, &katrina_swath());
        assert!(report.failed_pops.is_empty());
        assert_eq!(report.lost_links, 0);
        assert_eq!(report.survivor_components, 1);
        assert_eq!(report.total_affected_share(), 0.0);
    }

    #[test]
    fn criticality_ranks_risky_transit_first() {
        let net = gulf_network();
        // New Orleans (PoP 1) risky; Little Rock (PoP 3) safe.
        let risk = NodeRisk::new(vec![0.01, 0.3, 0.02, 0.01], vec![0.0; 4]);
        let ranking = criticality_ranking(&net, &risk);
        assert_eq!(ranking[0].pop, 1, "risky transit PoP tops the ranking");
        assert!(ranking[0].exposure > ranking[1].exposure);
        // The diamond has no articulation points.
        assert!(ranking.iter().all(|c| !c.articulation));
        // Ranking is a permutation of all PoPs.
        let mut pops: Vec<PopId> = ranking.iter().map(|c| c.pop).collect();
        pops.sort_unstable();
        assert_eq!(pops, vec![0, 1, 2, 3]);
    }

    #[test]
    fn articulation_pop_is_flagged() {
        let net = Network::new(
            "chain",
            NetworkKind::Regional,
            vec![
                pop("A", 30.0, -95.0),
                pop("B", 32.0, -92.0),
                pop("C", 34.0, -89.0),
            ],
            vec![(0, 1), (1, 2)],
        )
        .unwrap();
        let risk = NodeRisk::new(vec![0.0; 3], vec![0.0; 3]);
        let ranking = criticality_ranking(&net, &risk);
        let b = ranking.iter().find(|c| c.pop == 1).unwrap();
        assert!(b.articulation);
        assert!(b.betweenness > 0.0);
    }

    #[test]
    #[should_panic(expected = "shares must cover")]
    fn mismatched_shares_panic() {
        let net = gulf_network();
        let shares = PopShares::from_shares(vec![1.0]);
        let _ = storm_failure(&net, &shares, &katrina_swath());
    }
}
