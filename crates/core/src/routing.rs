//! Directed shortest-path machinery over the bit-risk metric.
//!
//! Eq. 1 charges risk at the PoP a hop *enters*, so the effective edge
//! weight is directional even though the physical links are not:
//! `w(u→v) = d(u,v) + β·ρ(v)` where `ρ(v)` is the λ-combined risk of v.
//! This module runs Dijkstra directly over that implicit directed weighting
//! (bit-risk weights are non-negative by construction, so Dijkstra is exact
//! for Eq. 3).

use crate::error::Error;
use std::collections::BinaryHeap;

/// Adjacency built once per topology: `adj[u] = [(v, miles), …]` for both
/// directions of every link.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    adj: Vec<Vec<(usize, f64)>>,
}

impl Adjacency {
    /// Build from an undirected link list over `n` nodes.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or invalid lengths.
    pub fn from_links(n: usize, links: impl IntoIterator<Item = (usize, usize, f64)>) -> Self {
        let mut adj = vec![Vec::new(); n];
        for (a, b, miles) in links {
            assert!(a < n && b < n, "link endpoint out of range");
            assert!(
                miles.is_finite() && miles >= 0.0,
                "link length must be finite and non-negative"
            );
            adj[a].push((b, miles));
            adj[b].push((a, miles));
        }
        Adjacency { adj }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of `u` with link miles.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Order-preserving masked copy: directed entries `(u, v)` for which
    /// `keep(u, v)` returns `false` are dropped; every surviving entry
    /// keeps its position relative to the others. Because relaxation order
    /// follows per-node entry order, a masked adjacency relaxes kept edges
    /// in exactly the base order — the property scenario forks rely on for
    /// bit-identical tie-breaks.
    pub(crate) fn masked(&self, keep: impl Fn(usize, usize) -> bool) -> Adjacency {
        Adjacency {
            adj: self
                .adj
                .iter()
                .enumerate()
                .map(|(u, nb)| nb.iter().copied().filter(|&(v, _)| keep(u, v)).collect())
                .collect(),
        }
    }
}

/// A routed path with its metric decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedPath {
    /// PoP sequence from source to destination.
    pub nodes: Vec<usize>,
    /// Total geographic distance (bit-miles).
    pub bit_miles: f64,
    /// Total β-scaled risk charged along the path.
    pub risk_miles: f64,
    /// `bit_miles + risk_miles` — the bit-risk miles of Eq. 1.
    pub bit_risk_miles: f64,
}

/// Sentinel in the packed predecessor array: "no predecessor" (the source
/// itself, or an unreachable node).
pub(crate) const NO_PRED: u32 = u32::MAX;

/// A single-source shortest-path tree under a directed node-entry weight.
///
/// Predecessors are packed as `u32` (with [`NO_PRED`] as the sentinel) so a
/// cached tree costs 12 bytes per node instead of 24 — the route-tree cache
/// in [`crate::engine`] holds tens of thousands of these.
#[derive(Debug, Clone)]
pub struct RiskTree {
    source: usize,
    dist: Vec<f64>,
    pred: Vec<u32>,
    /// β-independent ρ-sums down the tree (`rho_sum[t] = Σ ρ(v)` over the
    /// path source→t, source excluded). Only populated for β = 0 trees,
    /// where one distance tree serves every pair metric; empty otherwise.
    rho_sum: Vec<f64>,
}

impl RiskTree {
    /// Assemble a tree from raw engine output.
    pub(crate) fn from_parts(
        source: usize,
        dist: Vec<f64>,
        pred: Vec<u32>,
        rho_sum: Vec<f64>,
    ) -> Self {
        RiskTree {
            source,
            dist,
            pred,
            rho_sum,
        }
    }

    /// The source node.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Bit-risk distance to `t` (`f64::INFINITY` when unreachable).
    pub fn dist(&self, t: usize) -> f64 {
        self.dist[t]
    }

    /// Whether `t` is reachable.
    pub fn reachable(&self, t: usize) -> bool {
        self.dist[t].is_finite()
    }

    /// Σ ρ(v) along the tree path source→t (source excluded). Valid only on
    /// β = 0 trees, for reachable `t`.
    pub(crate) fn path_rho_sum(&self, t: usize) -> f64 {
        debug_assert!(
            !self.rho_sum.is_empty(),
            "path_rho_sum queried on a tree built without ρ-sums"
        );
        self.rho_sum[t]
    }

    /// The raw distance array (scenario-fork tree projection).
    pub(crate) fn dist_slice(&self) -> &[f64] {
        &self.dist
    }

    /// The raw packed predecessor array ([`NO_PRED`] sentinel; scenario-fork
    /// tree projection validates pred edges against a failure delta).
    pub(crate) fn pred_slice(&self) -> &[u32] {
        &self.pred
    }

    /// The raw ρ-sum channel (empty unless this is a β = 0 tree).
    pub(crate) fn rho_sum_slice(&self) -> &[f64] {
        &self.rho_sum
    }

    /// Node sequence source→t, or `None` when unreachable.
    pub fn path_to(&self, t: usize) -> Option<Vec<usize>> {
        if !self.reachable(t) {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while self.pred[cur] != NO_PRED {
            let p = self.pred[cur] as usize;
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

// The frontier entry lives in `riskroute-graph` now so every shortest-path
// call site in the workspace shares one comparator (cost via `total_cmp`,
// lowest-node-index tie-break) — bit-identical to the struct this module
// used to define.
pub(crate) use riskroute_graph::queue::CostEntry as Entry;

/// Dijkstra from `source` with edge weight
/// `w(u→v) = miles(u,v) + entry_cost(v)`.
///
/// `entry_cost(v)` is the β-scaled risk charged for entering PoP v.
/// Degraded-mode contract: a node whose entry cost is non-finite or
/// negative is treated as *unroutable* — no path may enter it, so queries
/// through it report unreachable instead of aborting the whole sweep.
///
/// # Panics
/// Panics when `source` is out of range.
pub fn risk_sssp(adj: &Adjacency, source: usize, entry_cost: impl Fn(usize) -> f64) -> RiskTree {
    let n = adj.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    assert!(n < NO_PRED as usize, "node count exceeds the packed-pred limit");
    let costs: Vec<f64> = (0..n)
        .map(|v| {
            let c = entry_cost(v);
            if c.is_finite() && c >= 0.0 {
                c
            } else {
                f64::INFINITY
            }
        })
        .collect();

    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<u32> = vec![NO_PRED; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        node: source,
    });
    // Hot loop: count into plain locals, publish once at the end — the
    // disabled-mode overhead stays a single branch.
    let mut pops: u64 = 0;
    let mut relaxations: u64 = 0;
    let mut heap_peak: usize = heap.len();
    while let Some(Entry { cost, node }) = heap.pop() {
        pops += 1;
        if settled[node] {
            continue;
        }
        settled[node] = true;
        for &(v, miles) in adj.neighbors(node) {
            if settled[v] {
                continue;
            }
            let next = cost + miles + costs[v];
            if next < dist[v] {
                dist[v] = next;
                pred[v] = node as u32;
                relaxations += 1;
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
                heap_peak = heap_peak.max(heap.len());
            }
        }
    }
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("risk_sssp_runs", 1);
        riskroute_obs::counter_add("risk_sssp_pops", pops);
        riskroute_obs::counter_add("risk_sssp_relaxations", relaxations);
        riskroute_obs::gauge_max("risk_sssp_heap_peak", heap_peak as f64);
    }
    RiskTree::from_parts(source, dist, pred, Vec::new())
}

/// Evaluate a node sequence under the metric, decomposing bit-miles and
/// risk-miles. The source node's entry cost is never charged (Eq. 1 sums
/// from p₂).
///
/// # Errors
/// [`Error::NotAdjacent`] when consecutive nodes share no link.
///
/// # Panics
/// Panics when the path is empty.
pub fn evaluate_path(
    adj: &Adjacency,
    nodes: &[usize],
    entry_cost: impl Fn(usize) -> f64,
) -> Result<RoutedPath, Error> {
    assert!(!nodes.is_empty(), "cannot evaluate an empty path");
    let mut bit_miles = 0.0;
    let mut risk_miles = 0.0;
    for w in nodes.windows(2) {
        let (u, v) = (w[0], w[1]);
        let miles = adj
            .neighbors(u)
            .iter()
            .filter(|&&(n, _)| n == v)
            .map(|&(_, m)| m)
            .min_by(f64::total_cmp)
            .ok_or(Error::NotAdjacent { u, v })?;
        bit_miles += miles;
        risk_miles += entry_cost(v);
    }
    Ok(RoutedPath {
        nodes: nodes.to_vec(),
        bit_miles,
        risk_miles,
        bit_risk_miles: bit_miles + risk_miles,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// Square with a risky top corner:
    ///
    /// ```text
    ///   0 --10-- 1(risk 100)
    ///   |         |
    ///  10        10
    ///   |         |
    ///   3 --10-- 2
    /// ```
    fn square() -> Adjacency {
        Adjacency::from_links(
            4,
            vec![(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (3, 0, 10.0)],
        )
    }

    fn risky_node_1(v: usize) -> f64 {
        if v == 1 {
            100.0
        } else {
            0.0
        }
    }

    #[test]
    fn routes_around_risky_node() {
        let adj = square();
        let tree = risk_sssp(&adj, 0, risky_node_1);
        // 0→2 via 3 costs 20; via 1 costs 10+100+10 = 120.
        assert_eq!(tree.dist(2), 20.0);
        assert_eq!(tree.path_to(2), Some(vec![0, 3, 2]));
    }

    #[test]
    fn destination_risk_is_charged() {
        let adj = square();
        let tree = risk_sssp(&adj, 0, risky_node_1);
        // Entering node 1 costs its risk no matter the approach: min(10, 30)
        // + 100.
        assert_eq!(tree.dist(1), 110.0);
    }

    #[test]
    fn source_risk_is_never_charged() {
        let adj = square();
        let tree = risk_sssp(&adj, 1, risky_node_1);
        assert_eq!(tree.dist(1), 0.0);
        assert_eq!(tree.dist(0), 10.0);
        assert_eq!(tree.dist(2), 10.0);
    }

    #[test]
    fn zero_risk_reduces_to_distance_dijkstra() {
        let adj = square();
        let tree = risk_sssp(&adj, 0, |_| 0.0);
        assert_eq!(tree.dist(2), 20.0);
        assert_eq!(tree.dist(1), 10.0);
    }

    #[test]
    fn unreachable_nodes() {
        let adj = Adjacency::from_links(3, vec![(0, 1, 5.0)]);
        let tree = risk_sssp(&adj, 0, |_| 0.0);
        assert!(!tree.reachable(2));
        assert_eq!(tree.path_to(2), None);
        assert_eq!(tree.dist(2), f64::INFINITY);
    }

    #[test]
    fn evaluate_path_decomposes_metric() {
        let adj = square();
        let p = evaluate_path(&adj, &[0, 1, 2], risky_node_1).unwrap();
        assert_eq!(p.bit_miles, 20.0);
        assert_eq!(p.risk_miles, 100.0);
        assert_eq!(p.bit_risk_miles, 120.0);
        assert_eq!(p.nodes, vec![0, 1, 2]);
    }

    #[test]
    fn evaluate_trivial_path() {
        let adj = square();
        let p = evaluate_path(&adj, &[2], risky_node_1).unwrap();
        assert_eq!(p.bit_risk_miles, 0.0);
    }

    #[test]
    fn evaluate_matches_tree_distance() {
        let adj = square();
        let tree = risk_sssp(&adj, 0, risky_node_1);
        for t in 0..4 {
            let path = tree.path_to(t).unwrap();
            let eval = evaluate_path(&adj, &path, risky_node_1).unwrap();
            assert!((eval.bit_risk_miles - tree.dist(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluate_rejects_non_path_as_value() {
        let adj = square();
        let err = evaluate_path(&adj, &[0, 2], |_| 0.0).unwrap_err();
        assert_eq!(err, Error::NotAdjacent { u: 0, v: 2 });
    }

    #[test]
    fn invalid_entry_cost_isolates_the_node() {
        // Degraded mode: NaN/negative entry cost makes the node unroutable
        // instead of panicking; every other pair still routes.
        let adj = square();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let tree = risk_sssp(&adj, 0, move |v| if v == 1 { bad } else { 0.0 });
            assert!(!tree.reachable(1), "cost {bad} must isolate node 1");
            assert_eq!(tree.dist(2), 20.0, "detour around the poisoned node");
            assert_eq!(tree.path_to(2), Some(vec![0, 3, 2]));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let adj = square();
        let _ = risk_sssp(&adj, 9, |_| 0.0);
    }

    #[test]
    fn parallel_links_use_cheapest() {
        let adj = Adjacency::from_links(2, vec![(0, 1, 10.0), (0, 1, 3.0)]);
        let tree = risk_sssp(&adj, 0, |_| 0.0);
        assert_eq!(tree.dist(1), 3.0);
        let eval = evaluate_path(&adj, &[0, 1], |_| 0.0).unwrap();
        assert_eq!(eval.bit_miles, 3.0);
    }
}
