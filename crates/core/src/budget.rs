//! Cooperative cancellation and work budgets for long-running computations.
//!
//! The expensive RiskRoute computations — greedy k-link provisioning
//! ([`crate::provisioning::greedy_links_budgeted`]) and multi-storm replay
//! sweeps ([`crate::replay::replay_raw_advisories_budgeted`]) — accept a
//! [`WorkBudget`] and check it at **clean stage boundaries** (a greedy
//! iteration, a replay tick). When the budget runs out the computation does
//! not abort: it returns [`Budgeted::Partial`] carrying everything finished
//! so far plus a typed resume state, so a caller can checkpoint the prefix
//! (see [`crate::checkpoint`]) and continue later from exactly where it
//! stopped.
//!
//! A budget combines three independent limits, any of which stops the run:
//!
//! - a **wall-clock deadline** (bounded-latency mode for interactive or
//!   deadline-scheduled callers),
//! - a **work counter** capping the number of candidate evaluations /
//!   replay ticks (deterministic, reproducible stopping — the chaos
//!   harness's kill switch), and
//! - an **external cancel flag** (preemption: an operator, supervisor, or
//!   signal handler flips an [`AtomicBool`] shared via
//!   [`WorkBudget::cancel_handle`]).
//!
//! Checks are *cooperative*: work already inside a stage completes before
//! the stop is observed, so a `Partial` result is always a consistent
//! prefix of the uninterrupted run. The stop checks are ordered
//! deterministically (cancel, then work, then deadline) so that runs
//! limited only by the work counter report identical [`StopReason`]s on
//! every machine.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The external cancel flag was raised.
    Cancelled,
    /// The work counter reached its cap.
    WorkExhausted,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled by external flag"),
            StopReason::WorkExhausted => write!(f, "work budget exhausted"),
            StopReason::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

/// Result of a budget-aware computation: either the full result, or a
/// consistent prefix plus the state needed to resume it.
#[derive(Debug, Clone, PartialEq)]
pub enum Budgeted<T, R> {
    /// The computation ran to completion within its budget.
    Complete(T),
    /// The budget ran out at a stage boundary.
    Partial {
        /// Everything finished before the stop — a consistent prefix of the
        /// uninterrupted run, never a torn intermediate.
        completed: T,
        /// Typed state from which the computation continues exactly where
        /// it stopped (see the owning module's `*_resume` function).
        resume_state: R,
        /// Which limit stopped the run.
        stopped: StopReason,
    },
}

impl<T, R> Budgeted<T, R> {
    /// Whether the computation finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, Budgeted::Complete(_))
    }

    /// The completed work, whether full or partial.
    pub fn completed(&self) -> &T {
        match self {
            Budgeted::Complete(t) | Budgeted::Partial { completed: t, .. } => t,
        }
    }

    /// Consume, returning the completed work and the stop reason (if any).
    pub fn into_parts(self) -> (T, Option<StopReason>) {
        match self {
            Budgeted::Complete(t) => (t, None),
            Budgeted::Partial {
                completed, stopped, ..
            } => (completed, Some(stopped)),
        }
    }
}

/// A cooperative budget token threaded through long computations.
///
/// Cheap to check (`charge` is one atomic add; `exhausted` is a couple of
/// atomic loads plus, when a deadline is set, one clock read), shareable
/// across threads by reference, and cancellable from outside via
/// [`cancel_handle`](WorkBudget::cancel_handle).
#[derive(Debug)]
pub struct WorkBudget {
    deadline: Option<Instant>,
    max_work: Option<u64>,
    work_done: AtomicU64,
    cancel: Arc<AtomicBool>,
    scope: riskroute_obs::ObsScope,
}

impl Default for WorkBudget {
    fn default() -> Self {
        WorkBudget::unlimited()
    }
}

impl WorkBudget {
    /// A budget that never stops anything (the default for non-budgeted
    /// entry points).
    pub fn unlimited() -> Self {
        WorkBudget {
            deadline: None,
            max_work: None,
            work_done: AtomicU64::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
            // Budgets are built on the requesting thread (the serve worker
            // or the CLI main thread), so the scope installed there is the
            // trace this budget's work belongs to.
            scope: riskroute_obs::ObsScope::current(),
        }
    }

    /// Cap wall-clock time at `duration` from now.
    #[must_use]
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Cap wall-clock time at `ms` milliseconds from now. A value of 0
    /// exhausts the budget at the first stage boundary.
    #[must_use]
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Cap total charged work at `units`. A value of 0 exhausts the budget
    /// at the first stage boundary.
    #[must_use]
    pub fn with_max_work(mut self, units: u64) -> Self {
        self.max_work = Some(units);
        self
    }

    /// The shared cancel flag. Store `true` (any ordering) to request a
    /// cooperative stop at the next stage boundary.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Adopt an externally owned cancel flag instead of the private one.
    ///
    /// This lets one flag fan out over many budgets — the serve daemon
    /// wires its drain-shed flag into every in-flight request budget so a
    /// single store sheds them all at their next stage boundary.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Record `units` of completed work (candidate evaluations, replay
    /// ticks). Charging past the cap does not interrupt anything by itself;
    /// the overshoot is observed at the next [`exhausted`](Self::exhausted)
    /// check.
    pub fn charge(&self, units: u64) {
        self.work_done.fetch_add(units, Ordering::Relaxed);
    }

    /// Total work charged so far.
    pub fn work_done(&self) -> u64 {
        self.work_done.load(Ordering::Relaxed)
    }

    /// Work units left before the cap trips, or `None` when uncapped.
    ///
    /// Parallel sweeps size their dispatch waves by this *before* handing
    /// work to the pool, so a deterministic (max-work) cut lands on the
    /// same stage boundary regardless of thread count — exactly where the
    /// sequential loop, which checks [`exhausted`](Self::exhausted) before
    /// every unit, would have stopped.
    pub fn work_remaining(&self) -> Option<u64> {
        self.max_work.map(|max| max.saturating_sub(self.work_done()))
    }

    /// The attribution scope captured when this budget was built. Budgeted
    /// drivers re-enter it at their top so work charged against the budget
    /// reports to the owning request's trace even when the driver runs on
    /// a different thread than the one that created the budget.
    pub fn scope(&self) -> riskroute_obs::ObsScope {
        self.scope
    }

    /// Whether any limit has been hit, and which. Checks are ordered
    /// cancel → work → deadline so deterministic limits mask the
    /// clock-dependent one.
    pub fn exhausted(&self) -> Option<StopReason> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(StopReason::Cancelled);
        }
        if let Some(max) = self.max_work {
            if self.work_done() >= max {
                return Some(StopReason::WorkExhausted);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = WorkBudget::unlimited();
        b.charge(u64::MAX / 2);
        assert_eq!(b.exhausted(), None);
    }

    #[test]
    fn work_cap_trips_at_the_boundary() {
        let b = WorkBudget::unlimited().with_max_work(10);
        b.charge(9);
        assert_eq!(b.exhausted(), None);
        b.charge(1);
        assert_eq!(b.exhausted(), Some(StopReason::WorkExhausted));
    }

    #[test]
    fn zero_budgets_exhaust_immediately() {
        assert_eq!(
            WorkBudget::unlimited().with_max_work(0).exhausted(),
            Some(StopReason::WorkExhausted)
        );
        assert_eq!(
            WorkBudget::unlimited().with_deadline_ms(0).exhausted(),
            Some(StopReason::DeadlineExceeded)
        );
    }

    #[test]
    fn cancel_flag_wins_over_everything() {
        let b = WorkBudget::unlimited().with_max_work(0).with_deadline_ms(0);
        b.cancel_handle().store(true, Ordering::Relaxed);
        assert_eq!(b.exhausted(), Some(StopReason::Cancelled));
    }

    #[test]
    fn deadline_passes_eventually() {
        let b = WorkBudget::unlimited().with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.exhausted(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn budgeted_accessors() {
        let c: Budgeted<u32, ()> = Budgeted::Complete(7);
        assert!(c.is_complete());
        assert_eq!(*c.completed(), 7);
        assert_eq!(c.into_parts(), (7, None));
        let p: Budgeted<u32, ()> = Budgeted::Partial {
            completed: 3,
            resume_state: (),
            stopped: StopReason::WorkExhausted,
        };
        assert!(!p.is_complete());
        assert_eq!(p.into_parts(), (3, Some(StopReason::WorkExhausted)));
    }

    #[test]
    fn stop_reasons_render() {
        assert!(StopReason::Cancelled.to_string().contains("cancel"));
        assert!(StopReason::WorkExhausted.to_string().contains("work"));
        assert!(StopReason::DeadlineExceeded.to_string().contains("deadline"));
    }
}
