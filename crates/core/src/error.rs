//! The unified RiskRoute error taxonomy.
//!
//! Every fallible operation across the workspace reports through
//! [`enum@Error`]: per-crate errors (graph construction, geodesy, topology
//! building, GraphML import, advisory parsing, JSON decoding) are wrapped
//! with full source chaining, and the two conditions that used to abort the
//! pipeline — an **unreachable** PoP pair and an **invalid (non-finite)
//! weight** — are first-class values instead of panics.
//!
//! Degradation semantics: callers that can continue without the failed
//! input (the replay loop on a garbled advisory, the ratio sweep on a
//! partitioned topology) catch the specific variant, record the degradation
//! (see [`crate::ratios::RatioReport::stranded_pairs`] and
//! [`crate::replay::ReplayTick::degraded`]), and keep going; callers that
//! cannot propagate the error to the CLI, which maps each family to a
//! distinct process exit code.

use riskroute_forecast::ParseError;
use riskroute_geo::GeoError;
use riskroute_graph::GraphError;
use riskroute_json::JsonError;
use riskroute_topology::import::ImportError;
use riskroute_topology::TopologyError;
use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type for the RiskRoute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Graph construction or mutation failed.
    Graph(GraphError),
    /// Geodesy rejected a coordinate.
    Geo(GeoError),
    /// Topology construction rejected PoPs or links.
    Topology(TopologyError),
    /// GraphML import failed.
    Import(ImportError),
    /// Advisory text could not be parsed (§4.4 NLP path).
    Advisory(ParseError),
    /// JSON (de)serialization failed.
    Json(JsonError),
    /// A PoP pair has no connecting path in the (possibly degraded)
    /// topology.
    Unreachable {
        /// Network the query ran on.
        network: String,
        /// Source PoP id.
        src: usize,
        /// Destination PoP id.
        dst: usize,
    },
    /// A weight, risk, or cost was non-finite or negative where the metric
    /// requires a finite non-negative value.
    InvalidWeight {
        /// What the value was supposed to be (e.g. "link miles", "λ_h").
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A node sequence claimed adjacency the topology does not have.
    NotAdjacent {
        /// First node of the bad hop.
        u: usize,
        /// Second node of the bad hop.
        v: usize,
    },
    /// A network name did not resolve.
    UnknownNetwork(String),
    /// An aggregation had no informative pair to work with (fully
    /// partitioned source/destination sets).
    NoInformativePairs,
    /// A caller-supplied argument was out of its documented domain (e.g. a
    /// zero replay stride) — rejected up front instead of relying on
    /// downstream behaviour.
    InvalidArgument {
        /// Which argument was rejected.
        context: String,
        /// Why it was rejected.
        message: String,
    },
    /// A checkpoint snapshot was written by an unsupported format version
    /// (see [`crate::checkpoint::SNAPSHOT_VERSION`]).
    SnapshotVersion {
        /// The version recorded in the snapshot header.
        found: u64,
        /// The version this build reads and writes.
        supported: u64,
    },
    /// A checkpoint snapshot failed integrity validation (truncated bytes,
    /// checksum mismatch, missing section, undecodable payload).
    SnapshotIntegrity {
        /// What the validator found.
        reason: String,
    },
    /// A parallel worker panicked mid-task: the pool caught the panic,
    /// drained, and surfaced it as a value instead of aborting the process
    /// (see `riskroute-par`'s poisoning contract).
    WorkerPanic {
        /// Number of tasks whose panic was caught (0 when a worker died
        /// without a caught panic — defensive, unreachable via safe code).
        panicked: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(_) => write!(f, "graph construction failed"),
            Error::Geo(_) => write!(f, "geographic coordinate rejected"),
            Error::Topology(_) => write!(f, "topology construction failed"),
            Error::Import(_) => write!(f, "GraphML import failed"),
            Error::Advisory(_) => write!(f, "advisory text did not parse"),
            Error::Json(_) => write!(f, "JSON (de)serialization failed"),
            Error::Unreachable { network, src, dst } => {
                write!(f, "PoPs {src} and {dst} are not connected in {network}")
            }
            Error::InvalidWeight { context, value } => {
                write!(f, "invalid {context}: {value} (must be finite and non-negative)")
            }
            Error::NotAdjacent { u, v } => {
                write!(f, "nodes {u} and {v} are not adjacent")
            }
            Error::UnknownNetwork(name) => write!(f, "unknown network {name:?}"),
            Error::NoInformativePairs => {
                write!(f, "no informative pairs to aggregate (all stranded or trivial)")
            }
            Error::InvalidArgument { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            Error::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (this build reads \
                     version {supported})"
                )
            }
            Error::SnapshotIntegrity { reason } => {
                write!(f, "snapshot failed integrity validation: {reason}")
            }
            Error::WorkerPanic { panicked } => {
                write!(
                    f,
                    "parallel worker pool poisoned: {panicked} task(s) panicked"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Geo(e) => Some(e),
            Error::Topology(e) => Some(e),
            Error::Import(e) => Some(e),
            Error::Advisory(e) => Some(e),
            Error::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<GeoError> for Error {
    fn from(e: GeoError) -> Self {
        Error::Geo(e)
    }
}

impl From<TopologyError> for Error {
    fn from(e: TopologyError) -> Self {
        Error::Topology(e)
    }
}

impl From<ImportError> for Error {
    fn from(e: ImportError) -> Self {
        Error::Import(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Advisory(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<riskroute_par::PoolError> for Error {
    fn from(e: riskroute_par::PoolError) -> Self {
        match e {
            riskroute_par::PoolError::WorkerPanicked { panicked } => {
                Error::WorkerPanic { panicked }
            }
            riskroute_par::PoolError::WorkerLost => Error::WorkerPanic { panicked: 0 },
        }
    }
}

/// Render `err` with its full `source()` chain, one cause per line — the
/// format the CLI prints on failure.
pub fn render_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cur = err.source();
    while let Some(cause) = cur {
        out.push_str("\n  caused by: ");
        out.push_str(&cause.to_string());
        cur = cause.source();
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn wrapped_errors_chain_their_source() {
        let e = Error::from(GraphError::SelfLoop(3));
        assert_eq!(e, Error::Graph(GraphError::SelfLoop(3)));
        let src = std::error::Error::source(&e).expect("chained");
        assert!(src.to_string().contains("self-loop"));
    }

    #[test]
    fn value_variants_have_no_source() {
        let e = Error::Unreachable {
            network: "Sprint".into(),
            src: 0,
            dst: 7,
        };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("not connected"));
    }

    #[test]
    fn render_chain_walks_causes() {
        let e = Error::from(TopologyError::SelfLink(2));
        let rendered = render_chain(&e);
        assert!(rendered.contains("topology construction failed"));
        assert!(rendered.contains("caused by: self-link on PoP 2"));
    }

    #[test]
    fn invalid_weight_displays_value() {
        let e = Error::InvalidWeight {
            context: "link miles".into(),
            value: f64::NAN,
        };
        assert!(e.to_string().contains("link miles"));
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn snapshot_and_argument_variants_display_their_payload() {
        let e = Error::InvalidArgument {
            context: "stride".into(),
            message: "must be positive (got 0)".into(),
        };
        assert!(e.to_string().contains("invalid stride"));
        assert!(std::error::Error::source(&e).is_none());
        let e = Error::SnapshotVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("version 1"));
        let e = Error::SnapshotIntegrity {
            reason: "checksum mismatch in progress section".into(),
        };
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn every_wrapper_from_impl_round_trips() {
        assert!(matches!(
            Error::from(ParseError::MissingCenter),
            Error::Advisory(_)
        ));
        assert!(matches!(
            Error::from(JsonError::Shape("x".into())),
            Error::Json(_)
        ));
        assert!(matches!(
            Error::from(ImportError::NoGraph),
            Error::Import(_)
        ));
    }
}
