//! Acceptance test for the chaos-injection harness: the full pipeline must
//! complete under at least 8 distinct seeded fault plans with zero panics
//! and a defined-degradation report for each.
//!
//! "Completing" IS the no-panic invariant: every plan drives the real
//! pipeline (topology faulting, advisory corruption, hazard deletion,
//! share zeroing, cost poisoning) end to end, so a panic anywhere in
//! graph/geo/forecast/core aborts this test.

use riskroute::chaos::{run_chaos, run_chaos_suite, violations, FaultPlan};

#[test]
fn eight_plan_suite_completes_with_defined_degradation() {
    let reports = run_chaos_suite(0, 8).expect("every plan completes");
    assert_eq!(reports.len(), 8);
    for r in &reports {
        // Defined degradation, not vacuous success: the report must account
        // for the whole replay and keep every ratio finite.
        assert!(r.total_ticks > 0, "seed {}: no ticks", r.seed);
        assert!(r.finite_ratios, "seed {}: non-finite ratio", r.seed);
        assert!(
            r.degraded_ticks <= r.total_ticks,
            "seed {}: more degraded ticks than ticks",
            r.seed
        );
        let v = violations(r);
        assert!(v.is_empty(), "seed {}: {v:?}", r.seed);
        // The summary line is what the CLI prints; it must carry the seed.
        assert!(r.summary_line().contains(&format!("seed {:>4}", r.seed)));
    }
    // The 8 plans are genuinely distinct fault bundles, not one plan rerun.
    let plans = FaultPlan::suite(0, 8);
    for (i, a) in plans.iter().enumerate() {
        for b in &plans[i + 1..] {
            assert_ne!(a, b, "plans {} and {} coincide", a.seed, b.seed);
        }
    }
}

#[test]
fn suite_is_deterministic_across_runs() {
    let a = run_chaos_suite(50, 2).expect("suite completes");
    let b = run_chaos_suite(50, 2).expect("suite completes");
    assert_eq!(a, b, "same base seed must reproduce identical reports");
}

#[test]
fn harness_exercises_every_degradation_path_somewhere() {
    // Across a spread of seeds the suite must actually hit the degraded
    // replay path, strand pairs or isolate PoPs, and corrupt advisories —
    // otherwise the invariants above pass vacuously.
    let reports: Vec<_> = (0..10)
        .map(|s| run_chaos(&FaultPlan::from_seed(s)).expect("plan completes"))
        .collect();
    assert!(
        reports.iter().any(|r| r.degraded_ticks > 0),
        "no seed produced a degraded tick"
    );
    assert!(
        reports
            .iter()
            .any(|r| r.stranded_pairs > 0 || r.isolated_pops > 0),
        "no seed partitioned or isolated anything"
    );
    assert!(
        reports.iter().all(|r| r.corrupted_advisories > 0),
        "a plan failed to corrupt any advisory"
    );
    assert!(
        reports.iter().all(|r| r.dropped_links > 0),
        "a plan failed to drop any link"
    );
}
