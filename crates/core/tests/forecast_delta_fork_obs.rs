//! Forecast-only scenario forks must ride the changed-edge log instead of
//! minting a blanket fresh stamp: a fork whose override only touches PoPs
//! that no route tree can reach keeps every cached tree alive (zero SSSPs,
//! zero repairs), and a fork touching a transit PoP repairs incrementally
//! rather than rebuilding from scratch. With delta invalidation disabled
//! the same forks fall back to the structural path — with byte-identical
//! exposure either way.
//!
//! This file holds exactly one `#[test]`: the obs collector is
//! process-global, and a sibling test running in parallel would pollute
//! the counter deltas this regression pins down.

use riskroute::prelude::*;
use riskroute::scenario::{base_exposure, ExposureReport, ScenarioDelta, ScenarioFork};
use riskroute::NodeRisk;
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_topology::{Network, NetworkKind, Pop};

/// Five linked PoPs plus one isolated PoP ("Island", index 5) that no route
/// tree can reach.
fn fixture(delta_invalidation: bool) -> Planner {
    let pop = |name: &str, lat: f64, lon: f64| Pop {
        name: name.into(),
        location: GeoPoint::new(lat, lon).unwrap(),
    };
    let net = Network::new(
        "fork-net",
        NetworkKind::Regional,
        vec![
            pop("West", 35.0, -100.0),
            pop("North", 37.5, -97.0),
            pop("South", 35.0, -97.0),
            pop("East", 35.0, -94.0),
            pop("Stub", 35.5, -92.0),
            pop("Island", 39.0, -105.0),
        ],
        vec![(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)],
    )
    .unwrap();
    let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0, 1e-3, 0.0], vec![0.0; 6]);
    let shares = PopShares::from_shares(vec![1.0 / 6.0; 6]);
    Planner::new(&net, risk, shares, RiskWeights::PAPER)
        .with_delta_invalidation(delta_invalidation)
}

fn counter(snap: &riskroute_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Fork under the collector and return (exposure, snapshot).
fn measured_fork(
    base: &Planner,
    forecast: Vec<f64>,
) -> (ExposureReport, riskroute_obs::MetricsSnapshot) {
    riskroute_obs::reset();
    riskroute_obs::enable();
    let fork = ScenarioFork::fork(base, ScenarioDelta::new().with_forecast(forecast));
    let exposure = fork.exposure();
    riskroute_obs::disable();
    (exposure, riskroute_obs::snapshot())
}

#[test]
fn forecast_forks_reuse_the_changed_edge_log() {
    let on = fixture(true);
    let off = fixture(false);
    // Cold passes: warm both base caches.
    let _ = base_exposure(&on);
    let _ = base_exposure(&off);

    // An override that only raises risk at the unreachable Island: every
    // cached tree provably survives — no SSSPs, no repairs, and the fork
    // still counts as a cache reuse.
    let island_only = vec![0.0, 0.0, 0.0, 0.0, 0.0, 3e-3];
    let (survived_exposure, snap) = measured_fork(&on, island_only.clone());
    assert_eq!(counter(&snap, "forks_created"), 1);
    assert_eq!(counter(&snap, "forks_forecast_delta"), 1);
    assert_eq!(counter(&snap, "forks_reused_cache"), 1);
    assert!(
        counter(&snap, "trees_survived_delta") > 0,
        "island-only override must keep cached trees alive"
    );
    assert_eq!(counter(&snap, "sssp_repairs"), 0);
    assert_eq!(
        counter(&snap, "risk_sssp_runs"),
        0,
        "island-only fork must not run a single scratch SSSP"
    );

    // An override at the East transit PoP: affected trees are repaired
    // incrementally, not rebuilt.
    let transit = vec![0.0, 0.0, 0.0, 4e-3, 0.0, 0.0];
    let (repaired_exposure, snap) = measured_fork(&on, transit.clone());
    assert_eq!(counter(&snap, "forks_forecast_delta"), 1);
    assert!(
        counter(&snap, "sssp_repairs") > 0,
        "transit override must repair trees incrementally"
    );
    let delta_sssp_runs = counter(&snap, "risk_sssp_runs");

    // Delta invalidation off: the same overrides take the structural fork
    // path (no forecast fast path) yet produce byte-identical exposure.
    let (off_survived, snap) = measured_fork(&off, island_only);
    assert_eq!(counter(&snap, "forks_forecast_delta"), 0);
    assert_eq!(counter(&snap, "forks_created"), 1);
    assert_eq!(
        off_survived, survived_exposure,
        "delta-off island fork diverged"
    );
    let (off_repaired, snap) = measured_fork(&off, transit);
    assert_eq!(counter(&snap, "forks_forecast_delta"), 0);
    assert_eq!(counter(&snap, "sssp_repairs"), 0, "delta-off never repairs");
    assert_eq!(
        off_repaired, repaired_exposure,
        "delta-off transit fork diverged"
    );
    assert!(
        counter(&snap, "risk_sssp_runs") >= delta_sssp_runs,
        "the delta path must not run more scratch SSSPs than the blanket path"
    );
}
