//! Randomized property tests for the RiskRoute core: invariants that must
//! hold for *any* topology, risk field, and impact model.

use riskroute::provisioning::with_extra_link;
use riskroute::{NodeRisk, Planner, RiskWeights};
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_rng::StdRng;
use riskroute_topology::{Network, NetworkKind, Pop};

const CASES: usize = 64;

/// A random connected geometric network with per-PoP risks and shares.
#[derive(Debug, Clone)]
struct Scenario {
    network: Network,
    risk: Vec<f64>,
    shares: Vec<f64>,
}

fn scenario(rng: &mut StdRng) -> Scenario {
    let n = rng.gen_range(3..10usize);
    let pops: Vec<Pop> = (0..n)
        .map(|i| Pop {
            name: format!("P{i}"),
            // Spread duplicate draws apart so no two PoPs collide.
            location: GeoPoint::new(
                rng.gen_range(30.0..45.0),
                rng.gen_range(-120.0..-75.0) + i as f64 * 1e-4,
            )
            .expect("in range"),
        })
        .collect();
    // Spanning path guarantees connectivity; extras add loops.
    let mut links: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.gen_range(0..n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let key = (a.min(b), a.max(b));
        if a != b && !links.contains(&key) {
            links.push(key);
        }
    }
    let network = Network::new("prop", NetworkKind::Regional, pops, links).expect("valid");
    let raw_shares: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
    let total: f64 = raw_shares.iter().sum();
    Scenario {
        network,
        risk: (0..n).map(|_| rng.gen_range(0.0..0.3)).collect(),
        shares: raw_shares.iter().map(|s| s / total).collect(),
    }
}

fn planner(s: &Scenario, lambda_h: f64) -> Planner {
    Planner::new(
        &s.network,
        NodeRisk::new(s.risk.clone(), vec![0.0; s.risk.len()]),
        PopShares::from_shares(s.shares.clone()),
        RiskWeights::historical_only(lambda_h),
    )
}

#[test]
fn riskroute_never_loses_and_never_shortens() {
    let mut rng = StdRng::seed_from_u64(0xc1);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let p = planner(&s, 1e5);
        let n = s.network.pop_count();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let rr = p.risk_route(i, j).expect("connected by construction");
                let sp = p.shortest_route(i, j).expect("connected");
                assert!(rr.bit_risk_miles <= sp.bit_risk_miles + 1e-6);
                assert!(rr.bit_miles >= sp.bit_miles - 1e-6);
                assert!((rr.bit_risk_miles - rr.bit_miles - rr.risk_miles).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn reversal_shifts_cost_by_endpoint_constant() {
    // cost(i→j) − cost(j→i) = β·(ρ(j) − ρ(i)): the identity the
    // incremental provisioning sweep relies on.
    let mut rng = StdRng::seed_from_u64(0xc2);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let p = planner(&s, 1e5);
        let n = s.network.pop_count();
        let w = p.weights();
        for i in 0..n {
            for j in (i + 1)..n {
                let fwd = p.risk_route(i, j).expect("connected").bit_risk_miles;
                let rev = p.risk_route(j, i).expect("connected").bit_risk_miles;
                let beta = p.impact(i, j);
                let expected = beta * (p.risk().scaled(j, w) - p.risk().scaled(i, w));
                assert!(
                    ((fwd - rev) - expected).abs() < 1e-6,
                    "({i},{j}): fwd {fwd} rev {rev} expected diff {expected}"
                );
            }
        }
    }
}

#[test]
fn lambda_zero_equals_shortest_path() {
    let mut rng = StdRng::seed_from_u64(0xc3);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let p = planner(&s, 0.0);
        let n = s.network.pop_count();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let rr = p.risk_route(i, j).expect("connected");
                let sp = p.shortest_route(i, j).expect("connected");
                assert!((rr.bit_risk_miles - sp.bit_risk_miles).abs() < 1e-9);
                assert!((rr.bit_miles - sp.bit_miles).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn per_pair_bit_miles_grow_with_lambda() {
    let mut rng = StdRng::seed_from_u64(0xc4);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let lo = planner(&s, 1e4);
        let hi = planner(&s, 1e6);
        let n = s.network.pop_count();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let a = lo.risk_route(i, j).expect("connected");
                let b = hi.risk_route(i, j).expect("connected");
                assert!(
                    b.bit_miles >= a.bit_miles - 1e-9,
                    "more risk aversion can only lengthen the route"
                );
            }
        }
    }
}

#[test]
fn adding_any_link_never_increases_aggregate_bit_risk() {
    let mut rng = StdRng::seed_from_u64(0xc5);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let p = planner(&s, 1e5);
        let before = p.aggregate_bit_risk();
        let n = s.network.pop_count();
        // Pick the first absent pair, if any.
        let absent = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| !s.network.has_link(a, b));
        if let Some((a, b)) = absent {
            let augmented = with_extra_link(&s.network, a, b);
            let p2 = Planner::new(
                &augmented,
                NodeRisk::new(s.risk.clone(), vec![0.0; s.risk.len()]),
                PopShares::from_shares(s.shares.clone()),
                RiskWeights::historical_only(1e5),
            );
            assert!(p2.aggregate_bit_risk() <= before + 1e-6);
        }
    }
}

#[test]
fn ratio_report_is_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xc6);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let p = planner(&s, 1e5);
        let r = p.ratio_report();
        assert!(r.risk_reduction_ratio >= -1e-12);
        assert!(r.risk_reduction_ratio < 1.0);
        assert!(r.distance_increase_ratio >= -1e-12);
        assert!(r.pairs > 0);
    }
}
