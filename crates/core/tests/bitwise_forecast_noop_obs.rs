//! A bitwise-identical `set_forecast` must be *free*: the changed-node diff
//! is empty, so the cost stamp survives, every cached route tree stays
//! valid, and a warm query pass runs zero SSSPs, zero repairs, and logs
//! zero changed edges — on the planner itself, on clones, and on the warm
//! engines handed out by a [`PlannerPool`] (the `riskroute serve` path).
//!
//! This file holds exactly one `#[test]`: the obs collector is
//! process-global, and a sibling test running in parallel would pollute
//! the counter deltas this regression pins down.

use riskroute::prelude::*;
use riskroute::{NodeRisk, PlannerPool};
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_topology::{Network, NetworkKind, Pop};

fn fixture() -> (Network, Vec<f64>, Planner) {
    let pop = |name: &str, lat: f64, lon: f64| Pop {
        name: name.into(),
        location: GeoPoint::new(lat, lon).unwrap(),
    };
    let net = Network::new(
        "noop-net",
        NetworkKind::Regional,
        vec![
            pop("West", 35.0, -100.0),
            pop("North", 37.5, -97.0),
            pop("South", 35.0, -97.0),
            pop("East", 35.0, -94.0),
            pop("Stub", 35.5, -92.0),
        ],
        vec![(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)],
    )
    .unwrap();
    // A non-trivial active forecast: the bitwise resubmission below must
    // leave these exact bits (and the stamp minted for them) in place.
    let forecast = vec![0.0, 2e-3, 0.0, 1e-3, 0.0];
    let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0, 1e-3], forecast.clone());
    let shares = PopShares::from_shares(vec![0.2; 5]);
    let planner = Planner::new(&net, risk, shares, RiskWeights::PAPER);
    (net, forecast, planner)
}

fn counter(snap: &riskroute_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Run one measured pass under the collector and return its snapshot plus
/// the ratio report it produced.
fn measured(planner: &mut Planner, forecast: &[f64]) -> (riskroute_obs::MetricsSnapshot, RatioReport) {
    riskroute_obs::reset();
    riskroute_obs::enable();
    planner.set_forecast(forecast.to_vec());
    let report = planner.ratio_report();
    riskroute_obs::disable();
    (riskroute_obs::snapshot(), report)
}

fn assert_free(snap: &riskroute_obs::MetricsSnapshot, what: &str) {
    for name in [
        "risk_sssp_runs",
        "risk_sssp_repair_settles",
        "sssp_repairs",
        "trees_survived_delta",
        "changed_edges",
        "route_cache_invalidated",
    ] {
        assert_eq!(
            counter(snap, name),
            0,
            "{what}: bitwise-equal set_forecast must not touch `{name}`"
        );
    }
    assert!(
        counter(snap, "route_cache_hits") > 0,
        "{what}: the warm pass must be served from the route-tree cache"
    );
}

#[test]
fn bitwise_equal_forecast_resubmission_is_free() {
    let (net, forecast, planner) = fixture();
    // Cold pass: warms the route-tree cache under the active forecast.
    let cold = planner.ratio_report();

    // Resubmitting the same bits on the planner itself must keep the stamp
    // and serve everything from cache.
    let mut direct = planner.clone();
    let (snap, report) = measured(&mut direct, &forecast);
    assert_eq!(report, cold, "resubmission changed the ratio report");
    assert_free(&snap, "planner");

    // A clone shares the cache by Arc; the resubmission must be just as
    // free there.
    let mut clone = planner.clone().with_parallelism(Parallelism::Threads(4));
    let (snap, report) = measured(&mut clone, &forecast);
    assert_eq!(report, cold, "clone resubmission changed the ratio report");
    assert_free(&snap, "clone");

    // The serve path: a pool hands out warm clones sharing the pooled
    // engine's cache. A bitwise-equal forecast on the served clone must hit
    // the pool AND stay free.
    let pool = PlannerPool::new();
    let build = || planner.clone();
    let _warm = pool.planner_for(net.name(), RiskWeights::PAPER, build);
    riskroute_obs::reset();
    riskroute_obs::enable();
    let mut served = pool.planner_for(net.name(), RiskWeights::PAPER, || planner.clone());
    served.set_forecast(forecast.clone());
    let report = served.ratio_report();
    riskroute_obs::disable();
    let snap = riskroute_obs::snapshot();
    assert_eq!(report, cold, "served resubmission changed the ratio report");
    assert_eq!(counter(&snap, "planner_pool_hits"), 1);
    assert_eq!(counter(&snap, "planner_pool_misses"), 0);
    assert_free(&snap, "pool");
}
