//! Property test: the bucket-queue SSSP frontier is output-identical to
//! the binary-heap frontier — for any graph, any weights (zero-weight and
//! near-equal-cost edges included), any source, and any worker count.
//!
//! Two layers are crossed:
//!
//! 1. `engine::sssp` directly: per-source trees must agree bit-for-bit on
//!    distances and node-for-node on extracted paths.
//! 2. The `Planner` sweep at parallelism 1, 2, and 8: full pair outcomes
//!    (paths and all three metric components) must be equal with the
//!    bucket queue off and on.

use riskroute::engine::{sssp, CsrGraph};
use riskroute::routing::Adjacency;
use riskroute::{NodeRisk, Parallelism, Planner, RiskWeights};
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_rng::StdRng;
use riskroute_topology::{Network, NetworkKind, Pop};

const GRAPH_CASES: usize = 60;
const PLANNER_CASES: usize = 12;

/// A random weighted graph with adversarial weight populations: exact
/// zeros, duplicated weights (equal-cost path ties), near-equal weights a
/// few ulps apart, and magnitude mixtures spanning many buckets.
fn random_adjacency(rng: &mut StdRng) -> Adjacency {
    let n = rng.gen_range(2..40usize);
    let mut links: Vec<(usize, usize, f64)> = Vec::new();
    // Spanning path for reachability, then random extras.
    let base_weights = [0.0, 1.0, 1.0, 1.0 + f64::EPSILON, 0.125, 3.7, 4000.0];
    let weight = |rng: &mut StdRng| match rng.next_u64() % 4 {
        0 => base_weights[(rng.next_u64() % base_weights.len() as u64) as usize],
        1 => rng.gen_f64() * 10.0,
        2 => rng.gen_f64() * 1e-6,
        _ => 100.0 + rng.gen_f64() * 1e4,
    };
    for i in 1..n {
        let w = weight(rng);
        links.push((i - 1, i, w));
    }
    for _ in 0..rng.gen_range(0..2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            links.push((a, b, weight(rng)));
        }
    }
    Adjacency::from_links(n, links)
}

#[test]
fn engine_sssp_bucket_matches_heap_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0x5ca1e);
    for case in 0..GRAPH_CASES {
        let adj = random_adjacency(&mut rng);
        let csr = CsrGraph::from_adjacency(&adj);
        let n = adj.node_count();
        // Entry costs with zeros mixed in — zero-weight edges and zero-ρ
        // nodes both collapse many frontier entries into one cost class,
        // the worst case for tie-breaking.
        let rho: Vec<f64> = (0..n)
            .map(|_| {
                if rng.next_u64().is_multiple_of(3) {
                    0.0
                } else {
                    rng.gen_f64() * 5.0
                }
            })
            .collect();
        for beta in [0.0, 0.7] {
            for source in 0..n {
                let heap = sssp(&csr, source, beta, &rho, false);
                let bucket = sssp(&csr, source, beta, &rho, true);
                for t in 0..n {
                    assert_eq!(
                        heap.dist(t).to_bits(),
                        bucket.dist(t).to_bits(),
                        "case {case} beta {beta} source {source} node {t}: dist"
                    );
                    assert_eq!(
                        heap.path_to(t),
                        bucket.path_to(t),
                        "case {case} beta {beta} source {source} node {t}: path"
                    );
                }
            }
        }
    }
}

/// A random connected geometric network for the planner layer.
fn random_network(rng: &mut StdRng) -> (Network, Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(4..14usize);
    let pops: Vec<Pop> = (0..n)
        .map(|i| Pop {
            name: format!("P{i}"),
            location: GeoPoint::new(
                rng.gen_range(30.0..45.0),
                rng.gen_range(-120.0..-75.0) + i as f64 * 1e-4,
            )
            .expect("in range"),
        })
        .collect();
    let mut links: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.gen_range(0..n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let key = (a.min(b), a.max(b));
        if a != b && !links.contains(&key) {
            links.push(key);
        }
    }
    let network = Network::new("prop", NetworkKind::Regional, pops, links).expect("valid");
    let risk: Vec<f64> = (0..n)
        .map(|_| {
            if rng.next_u64().is_multiple_of(4) {
                0.0
            } else {
                rng.gen_f64() * 0.3
            }
        })
        .collect();
    let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
    let total: f64 = raw.iter().sum();
    (network, risk, raw.iter().map(|s| s / total).collect())
}

#[test]
fn planner_sweeps_identical_across_workers_and_frontiers() {
    let mut rng = StdRng::seed_from_u64(0xb0c4e7);
    for case in 0..PLANNER_CASES {
        let (network, risk, shares) = random_network(&mut rng);
        let n = network.pop_count();
        let base = Planner::new(
            &network,
            NodeRisk::new(risk.clone(), vec![0.0; n]),
            PopShares::from_shares(shares.clone()),
            RiskWeights::PAPER,
        );
        let sources: Vec<usize> = (0..n).collect();
        let reference = base
            .clone()
            .with_bucket_queue(false)
            .pair_sweep(&sources, &sources);
        for workers in [1usize, 2, 8] {
            for bucket in [false, true] {
                let planner = base
                    .clone()
                    .with_bucket_queue(bucket)
                    .with_parallelism(Parallelism::from_worker_count(workers));
                let sweep = planner.pair_sweep(&sources, &sources);
                assert_eq!(
                    reference.outcomes, sweep.outcomes,
                    "case {case}: outcomes diverge at workers={workers} bucket={bucket}"
                );
                assert_eq!(
                    reference.stranded, sweep.stranded,
                    "case {case}: stranded diverge at workers={workers} bucket={bucket}"
                );
            }
        }
    }
}
