//! The empty-delta fork must be *free*: byte-identical exposure to the
//! un-forked planner AND the same SSSP count, because it aliases the base
//! snapshot (same cost stamp, shared route-tree cache) instead of
//! rebuilding anything.
//!
//! This file holds exactly one `#[test]`: the obs collector is
//! process-global, and a sibling test running in parallel would pollute
//! the counter deltas this regression pins down.

use riskroute::prelude::*;
use riskroute::scenario::{base_exposure, ScenarioDelta, ScenarioFork};
use riskroute::NodeRisk;
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_topology::{Network, NetworkKind, Pop};

fn fixture() -> (Network, Planner) {
    let pop = |name: &str, lat: f64, lon: f64| Pop {
        name: name.into(),
        location: GeoPoint::new(lat, lon).unwrap(),
    };
    let net = Network::new(
        "alias-net",
        NetworkKind::Regional,
        vec![
            pop("West", 35.0, -100.0),
            pop("North", 37.5, -97.0),
            pop("South", 35.0, -97.0),
            pop("East", 35.0, -94.0),
            pop("Stub", 35.5, -92.0),
        ],
        vec![(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)],
    )
    .unwrap();
    let risk = NodeRisk::new(vec![0.0, 0.0, 5e-3, 0.0, 1e-3], vec![0.0; 5]);
    let shares = PopShares::from_shares(vec![0.2; 5]);
    let planner = Planner::new(&net, risk, shares, RiskWeights::PAPER);
    (net, planner)
}

fn counter(snap: &riskroute_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn empty_delta_fork_reuses_the_base_cache_and_sssp_count() {
    let (_net, planner) = fixture();
    // Cold pass: warms the base route-tree cache (one SSSP per source).
    let cold = base_exposure(&planner);

    // Warm un-forked pass under the collector: the reference SSSP count.
    riskroute_obs::reset();
    riskroute_obs::enable();
    let warm = base_exposure(&planner);
    riskroute_obs::disable();
    let warm_snap = riskroute_obs::snapshot();
    let warm_sssp = counter(&warm_snap, "risk_sssp_runs");
    assert_eq!(warm, cold, "warm pass must reproduce the cold pass");
    assert_eq!(
        warm_sssp, 0,
        "warm base pass must be served entirely from the route-tree cache"
    );

    // fork(∅) under the collector: must alias the base (same stamp) and
    // match the warm pass in output AND in SSSP count — zero rebuilds.
    riskroute_obs::reset();
    riskroute_obs::enable();
    let fork = ScenarioFork::fork(&planner, ScenarioDelta::new());
    let forked = fork.exposure();
    riskroute_obs::disable();
    let fork_snap = riskroute_obs::snapshot();

    assert!(fork.is_base_alias(), "empty delta must alias the base");
    assert_eq!(forked, warm, "fork(empty) exposure diverged from the base");
    assert_eq!(
        counter(&fork_snap, "risk_sssp_runs"),
        warm_sssp,
        "fork(empty) ran SSSPs the un-forked warm pass did not"
    );
    assert_eq!(counter(&fork_snap, "forks_created"), 1);
    assert_eq!(
        counter(&fork_snap, "forks_reused_cache"),
        1,
        "the alias fork must count as a cache reuse"
    );
}
