//! Preview of Table 2: Tier-1 risk-reduction and distance-increase ratios.
//! Run with `cargo run --release -p riskroute --example table2_preview`.

use riskroute::prelude::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 30_000);
    let hazards = HistoricalRisk::standard(42, Some(6_000));
    println!("setup: {:.1?}", t0.elapsed());

    println!(
        "{:<18} {:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "Network", "PoPs", "rr(1e5)", "dr(1e5)", "rr(1e6)", "dr(1e6)"
    );
    for net in &corpus.tier1 {
        let mut row = format!("{:<18} {:>6} |", net.name(), net.pop_count());
        for lambda in [1e5, 1e6] {
            let t = Instant::now();
            let planner = Planner::for_network(
                net,
                &population,
                &hazards,
                RiskWeights::historical_only(lambda),
            );
            let r = planner.ratio_report();
            row += &format!(
                " {:>10.3} {:>10.3}",
                r.risk_reduction_ratio, r.distance_increase_ratio
            );
            eprintln!("  {} λ={lambda:.0e}: {:.1?}", net.name(), t.elapsed());
        }
        println!("{row} |");
    }
    println!("total: {:.1?}", t0.elapsed());
}
