//! Synthetic census blocks and population density.

use riskroute_rng::StdRng;
use riskroute_geo::bbox::CONUS;
use riskroute_geo::distance::destination;
use riskroute_geo::{GeoGrid, GeoPoint};
use riskroute_topology::gazetteer::{self, City};

/// Number of continental-US census blocks in the paper's extract (§4.2).
pub const PAPER_BLOCK_COUNT: usize = 215_932;

/// One synthetic census block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CensusBlock {
    /// Block centroid.
    pub location: GeoPoint,
    /// Population of the block.
    pub population: f64,
    /// USPS state code inherited from the anchor city (used for the paper's
    /// rule that regional-network impact only counts in-footprint states).
    pub state: &'static str,
}

/// A synthetic population surface: a set of census blocks over CONUS.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    blocks: Vec<CensusBlock>,
    total: f64,
}

impl PopulationModel {
    /// Synthesize `n_blocks` census blocks, deterministic under `seed`.
    ///
    /// Blocks are apportioned to gazetteer cities proportionally to city
    /// population (every city gets at least one block), and scattered around
    /// the city center with an exponential-tail radial profile (median
    /// ~4 miles, occasional exurban blocks out to ~40 miles), clamped to
    /// CONUS.
    ///
    /// # Panics
    /// Panics when `n_blocks` is smaller than the gazetteer size.
    pub fn synthesize(seed: u64, n_blocks: usize) -> Self {
        let cities = gazetteer::CITIES;
        assert!(
            n_blocks >= cities.len(),
            "need at least one block per gazetteer city ({})",
            cities.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let total_city_pop = gazetteer::total_population() as f64;

        // Largest-remainder apportionment of blocks to cities.
        let mut counts: Vec<usize> = Vec::with_capacity(cities.len());
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(cities.len());
        let mut assigned = 0usize;
        for (i, c) in cities.iter().enumerate() {
            let ideal = n_blocks as f64 * f64::from(c.population) / total_city_pop;
            let floor = (ideal.floor() as usize).max(1);
            counts.push(floor);
            assigned += floor;
            remainders.push((ideal - ideal.floor(), i));
        }
        remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut extra_iter = remainders.iter().cycle();
        while assigned < n_blocks {
            // A cycle over the non-empty gazetteer never runs dry.
            let Some(&(_, i)) = extra_iter.next() else {
                unreachable!("cycle over non-empty remainders never ends");
            };
            counts[i] += 1;
            assigned += 1;
        }
        while assigned > n_blocks {
            // Over-assignment can only come from the `max(1)` floor on tiny
            // cities; shave blocks from the largest allocations.
            let Some(i) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
            else {
                break;
            };
            counts[i] -= 1;
            assigned -= 1;
        }

        let mut blocks = Vec::with_capacity(n_blocks);
        for (city, &count) in cities.iter().zip(&counts) {
            let per_block_pop = f64::from(city.population) / count as f64;
            for _ in 0..count {
                blocks.push(CensusBlock {
                    location: scatter(city, &mut rng),
                    population: per_block_pop,
                    state: city.state,
                });
            }
        }
        let total = blocks.iter().map(|b| b.population).sum();
        PopulationModel { blocks, total }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[CensusBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total population over all blocks.
    pub fn total_population(&self) -> f64 {
        self.total
    }

    /// Rasterize population onto a `rows × cols` CONUS grid (Figure 3-left).
    pub fn density_grid(&self, rows: usize, cols: usize) -> GeoGrid {
        let Ok(mut grid) = GeoGrid::new(CONUS, rows, cols) else {
            // Only rows == 0 or cols == 0 can fail; keep the historical
            // panic contract for that misuse.
            panic!("density grid needs positive rows and cols");
        };
        for b in &self.blocks {
            if let Some((r, c)) = grid.cell_of(b.location) {
                grid.add(r, c, b.population);
            }
        }
        grid
    }
}

/// Scatter a block around its city with exponential radial decay.
fn scatter(city: &City, rng: &mut StdRng) -> GeoPoint {
    // Larger cities sprawl farther: scale radius with sqrt of population.
    let scale = 2.0 + (f64::from(city.population)).sqrt() / 250.0;
    loop {
        let u: f64 = rng.gen_range(1e-9..1.0);
        let radius = (-u.ln() * scale).min(45.0);
        let bearing = rng.gen_range(0.0..360.0);
        let p = destination(city.location(), bearing, radius);
        if CONUS.contains(p) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn block_count_is_exact() {
        for n in [700, 1000, 5000] {
            let m = PopulationModel::synthesize(1, n);
            assert_eq!(m.block_count(), n);
        }
    }

    #[test]
    fn total_population_matches_gazetteer() {
        let m = PopulationModel::synthesize(1, 2000);
        let expect = gazetteer::total_population() as f64;
        assert!(
            (m.total_population() - expect).abs() / expect < 1e-9,
            "synthesis conserves population"
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = PopulationModel::synthesize(5, 1500);
        let b = PopulationModel::synthesize(5, 1500);
        assert_eq!(a.blocks(), b.blocks());
        let c = PopulationModel::synthesize(6, 1500);
        assert_ne!(a.blocks(), c.blocks());
    }

    #[test]
    fn blocks_stay_in_conus() {
        let m = PopulationModel::synthesize(2, 3000);
        for b in m.blocks() {
            assert!(CONUS.contains(b.location));
        }
    }

    #[test]
    fn nyc_region_outweighs_montana() {
        let m = PopulationModel::synthesize(3, 8000);
        let near = |lat: f64, lon: f64, radius: f64| -> f64 {
            let center = GeoPoint::new(lat, lon).unwrap();
            m.blocks()
                .iter()
                .filter(|b| {
                    riskroute_geo::distance::great_circle_miles(b.location, center) < radius
                })
                .map(|b| b.population)
                .sum()
        };
        let nyc = near(40.71, -74.01, 60.0);
        let rural_montana = near(47.0, -109.0, 60.0);
        assert!(
            nyc > 50.0 * rural_montana.max(1.0),
            "nyc={nyc} mt={rural_montana}"
        );
    }

    #[test]
    fn density_grid_conserves_population() {
        let m = PopulationModel::synthesize(4, 2000);
        let grid = m.density_grid(40, 80);
        assert!((grid.total() - m.total_population()).abs() < 1.0);
    }

    #[test]
    fn density_grid_peak_is_a_major_metro() {
        let m = PopulationModel::synthesize(4, 20_000);
        let grid = m.density_grid(25, 50);
        let (row, col, _) = grid.argmax().unwrap();
        let peak = grid.cell_center(row, col);
        // Peak must be near one of the three biggest metros.
        let mets = [(40.71, -74.01), (34.05, -118.24), (41.88, -87.63)];
        let close = mets.iter().any(|&(lat, lon)| {
            let c = GeoPoint::new(lat, lon).unwrap();
            riskroute_geo::distance::great_circle_miles(peak, c) < 200.0
        });
        assert!(close, "density peak at {peak} is not a major metro");
    }

    #[test]
    fn blocks_carry_state_tags() {
        let m = PopulationModel::synthesize(1, 700);
        assert!(m.blocks().iter().any(|b| b.state == "TX"));
        assert!(m.blocks().iter().any(|b| b.state == "NY"));
    }

    #[test]
    #[should_panic(expected = "one block per gazetteer city")]
    fn too_few_blocks_panics() {
        let _ = PopulationModel::synthesize(1, 10);
    }
}
