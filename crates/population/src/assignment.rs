//! Nearest-neighbour population assignment and outage impact (§5.1).
//!
//! "The population for a given census block is assigned to the nearest
//! infrastructure location" — each PoP's share `c_i` is the fraction of the
//! (in-scope) population it serves, and the impact of an outage between PoPs
//! i and j is `β(i,j) = c_i + c_j`.

use crate::blocks::PopulationModel;
use riskroute_geo::distance::great_circle_miles;
use riskroute_geo::GeoPoint;
use riskroute_topology::{Network, PopId};
use std::cmp::Ordering;

/// Per-PoP population shares for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct PopShares {
    shares: Vec<f64>,
}

impl PopShares {
    /// Build shares directly from raw values.
    ///
    /// §5 of the paper notes operators "could easily insert their own
    /// intuition about the risk and impact of outages"; this constructor is
    /// that hook (e.g. shares derived from traffic matrices or SLAs rather
    /// than census population).
    ///
    /// # Panics
    /// Panics when any share is negative or non-finite.
    pub fn from_shares(shares: Vec<f64>) -> PopShares {
        assert!(
            shares.iter().all(|s| s.is_finite() && *s >= 0.0),
            "shares must be finite and non-negative"
        );
        PopShares { shares }
    }

    /// Assign every census block of `model` to its nearest PoP of `network`.
    ///
    /// `state_filter` implements the paper's rule for geographically
    /// constrained regional networks: "we only consider the population
    /// confined to the states where these networks have infrastructure".
    /// Pass `None` for nationwide (Tier-1) networks.
    ///
    /// Returned shares are fractions of the *in-scope* population and sum to
    /// 1 (when any block is in scope). Networks with zero PoPs or zero
    /// in-scope population get all-zero shares.
    pub fn assign(
        model: &PopulationModel,
        network: &Network,
        state_filter: Option<&[&str]>,
    ) -> PopShares {
        let n = network.pop_count();
        let mut totals = vec![0.0; n];
        if n == 0 {
            return PopShares { shares: totals };
        }
        let index = LatBandIndex::build(network);
        let mut in_scope = 0.0;
        for b in model.blocks() {
            if let Some(states) = state_filter {
                if !states.contains(&b.state) {
                    continue;
                }
            }
            // `n == 0` returned early above, so a nearest PoP always exists.
            let Some((pop, _)) = index.nearest(network, b.location) else {
                debug_assert!(false, "nearest_pop on a non-empty network");
                continue;
            };
            totals[pop] += b.population;
            in_scope += b.population;
        }
        if in_scope > 0.0 {
            for t in &mut totals {
                *t /= in_scope;
            }
        }
        PopShares { shares: totals }
    }

    /// Share `c_i` of PoP `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn share(&self, i: PopId) -> f64 {
        self.shares[i]
    }

    /// All shares, indexed by PoP.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Outage impact `β(i,j) = c_i + c_j` (§5.1).
    ///
    /// # Panics
    /// Panics when either PoP is out of range.
    pub fn impact(&self, i: PopId, j: PopId) -> f64 {
        self.shares[i] + self.shares[j]
    }
}

/// Miles per degree of latitude used as a *lower bound* on great-circle
/// distance. Deliberately below the true ≈69.09 mi/° so that floating-point
/// error in the haversine can never let the bound prune a candidate whose
/// exact distance ties the current best — pruned PoPs are strictly farther,
/// and the index returns the same `(distance, index)` minimum as
/// [`Network::nearest_pop`]'s linear scan, bit for bit.
const LAT_BAND_LOWER_BOUND_MI_PER_DEG: f64 = 69.0;

/// Latitude-sorted nearest-PoP index.
///
/// [`PopShares::assign`] calls nearest-PoP once per census block; on
/// continental-scale synthetic networks (10k–100k PoPs, see
/// `riskroute synth`) the linear scan turns assignment into a
/// blocks × PoPs quadratic pass. This index sorts PoPs by latitude once
/// and answers each query by expanding outward from the query latitude,
/// stopping as soon as the latitude separation alone exceeds the best
/// distance found — `O(log n + k)` per query with `k` the PoPs inside the
/// winning latitude band.
struct LatBandIndex {
    /// `(latitude, PoP id)`, sorted ascending.
    by_lat: Vec<(f64, PopId)>,
}

impl LatBandIndex {
    fn build(network: &Network) -> Self {
        let mut by_lat: Vec<(f64, PopId)> = network
            .pops()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.location.lat(), i))
            .collect();
        by_lat.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        LatBandIndex { by_lat }
    }

    /// Nearest PoP to `q` with the exact tie semantics of
    /// [`Network::nearest_pop`]: minimal `(distance, PoP id)` under
    /// `total_cmp`.
    fn nearest(&self, network: &Network, q: GeoPoint) -> Option<(PopId, f64)> {
        let pops = network.pops();
        let start = self.by_lat.partition_point(|&(lat, _)| lat < q.lat());
        let mut lo = start.checked_sub(1);
        let mut hi = (start < self.by_lat.len()).then_some(start);
        let mut best: Option<(f64, PopId)> = None;
        loop {
            // Visit whichever unexplored side is nearer in latitude; once
            // its latitude bound exceeds the best distance, the other side's
            // bound does too and the search is complete.
            let lo_gap = lo.map(|i| q.lat() - self.by_lat[i].0);
            let hi_gap = hi.map(|i| self.by_lat[i].0 - q.lat());
            let (at, gap, from_lo) = match (lo, hi) {
                (None, None) => break,
                (Some(i), None) => (i, lo_gap.unwrap_or(0.0), true),
                (None, Some(i)) => (i, hi_gap.unwrap_or(0.0), false),
                (Some(li), Some(hi_i)) => {
                    let lg = lo_gap.unwrap_or(0.0);
                    let hg = hi_gap.unwrap_or(0.0);
                    if lg <= hg {
                        (li, lg, true)
                    } else {
                        (hi_i, hg, false)
                    }
                }
            };
            if let Some((best_d, _)) = best {
                if gap * LAT_BAND_LOWER_BOUND_MI_PER_DEG > best_d {
                    break;
                }
            }
            let id = self.by_lat[at].1;
            let d = great_circle_miles(q, pops[id].location);
            best = Some(match best {
                None => (d, id),
                Some(b) => {
                    if d.total_cmp(&b.0).then(id.cmp(&b.1)) == Ordering::Less {
                        (d, id)
                    } else {
                        b
                    }
                }
            });
            if from_lo {
                lo = at.checked_sub(1);
            } else {
                hi = (at + 1 < self.by_lat.len()).then_some(at + 1);
            }
        }
        best.map(|(d, i)| (i, d))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn two_pop_network() -> Network {
        Network::new(
            "pair",
            NetworkKind::Tier1,
            vec![
                Pop {
                    name: "NYC".into(),
                    location: GeoPoint::new(40.71, -74.01).unwrap(),
                },
                Pop {
                    name: "LA".into(),
                    location: GeoPoint::new(34.05, -118.24).unwrap(),
                },
            ],
            vec![(0, 1)],
        )
        .unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let model = PopulationModel::synthesize(1, 3000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        let sum: f64 = shares.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(shares.share(0) > 0.0 && shares.share(1) > 0.0);
    }

    #[test]
    fn east_coast_pop_serves_more_than_half() {
        // NYC vs LA split of the national population: the eastern half of the
        // country (everything nearer NYC) holds the majority.
        let model = PopulationModel::synthesize(1, 5000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        assert!(shares.share(0) > 0.5, "NYC share = {}", shares.share(0));
    }

    #[test]
    fn impact_is_sum_of_shares() {
        let model = PopulationModel::synthesize(2, 2000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        let b = shares.impact(0, 1);
        assert!((b - (shares.share(0) + shares.share(1))).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-9, "two PoPs capture everything");
    }

    #[test]
    fn state_filter_restricts_scope() {
        let model = PopulationModel::synthesize(3, 4000);
        let net = two_pop_network();
        // TX + NY scope: Texas blocks are all nearer LA (even Houston, by
        // ~45 miles), New York blocks all nearer NYC, so both PoPs hold a
        // strictly interior share and the shares still sum to 1.
        let shares = PopShares::assign(&model, &net, Some(&["TX", "NY"]));
        let sum: f64 = shares.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(shares.share(0) > 0.1 && shares.share(1) > 0.1);
        // And a TX-only scope hands essentially everything to LA.
        let tx_only = PopShares::assign(&model, &net, Some(&["TX"]));
        assert!(tx_only.share(1) > 0.95, "LA share = {}", tx_only.share(1));
    }

    #[test]
    fn empty_filter_gives_zero_shares() {
        let model = PopulationModel::synthesize(3, 1000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, Some(&["ZZ"]));
        assert!(shares.shares().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn single_pop_network_takes_all() {
        let model = PopulationModel::synthesize(4, 1000);
        let net = Network::new(
            "solo",
            NetworkKind::Regional,
            vec![Pop {
                name: "X".into(),
                location: GeoPoint::new(39.0, -95.0).unwrap(),
            }],
            vec![],
        )
        .unwrap();
        let shares = PopShares::assign(&model, &net, None);
        assert!((shares.share(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lat_band_index_matches_linear_scan_exactly() {
        // Random PoP clouds — including exact duplicate locations, which
        // force the (distance, index) tie-break — must agree with
        // Network::nearest_pop bit for bit at every query point.
        let mut rng = riskroute_rng::StdRng::seed_from_u64(9);
        for trial in 0..5u64 {
            let n = 3 + (trial as usize) * 17;
            let mut pops = Vec::with_capacity(n);
            for i in 0..n {
                let lat = 25.0 + rng.gen_f64() * 24.0;
                let lon = -124.0 + rng.gen_f64() * 57.0;
                pops.push(Pop {
                    name: format!("p{i}"),
                    location: GeoPoint::new(lat, lon).unwrap(),
                });
            }
            // Duplicate an existing location under a higher index.
            let dup = pops[trial as usize % n].location;
            pops.push(Pop {
                name: "dup".into(),
                location: dup,
            });
            let net = Network::new("cloud", NetworkKind::Tier1, pops, vec![]).unwrap();
            let index = LatBandIndex::build(&net);
            for _ in 0..200 {
                let q = GeoPoint::new(
                    24.6 + rng.gen_f64() * 24.8,
                    -124.9 + rng.gen_f64() * 58.0,
                )
                .unwrap();
                let fast = index.nearest(&net, q);
                let slow = net.nearest_pop(q);
                match (fast, slow) {
                    (Some((fi, fd)), Some((si, sd))) => {
                        assert_eq!(fi, si, "trial {trial}");
                        assert_eq!(fd.to_bits(), sd.to_bits(), "trial {trial}");
                    }
                    other => panic!("trial {trial}: mismatch {other:?}"),
                }
            }
            // PoP locations themselves are zero-distance queries.
            for (i, p) in net.pops().iter().enumerate() {
                let fast = index.nearest(&net, p.location);
                let slow = net.nearest_pop(p.location);
                assert_eq!(fast, slow, "trial {trial} pop {i}");
            }
        }
    }

    #[test]
    fn empty_network_has_no_shares() {
        let model = PopulationModel::synthesize(4, 1000);
        let net = Network::new("none", NetworkKind::Regional, vec![], vec![]).unwrap();
        let shares = PopShares::assign(&model, &net, None);
        assert!(shares.shares().is_empty());
    }
}
