//! Nearest-neighbour population assignment and outage impact (§5.1).
//!
//! "The population for a given census block is assigned to the nearest
//! infrastructure location" — each PoP's share `c_i` is the fraction of the
//! (in-scope) population it serves, and the impact of an outage between PoPs
//! i and j is `β(i,j) = c_i + c_j`.

use crate::blocks::PopulationModel;
use riskroute_topology::{Network, PopId};

/// Per-PoP population shares for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct PopShares {
    shares: Vec<f64>,
}

impl PopShares {
    /// Build shares directly from raw values.
    ///
    /// §5 of the paper notes operators "could easily insert their own
    /// intuition about the risk and impact of outages"; this constructor is
    /// that hook (e.g. shares derived from traffic matrices or SLAs rather
    /// than census population).
    ///
    /// # Panics
    /// Panics when any share is negative or non-finite.
    pub fn from_shares(shares: Vec<f64>) -> PopShares {
        assert!(
            shares.iter().all(|s| s.is_finite() && *s >= 0.0),
            "shares must be finite and non-negative"
        );
        PopShares { shares }
    }

    /// Assign every census block of `model` to its nearest PoP of `network`.
    ///
    /// `state_filter` implements the paper's rule for geographically
    /// constrained regional networks: "we only consider the population
    /// confined to the states where these networks have infrastructure".
    /// Pass `None` for nationwide (Tier-1) networks.
    ///
    /// Returned shares are fractions of the *in-scope* population and sum to
    /// 1 (when any block is in scope). Networks with zero PoPs or zero
    /// in-scope population get all-zero shares.
    pub fn assign(
        model: &PopulationModel,
        network: &Network,
        state_filter: Option<&[&str]>,
    ) -> PopShares {
        let n = network.pop_count();
        let mut totals = vec![0.0; n];
        if n == 0 {
            return PopShares { shares: totals };
        }
        let mut in_scope = 0.0;
        for b in model.blocks() {
            if let Some(states) = state_filter {
                if !states.contains(&b.state) {
                    continue;
                }
            }
            // `n == 0` returned early above, so a nearest PoP always exists.
            let Some((pop, _)) = network.nearest_pop(b.location) else {
                debug_assert!(false, "nearest_pop on a non-empty network");
                continue;
            };
            totals[pop] += b.population;
            in_scope += b.population;
        }
        if in_scope > 0.0 {
            for t in &mut totals {
                *t /= in_scope;
            }
        }
        PopShares { shares: totals }
    }

    /// Share `c_i` of PoP `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn share(&self, i: PopId) -> f64 {
        self.shares[i]
    }

    /// All shares, indexed by PoP.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Outage impact `β(i,j) = c_i + c_j` (§5.1).
    ///
    /// # Panics
    /// Panics when either PoP is out of range.
    pub fn impact(&self, i: PopId, j: PopId) -> f64 {
        self.shares[i] + self.shares[j]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::GeoPoint;
    use riskroute_topology::{NetworkKind, Pop};

    fn two_pop_network() -> Network {
        Network::new(
            "pair",
            NetworkKind::Tier1,
            vec![
                Pop {
                    name: "NYC".into(),
                    location: GeoPoint::new(40.71, -74.01).unwrap(),
                },
                Pop {
                    name: "LA".into(),
                    location: GeoPoint::new(34.05, -118.24).unwrap(),
                },
            ],
            vec![(0, 1)],
        )
        .unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let model = PopulationModel::synthesize(1, 3000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        let sum: f64 = shares.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(shares.share(0) > 0.0 && shares.share(1) > 0.0);
    }

    #[test]
    fn east_coast_pop_serves_more_than_half() {
        // NYC vs LA split of the national population: the eastern half of the
        // country (everything nearer NYC) holds the majority.
        let model = PopulationModel::synthesize(1, 5000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        assert!(shares.share(0) > 0.5, "NYC share = {}", shares.share(0));
    }

    #[test]
    fn impact_is_sum_of_shares() {
        let model = PopulationModel::synthesize(2, 2000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, None);
        let b = shares.impact(0, 1);
        assert!((b - (shares.share(0) + shares.share(1))).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-9, "two PoPs capture everything");
    }

    #[test]
    fn state_filter_restricts_scope() {
        let model = PopulationModel::synthesize(3, 4000);
        let net = two_pop_network();
        // TX + NY scope: Texas blocks are all nearer LA (even Houston, by
        // ~45 miles), New York blocks all nearer NYC, so both PoPs hold a
        // strictly interior share and the shares still sum to 1.
        let shares = PopShares::assign(&model, &net, Some(&["TX", "NY"]));
        let sum: f64 = shares.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(shares.share(0) > 0.1 && shares.share(1) > 0.1);
        // And a TX-only scope hands essentially everything to LA.
        let tx_only = PopShares::assign(&model, &net, Some(&["TX"]));
        assert!(tx_only.share(1) > 0.95, "LA share = {}", tx_only.share(1));
    }

    #[test]
    fn empty_filter_gives_zero_shares() {
        let model = PopulationModel::synthesize(3, 1000);
        let net = two_pop_network();
        let shares = PopShares::assign(&model, &net, Some(&["ZZ"]));
        assert!(shares.shares().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn single_pop_network_takes_all() {
        let model = PopulationModel::synthesize(4, 1000);
        let net = Network::new(
            "solo",
            NetworkKind::Regional,
            vec![Pop {
                name: "X".into(),
                location: GeoPoint::new(39.0, -95.0).unwrap(),
            }],
            vec![],
        )
        .unwrap();
        let shares = PopShares::assign(&model, &net, None);
        assert!((shares.share(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_network_has_no_shares() {
        let model = PopulationModel::synthesize(4, 1000);
        let net = Network::new("none", NetworkKind::Regional, vec![], vec![]).unwrap();
        let shares = PopShares::assign(&model, &net, None);
        assert!(shares.shares().is_empty());
    }
}
