//! Synthetic census-block population model for the RiskRoute reproduction.
//!
//! Section 4.2 of the paper evaluates outage *impact* using US Census data at
//! census-block resolution (215,932 blocks in the continental US), assigning
//! each block's population to the nearest PoP of a network, so that the
//! impact of an outage between PoPs i and j is `β(i,j) = c_i + c_j` — the
//! summed population fractions served by the two endpoints (§5.1).
//!
//! The real census extract is not redistributable, so [`PopulationModel`]
//! synthesizes blocks deterministically: every gazetteer city spawns blocks
//! in proportion to its population, scattered with a distance decay that
//! mimics metro sprawl. Only population *shares* matter to the framework, and
//! those are anchored to real city populations.
//!
//! - [`blocks`] — block synthesis and the population model.
//! - [`assignment`] — nearest-neighbour block→PoP assignment and impact
//!   factors (Figure 3-right).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod assignment;
pub mod blocks;

pub use assignment::PopShares;
pub use blocks::{CensusBlock, PopulationModel, PAPER_BLOCK_COUNT};
