//! Randomized property tests for the graph substrate, driven by the
//! workspace's deterministic PRNG. Each test sweeps many seeded random
//! graphs — including disconnected ones, zero-weight edges, and attempted
//! self-loops — and asserts the algorithmic invariants hold on all of them.

use riskroute_graph::components::{connected_components, is_connected};
use riskroute_graph::mst::{minimum_spanning_forest, mst_weight};
use riskroute_graph::yen::k_shortest_paths;
use riskroute_graph::{dijkstra, Graph};
use riskroute_rng::StdRng;

const CASES: usize = 96;

/// A random graph with `2..24` nodes and up to `3n` random weighted edges.
/// Self-loop draws are attempted and must be rejected, not panic.
fn random_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2..24usize);
    let mut g = Graph::with_nodes(n);
    let edges = rng.gen_range(0..n * 3);
    for _ in 0..edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        // Zero-weight edges are legal and exercised deliberately.
        let w = if rng.gen_bool(0.1) {
            0.0
        } else {
            rng.gen_range(0.0..1000.0)
        };
        if a == b {
            assert!(g.add_edge(a, b, w).is_err(), "self-loop must be rejected");
        } else {
            g.add_edge(a, b, w).expect("valid edge");
        }
    }
    g
}

/// A random connected graph: random spanning tree plus extra edges.
fn random_connected_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2..24usize);
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(i, parent, rng.gen_range(0.1..1000.0))
            .expect("tree edge");
    }
    for _ in 0..rng.gen_range(0..n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            g.add_edge(a, b, rng.gen_range(0.0..1000.0)).expect("extra edge");
        }
    }
    g
}

#[test]
fn dijkstra_dist_satisfies_triangle_inequality_over_edges() {
    let mut rng = StdRng::seed_from_u64(0x11);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        // For every edge (u, v, w): dist(s,v) <= dist(s,u) + w.
        let tree = dijkstra::sssp(&g, 0);
        for (_, u, v, w) in g.edges() {
            let (du, dv) = (tree.dist(u), tree.dist(v));
            if du.is_finite() {
                assert!(dv <= du + w + 1e-9);
            }
            if dv.is_finite() {
                assert!(du <= dv + w + 1e-9);
            }
        }
    }
}

#[test]
fn dijkstra_path_cost_matches_reported_cost() {
    let mut rng = StdRng::seed_from_u64(0x22);
    for _ in 0..CASES {
        let g = random_connected_graph(&mut rng);
        let tree = dijkstra::sssp(&g, 0);
        for t in 0..g.node_count() {
            let path = tree.path_to(t).expect("connected");
            let mut walked = 0.0;
            for w in path.windows(2) {
                let e = g.find_edge(w[0], w[1]).expect("edge on path exists");
                walked += g.edge_weight(e);
            }
            assert!((walked - tree.dist(t)).abs() < 1e-6);
        }
    }
}

#[test]
fn all_pairs_matrix_is_symmetric_and_metric() {
    let mut rng = StdRng::seed_from_u64(0x33);
    for _ in 0..32 {
        let g = random_connected_graph(&mut rng);
        let d = dijkstra::all_pairs(&g);
        let n = g.node_count();
        for s in 0..n {
            assert_eq!(d[s][s], 0.0);
            for t in 0..n {
                assert!((d[s][t] - d[t][s]).abs() < 1e-9);
                for v in 0..n {
                    assert!(d[s][t] <= d[s][v] + d[v][t] + 1e-9);
                }
            }
        }
    }
}

#[test]
fn components_partition_and_agree_with_connectivity() {
    let mut rng = StdRng::seed_from_u64(0x44);
    let mut saw_disconnected = false;
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
        assert_eq!(comps.len() == 1, is_connected(&g));
        saw_disconnected |= comps.len() > 1;
        // Every node appears exactly once.
        let mut seen = vec![false; g.node_count()];
        for c in &comps {
            for &n in c {
                assert!(!seen[n]);
                seen[n] = true;
            }
        }
    }
    assert!(saw_disconnected, "sweep must cover disconnected graphs");
}

/// Dijkstra, components, MST, and Yen must agree on reachability and never
/// panic — including on disconnected graphs with unreachable targets.
#[test]
fn algorithms_agree_on_reachability_and_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x55);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let n = g.node_count();
        let comps = connected_components(&g);
        let mut comp_of = vec![usize::MAX; n];
        for (ci, c) in comps.iter().enumerate() {
            for &v in c {
                comp_of[v] = ci;
            }
        }
        let tree = dijkstra::sssp(&g, 0);
        let _forest = minimum_spanning_forest(&g);
        for t in 0..n {
            let same_comp = comp_of[t] == comp_of[0];
            assert_eq!(
                tree.dist(t).is_finite(),
                same_comp,
                "dijkstra and components disagree on reachability of {t}"
            );
            assert_eq!(tree.path_to(t).is_some(), same_comp);
            let yen = k_shortest_paths(&g, 0, t, 3);
            if t == 0 {
                continue;
            }
            assert_eq!(
                !yen.is_empty(),
                same_comp,
                "yen and components disagree on reachability of {t}"
            );
            assert_eq!(dijkstra::shortest_path(&g, 0, t).is_some(), same_comp);
        }
    }
}

#[test]
fn mst_spans_components_with_minimal_edge_count() {
    let mut rng = StdRng::seed_from_u64(0x66);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let comps = connected_components(&g);
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), g.node_count() - comps.len());
        assert!(mst_weight(&g) <= g.total_weight() + 1e-9);
    }
}

#[test]
fn mst_weight_invariant_under_edge_order() {
    let mut rng = StdRng::seed_from_u64(0x77);
    for _ in 0..CASES {
        let g = random_connected_graph(&mut rng);
        // Rebuild with edges inserted in reverse; total MSF weight must match
        // (edge *ids* may differ under ties, weight cannot).
        let mut rev = Graph::with_nodes(g.node_count());
        let edges: Vec<_> = g.edges().collect();
        for &(_, a, b, w) in edges.iter().rev() {
            rev.add_edge(a, b, w).expect("valid edge");
        }
        assert!((mst_weight(&g) - mst_weight(&rev)).abs() < 1e-6);
    }
}

#[test]
fn yen_first_equals_dijkstra_and_costs_sorted() {
    let mut rng = StdRng::seed_from_u64(0x88);
    for _ in 0..CASES {
        let g = random_connected_graph(&mut rng);
        let t = g.node_count() - 1;
        let paths = k_shortest_paths(&g, 0, t, 4);
        assert!(!paths.is_empty());
        let (best_cost, _) = dijkstra::shortest_path(&g, 0, t).expect("connected");
        assert!((paths[0].cost - best_cost).abs() < 1e-9);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }
}
