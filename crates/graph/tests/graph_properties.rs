//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use riskroute_graph::components::{connected_components, is_connected};
use riskroute_graph::mst::{minimum_spanning_forest, mst_weight};
use riskroute_graph::yen::k_shortest_paths;
use riskroute_graph::{dijkstra, Graph};

/// Strategy: a random graph with `n` nodes and a set of weighted edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0.0f64..1000.0), 0..(n * 3));
        edges.prop_map(move |es| {
            let mut g = Graph::with_nodes(n);
            for (a, b, w) in es {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            g
        })
    })
}

/// Strategy: a connected random graph (random tree plus extra edges).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let tree_weights = proptest::collection::vec(0.1f64..1000.0, n - 1);
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let extra = proptest::collection::vec((0..n, 0..n, 0.0f64..1000.0), 0..n);
        (tree_weights, parents, extra).prop_map(move |(tw, ps, extra)| {
            let mut g = Graph::with_nodes(n);
            for (i, (&w, p)) in tw.iter().zip(ps).enumerate() {
                g.add_edge(i + 1, p, w).unwrap();
            }
            for (a, b, w) in extra {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn dijkstra_dist_satisfies_triangle_inequality_over_edges(g in arb_graph()) {
        // For every edge (u, v, w): dist(s,v) <= dist(s,u) + w.
        let tree = dijkstra::sssp(&g, 0);
        for (_, u, v, w) in g.edges() {
            let (du, dv) = (tree.dist(u), tree.dist(v));
            if du.is_finite() {
                prop_assert!(dv <= du + w + 1e-9);
            }
            if dv.is_finite() {
                prop_assert!(du <= dv + w + 1e-9);
            }
        }
    }

    #[test]
    fn dijkstra_path_cost_matches_reported_cost(g in arb_connected_graph()) {
        let n = g.node_count();
        let tree = dijkstra::sssp(&g, 0);
        for t in 0..n {
            let path = tree.path_to(t).expect("connected");
            let mut walked = 0.0;
            for w in path.windows(2) {
                let e = g.find_edge(w[0], w[1]).expect("edge on path exists");
                walked += g.edge_weight(e);
            }
            prop_assert!((walked - tree.dist(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn all_pairs_matrix_is_symmetric_and_metric(g in arb_connected_graph()) {
        let d = dijkstra::all_pairs(&g);
        let n = g.node_count();
        for s in 0..n {
            prop_assert_eq!(d[s][s], 0.0);
            for t in 0..n {
                prop_assert!((d[s][t] - d[t][s]).abs() < 1e-9);
                for v in 0..n {
                    prop_assert!(d[s][t] <= d[s][v] + d[v][t] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn components_partition_and_agree_with_connectivity(g in arb_graph()) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        prop_assert_eq!(comps.len() == 1, is_connected(&g));
        // Every node appears exactly once.
        let mut seen = vec![false; g.node_count()];
        for c in &comps {
            for &n in c {
                prop_assert!(!seen[n]);
                seen[n] = true;
            }
        }
    }

    #[test]
    fn mst_spans_components_with_minimal_edge_count(g in arb_graph()) {
        let comps = connected_components(&g);
        let mst = minimum_spanning_forest(&g);
        prop_assert_eq!(mst.len(), g.node_count() - comps.len());
        prop_assert!(mst_weight(&g) <= g.total_weight() + 1e-9);
    }

    #[test]
    fn mst_weight_invariant_under_edge_order(g in arb_connected_graph()) {
        // Rebuild with edges inserted in reverse; total MSF weight must match
        // (edge *ids* may differ under ties, weight cannot).
        let mut rev = Graph::with_nodes(g.node_count());
        let edges: Vec<_> = g.edges().collect();
        for &(_, a, b, w) in edges.iter().rev() {
            rev.add_edge(a, b, w).unwrap();
        }
        prop_assert!((mst_weight(&g) - mst_weight(&rev)).abs() < 1e-6);
    }

    #[test]
    fn yen_first_equals_dijkstra_and_costs_sorted(g in arb_connected_graph()) {
        let n = g.node_count();
        let t = n - 1;
        let paths = k_shortest_paths(&g, 0, t, 4);
        prop_assert!(!paths.is_empty());
        let (best_cost, _) = dijkstra::shortest_path(&g, 0, t).unwrap();
        prop_assert!((paths[0].cost - best_cost).abs() < 1e-9);
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }
}
