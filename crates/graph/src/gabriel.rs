//! Gabriel-graph construction over metric point sets.
//!
//! The paper places line-of-sight links between PoPs (§4.1). Real ISP maps
//! are sparse planar-ish meshes; the Gabriel graph — which joins two points
//! when no third point lies inside the disc having their segment as diameter
//! — reproduces exactly that character and is the standard proximity-graph
//! model for infrastructure networks. The topology synthesizer unions a
//! geographic MST (connectivity guarantee) with Gabriel edges (redundancy).

use crate::Graph;

/// Build the Gabriel graph over `n` points given a symmetric metric
/// `dist(i, j)`.
///
/// Edge `(i, j)` is included iff for every other point `k`:
/// `d(i,k)² + d(j,k)² >= d(i,j)²` (no point strictly inside the diametral
/// disc). For geographic points the great-circle metric is close enough to
/// Euclidean at CONUS scale for this classical criterion to apply.
///
/// Edge weights are set to `dist(i, j)`. O(n³); fine for n ≤ a few hundred
/// (the largest paper network has 233 PoPs).
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
pub fn gabriel_graph(n: usize, dist: impl Fn(usize, usize) -> f64) -> Graph {
    let mut g = Graph::with_nodes(n);
    // Precompute the distance matrix so the O(n^3) loop does no redundant
    // metric evaluations (great-circle trig is the expensive part).
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(i, j);
            assert!(
                v.is_finite() && v >= 0.0,
                "metric must be finite and non-negative (d({i},{j}) = {v})"
            );
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let dij2 = d[i][j] * d[i][j];
            let blocked = (0..n)
                .any(|k| k != i && k != j && d[i][k] * d[i][k] + d[j][k] * d[j][k] < dij2 - 1e-9);
            if !blocked && g.add_edge(i, j, d[i][j]).is_err() {
                debug_assert!(false, "validated weight rejected by add_edge");
            }
        }
    }
    g
}

/// Build the relative neighborhood graph (RNG) over `n` points.
///
/// Edge `(i, j)` is included iff no third point `k` is strictly closer to
/// *both* endpoints than they are to each other:
/// `max(d(i,k), d(j,k)) >= d(i,j)` for all k. The RNG is a subgraph of the
/// Gabriel graph and a supergraph of the MST (hence connected), with
/// noticeably higher stretch — matching the sparser of the real ISP maps.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
pub fn relative_neighborhood_graph(n: usize, dist: impl Fn(usize, usize) -> f64) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(i, j);
            assert!(
                v.is_finite() && v >= 0.0,
                "metric must be finite and non-negative (d({i},{j}) = {v})"
            );
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let dij = d[i][j];
            let blocked = (0..n).any(|k| k != i && k != j && d[i][k].max(d[j][k]) < dij - 1e-9);
            if !blocked && g.add_edge(i, j, dij).is_err() {
                debug_assert!(false, "validated weight rejected by add_edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::components::is_connected;
    use crate::mst::minimum_spanning_forest;

    fn euclid(points: &[(f64, f64)]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        }
    }

    #[test]
    fn two_points_are_joined() {
        let pts = [(0.0, 0.0), (1.0, 0.0)];
        let g = gabriel_graph(2, euclid(&pts));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn midpoint_blocks_long_edge() {
        // Collinear points: 0 --- 1 --- 2. Point 1 sits inside the diametral
        // disc of (0, 2), so the long edge must be absent.
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        let g = gabriel_graph(3, euclid(&pts));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn off_disc_point_does_not_block() {
        // Third point far away: the pair stays connected.
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.5, 10.0)];
        let g = gabriel_graph(3, euclid(&pts));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn square_gets_sides_not_diagonals() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let g = gabriel_graph(4, euclid(&pts));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 0));
        // Diagonals have the opposite corner exactly on the disc boundary;
        // boundary points do not block (Gabriel is non-strict), but each
        // diagonal's disc *contains* the other two corners strictly?
        // For the unit square, corner (1,0) lies on the circle of diagonal
        // (0,0)-(1,1) exactly, so diagonals are kept by the non-strict rule.
        // Verify the graph is at least connected and contains the 4 sides.
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 4);
    }

    #[test]
    fn gabriel_contains_nearest_neighbor_edges_and_is_connected() {
        // Nearest-neighbor graph ⊆ Gabriel graph ⊆ Delaunay; Gabriel graphs
        // over generic points are connected (they contain the MST / NN edges).
        let pts = [
            (0.0, 0.0),
            (2.0, 0.3),
            (4.1, 1.0),
            (1.0, 2.2),
            (3.0, 3.1),
            (5.2, 2.9),
            (0.4, 4.0),
        ];
        let g = gabriel_graph(pts.len(), euclid(&pts));
        assert!(is_connected(&g));
        // Each node's nearest neighbour must be adjacent.
        for i in 0..pts.len() {
            let nn = (0..pts.len())
                .filter(|&j| j != i)
                .min_by(|&a, &b| euclid(&pts)(i, a).partial_cmp(&euclid(&pts)(i, b)).unwrap())
                .unwrap();
            assert!(g.has_edge(i, nn), "node {i} missing NN edge to {nn}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(gabriel_graph(0, |_, _| 0.0).node_count(), 0);
        let g = gabriel_graph(1, |_, _| 0.0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "metric must be finite")]
    fn rejects_nan_metric() {
        let _ = gabriel_graph(2, |_, _| f64::NAN);
    }

    #[test]
    fn rng_is_subgraph_of_gabriel_and_contains_mst() {
        let pts = [
            (0.0, 0.0),
            (2.0, 0.3),
            (4.1, 1.0),
            (1.0, 2.2),
            (3.0, 3.1),
            (5.2, 2.9),
            (0.4, 4.0),
            (2.6, 4.8),
        ];
        let gg = gabriel_graph(pts.len(), euclid(&pts));
        let rng = relative_neighborhood_graph(pts.len(), euclid(&pts));
        assert!(rng.edge_count() <= gg.edge_count());
        for (_, a, b, _) in rng.edges() {
            assert!(gg.has_edge(a, b), "RNG edge ({a},{b}) missing from Gabriel");
        }
        // RNG ⊇ MST ⇒ connected.
        assert!(is_connected(&rng));
        // Every MST edge of the complete metric graph appears in the RNG.
        let mut complete = Graph::with_nodes(pts.len());
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                complete.add_edge(i, j, euclid(&pts)(i, j)).unwrap();
            }
        }
        for e in minimum_spanning_forest(&complete) {
            let (a, b) = complete.edge_endpoints(e);
            assert!(rng.has_edge(a, b), "MST edge ({a},{b}) missing from RNG");
        }
    }

    #[test]
    fn rng_collinear_chain() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        let g = relative_neighborhood_graph(3, euclid(&pts));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }
}
