//! A from-scratch graph substrate for the RiskRoute reproduction.
//!
//! RiskRoute reduces to shortest-path computations over a *risk graph* whose
//! link weights are bit-risk miles (§6.4 of the paper). Rather than pulling in
//! an external graph library, this crate implements the needed machinery
//! directly, in the spirit of a self-contained, auditable network stack:
//!
//! - [`Graph`] — a compact undirected adjacency-list graph with `f64` edge
//!   weights and stable node/edge identifiers.
//! - [`dijkstra`] — binary-heap Dijkstra: point-to-point queries with path
//!   reconstruction and full single-source trees.
//! - [`components`] — BFS reachability and connected components.
//! - [`centrality`] — weighted betweenness and articulation points (the
//!   criticality measures behind the failure analyses).
//! - [`yen`] — Yen's algorithm for k loopless shortest paths (used to offer
//!   ranked backup-route alternatives).
//! - [`mst`] — Kruskal minimum spanning tree (used to wire synthetic network
//!   backbones).
//! - [`gabriel`] — Gabriel-graph construction over metric point sets (used to
//!   synthesize realistic sparse PoP meshes).
//! - [`unionfind`] — the disjoint-set forest backing Kruskal and components.
//! - [`queue`] — the shared frontier comparator ([`CostEntry`]) and the
//!   monotone [`BucketQueue`] used by the continental-scale SSSP fast path.
//!
//! Weights must be non-negative and finite; [`Graph::add_edge`] enforces this
//! at the boundary so the algorithms never need defensive checks.
//!
//! # Example
//!
//! ```
//! use riskroute_graph::{Graph, dijkstra};
//!
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(0, 1, 1.0).unwrap();
//! g.add_edge(1, 2, 1.0).unwrap();
//! g.add_edge(0, 2, 5.0).unwrap();
//! g.add_edge(2, 3, 1.0).unwrap();
//!
//! let (cost, path) = dijkstra::shortest_path(&g, 0, 3).unwrap();
//! assert_eq!(cost, 3.0);
//! assert_eq!(path, vec![0, 1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod centrality;
pub mod components;
pub mod dijkstra;
pub mod gabriel;
pub mod graph;
pub mod mst;
pub mod queue;
pub mod unionfind;
pub mod yen;

pub use graph::{EdgeId, Graph, GraphError, NodeId};
pub use queue::{inv_quantum_for, BucketQueue, CostEntry};
