//! Centrality and criticality measures.
//!
//! RiskRoute's robustness story asks not only *where risk lives* but *which
//! PoPs the traffic cannot avoid*: a high-betweenness PoP inside a hurricane
//! belt is the worst of both worlds, and an articulation PoP is a structural
//! single point of failure regardless of weather. These measures drive the
//! criticality analyses layered on top of the paper's framework.

use crate::queue::CostEntry;
use crate::{Graph, NodeId};

/// Weighted betweenness centrality of every node (Brandes' algorithm over
/// non-negative edge weights).
///
/// Returns one score per node: the sum over all source/target pairs of the
/// fraction of shortest paths passing through the node (endpoints excluded).
/// Scores are for the undirected graph and are not normalized.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0; n];
    for s in 0..n {
        // Dijkstra with shortest-path DAG counting.
        let mut dist = vec![f64::INFINITY; n];
        let mut sigma = vec![0.0_f64; n]; // number of shortest paths
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order: Vec<NodeId> = Vec::new(); // settle order
        let mut settled = vec![false; n];
        dist[s] = 0.0;
        sigma[s] = 1.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(CostEntry { cost: 0.0, node: s });
        while let Some(CostEntry { cost: du, node: u }) = heap.pop() {
            if settled[u] {
                continue;
            }
            settled[u] = true;
            order.push(u);
            for (v, w, _) in g.neighbors(u) {
                let nd = du + w;
                if nd < dist[v] - 1e-12 {
                    dist[v] = nd;
                    sigma[v] = sigma[u];
                    preds[v] = vec![u];
                    heap.push(CostEntry { cost: nd, node: v });
                } else if (nd - dist[v]).abs() <= 1e-12 && !settled[v] {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        // Accumulate dependencies in reverse settle order.
        let mut delta = vec![0.0; n];
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                if sigma[w] > 0.0 {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    // Each undirected pair was counted from both endpoints.
    for c in &mut centrality {
        *c /= 2.0;
    }
    centrality
}

/// Articulation points: nodes whose removal disconnects their component
/// (Hopcroft–Tarjan, iterative).
///
/// Returns a sorted list of node ids. These are a network's structural
/// single points of failure — no backup route of any kind exists around
/// them.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut is_ap = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: stack of (node, next-neighbor index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        let adjacency: Vec<Vec<NodeId>> = (0..n)
            .map(|u| g.neighbors(u).map(|(v, _, _)| v).collect())
            .collect();
        while let Some(&(u, idx)) = stack.last() {
            if idx < adjacency[u].len() {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                let v = adjacency[u][idx];
                if disc[v] == usize::MAX {
                    parent[v] = Some(u);
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if parent[u] != Some(v) {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_ap[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_ap[root] = true;
        }
    }
    (0..n).filter(|&v| is_ap[v]).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    #![allow(clippy::needless_range_loop)]
    use super::*;

    /// A barbell: two triangles joined through a single bridge node.
    ///
    /// ```text
    /// 0-1   (0,1,2 triangle)   2-3 bridge   (3,4,5 triangle)
    /// ```
    fn barbell() -> Graph {
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 1.0).unwrap();
        g.add_edge(3, 5, 1.0).unwrap();
        g
    }

    #[test]
    fn bridge_endpoints_are_articulation_points() {
        let aps = articulation_points(&barbell());
        assert_eq!(aps, vec![2, 3]);
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0).unwrap();
        }
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn path_interior_nodes_are_articulation_points() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        assert_eq!(articulation_points(&g), vec![1, 2]);
    }

    #[test]
    fn disconnected_components_are_handled() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 1.0).unwrap();
        assert_eq!(articulation_points(&g), vec![1, 4]);
    }

    #[test]
    fn star_center_is_the_only_articulation_point() {
        let mut g = Graph::with_nodes(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1.0).unwrap();
        }
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn betweenness_peaks_at_the_bridge() {
        let c = betweenness(&barbell());
        // Nodes 2 and 3 carry all cross-triangle traffic.
        assert!(c[2] > c[0] && c[2] > c[1]);
        assert!(c[3] > c[4] && c[3] > c[5]);
        assert!((c[2] - c[3]).abs() < 1e-9, "symmetry");
    }

    #[test]
    fn betweenness_path_graph_known_values() {
        // Path 0-1-2-3-4: interior node k has (k+... ) known values:
        // node 1: pairs (0,2),(0,3),(0,4) → 3; node 2: (0,3),(0,4),(1,3),(1,4) → 4.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        let c = betweenness(&g);
        assert!((c[0] - 0.0).abs() < 1e-9);
        assert!((c[1] - 3.0).abs() < 1e-9);
        assert!((c[2] - 4.0).abs() < 1e-9);
        assert!((c[3] - 3.0).abs() < 1e-9);
        assert!((c[4] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_splits_over_equal_paths() {
        // A 4-cycle: each pair of opposite nodes has two equal shortest
        // paths; each interior node carries half a path per opposite pair.
        let mut g = Graph::with_nodes(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4, 1.0).unwrap();
        }
        let c = betweenness(&g);
        for v in 0..4 {
            assert!((c[v] - 0.5).abs() < 1e-9, "node {v}: {}", c[v]);
        }
    }

    #[test]
    fn weights_redirect_betweenness() {
        // Diamond where the southern route is much cheaper: the southern
        // waypoint gets all the centrality.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 10.0).unwrap(); // north
        g.add_edge(1, 3, 10.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap(); // south
        g.add_edge(2, 3, 1.0).unwrap();
        let c = betweenness(&g);
        assert!(c[2] > 0.9);
        assert!(c[1] < 0.1);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(betweenness(&Graph::new()).is_empty());
        assert!(articulation_points(&Graph::new()).is_empty());
        let g = Graph::with_nodes(1);
        assert_eq!(betweenness(&g), vec![0.0]);
        assert!(articulation_points(&g).is_empty());
    }
}
