//! Kruskal minimum spanning tree / forest.
//!
//! Used by the topology synthesizer to guarantee every generated network is
//! connected: a geographic MST forms the backbone, and Gabriel-graph edges
//! add the redundancy real ISP meshes exhibit.

use crate::unionfind::UnionFind;
use crate::{EdgeId, Graph};

/// The edge ids of a minimum spanning forest of `g` (a spanning *tree* when
/// `g` is connected), selected by Kruskal's algorithm.
///
/// Ties are broken by edge id, so the result is deterministic.
pub fn minimum_spanning_forest(g: &Graph) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = (0..g.edge_count()).collect();
    order.sort_by(|&a, &b| {
        g.edge_weight(a)
            .total_cmp(&g.edge_weight(b))
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(g.node_count());
    let mut chosen = Vec::new();
    for e in order {
        let (a, b) = g.edge_endpoints(e);
        if uf.union(a, b) {
            chosen.push(e);
            if chosen.len() + 1 == g.node_count() {
                break;
            }
        }
    }
    chosen
}

/// Total weight of the minimum spanning forest.
pub fn mst_weight(g: &Graph) -> f64 {
    minimum_spanning_forest(g)
        .iter()
        .map(|&e| g.edge_weight(e))
        .sum()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::components::is_connected;

    fn square_with_diagonals() -> Graph {
        // 4-cycle with weight 1 edges plus weight 10 diagonals.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(3, 0, 1.0).unwrap();
        g.add_edge(0, 2, 10.0).unwrap();
        g.add_edge(1, 3, 10.0).unwrap();
        g
    }

    #[test]
    fn tree_has_n_minus_one_edges() {
        let g = square_with_diagonals();
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), 3);
        assert_eq!(mst_weight(&g), 3.0);
    }

    #[test]
    fn avoids_heavy_edges() {
        let g = square_with_diagonals();
        for e in minimum_spanning_forest(&g) {
            assert!(g.edge_weight(e) < 10.0);
        }
    }

    #[test]
    fn spanning_tree_connects_graph() {
        let g = square_with_diagonals();
        let mst = minimum_spanning_forest(&g);
        let mut t = Graph::with_nodes(g.node_count());
        for e in mst {
            let (a, b) = g.edge_endpoints(e);
            t.add_edge(a, b, g.edge_weight(e)).unwrap();
        }
        assert!(is_connected(&t));
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 2.0).unwrap();
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(minimum_spanning_forest(&Graph::new()).is_empty());
        assert!(minimum_spanning_forest(&Graph::with_nodes(1)).is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        let first = minimum_spanning_forest(&g);
        assert_eq!(first, vec![0, 1], "lowest edge ids win ties");
    }
}
