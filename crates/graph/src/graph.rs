//! Compact undirected adjacency-list graph.

use std::fmt;

/// Node identifier: a dense index in `0..node_count()`.
pub type NodeId = usize;

/// Edge identifier: a dense index in `0..edge_count()`.
pub type EdgeId = usize;

/// Errors from graph construction and mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id at or beyond `node_count()`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Current number of nodes.
        count: usize,
    },
    /// Edge weight was negative, NaN, or infinite.
    InvalidWeight(f64),
    /// Self-loops are not meaningful for PoP-to-PoP links.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, count } => {
                write!(f, "node {node} out of range (graph has {count} nodes)")
            }
            GraphError::InvalidWeight(w) => {
                write!(f, "edge weight {w} must be finite and non-negative")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} rejected"),
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Edge {
    a: NodeId,
    b: NodeId,
    weight: f64,
}

/// An undirected graph with non-negative `f64` edge weights.
///
/// Nodes are dense indices; carry any per-node payload (PoP metadata, city
/// names, …) in a parallel `Vec` owned by the caller. Parallel edges are
/// permitted (two PoPs can be joined by distinct physical links); self-loops
/// are rejected.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency[n] = list of (neighbor, edge id)
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// A graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge between `a` and `b` with weight `w`.
    ///
    /// # Errors
    /// Rejects out-of-range nodes, self-loops, and invalid weights.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) -> Result<EdgeId, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidWeight(w));
        }
        let id = self.edges.len();
        self.edges.push(Edge { a, b, weight: w });
        self.adjacency[a].push((b, id));
        self.adjacency[b].push((a, id));
        Ok(id)
    }

    /// Endpoints `(a, b)` of edge `e`.
    ///
    /// # Panics
    /// Panics when `e` is out of range.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e];
        (edge.a, edge.b)
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    /// Panics when `e` is out of range.
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edges[e].weight
    }

    /// Replace the weight of edge `e`.
    ///
    /// # Errors
    /// Rejects invalid weights. Panics when `e` is out of range.
    pub fn set_edge_weight(&mut self, e: EdgeId, w: f64) -> Result<(), GraphError> {
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidWeight(w));
        }
        self.edges[e].weight = w;
        Ok(())
    }

    /// Iterate `(neighbor, weight, edge id)` over the edges incident to `n`.
    ///
    /// # Panics
    /// Panics when `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, f64, EdgeId)> + '_ {
        self.adjacency[n]
            .iter()
            .map(move |&(v, e)| (v, self.edges[e].weight, e))
    }

    /// Degree (number of incident edges) of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n].len()
    }

    /// Whether at least one edge joins `a` and `b`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a < self.node_count() && self.adjacency[a].iter().any(|&(v, _)| v == b)
    }

    /// The minimum-weight edge joining `a` and `b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a >= self.node_count() {
            return None;
        }
        self.adjacency[a]
            .iter()
            .filter(|&&(v, _)| v == b)
            .map(|&(_, e)| e)
            .min_by(|&x, &y| self.edges[x].weight.total_cmp(&self.edges[y].weight))
    }

    /// Iterate `(edge id, a, b, weight)` over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, f64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.a, e.b, e.weight))
    }

    /// Total weight over all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n,
                count: self.node_count(),
            })
        }
    }
}

impl riskroute_json::ToJson for Graph {
    fn to_json(&self) -> riskroute_json::Json {
        use riskroute_json::Json;
        Json::obj([
            ("nodes", Json::Num(self.node_count() as f64)),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|e| {
                            Json::Arr(vec![
                                Json::Num(e.a as f64),
                                Json::Num(e.b as f64),
                                Json::Num(e.weight),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl riskroute_json::FromJson for Graph {
    fn from_json(v: &riskroute_json::Json) -> Result<Self, riskroute_json::JsonError> {
        use riskroute_json::JsonError;
        let nodes = v.field("nodes")?.as_usize()?;
        let mut g = Graph::with_nodes(nodes);
        for edge in v.field("edges")?.as_arr()? {
            let parts = edge.as_arr()?;
            if parts.len() != 3 {
                return Err(JsonError::Shape("edge must be [a, b, weight]".to_string()));
            }
            let (a, b) = (parts[0].as_usize()?, parts[1].as_usize()?);
            let w = parts[2].as_f64()?;
            g.add_edge(a, b, w)
                .map_err(|e| JsonError::Shape(e.to_string()))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(3);
        let e = g.add_edge(0, 1, 2.5).unwrap();
        assert_eq!(g.edge_endpoints(e), (0, 1));
        assert_eq!(g.edge_weight(e), 2.5);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        let n = g.add_node();
        assert_eq!(n, 3);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(0, 1, -1.0), Err(GraphError::InvalidWeight(-1.0)));
        assert!(g.add_edge(0, 1, f64::NAN).is_err());
        assert!(g.add_edge(0, 1, f64::INFINITY).is_err());
        assert!(g.add_edge(0, 1, 0.0).is_ok(), "zero weight is legal");
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange { node: 5, count: 2 })
        );
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 2.0).unwrap();
        let n0: Vec<_> = g.neighbors(0).map(|(v, w, _)| (v, w)).collect();
        assert_eq!(n0, vec![(1, 1.0), (2, 2.0)]);
        let n1: Vec<_> = g.neighbors(1).map(|(v, w, _)| (v, w)).collect();
        assert_eq!(n1, vec![(0, 1.0)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn has_edge_and_find_edge() {
        let mut g = Graph::with_nodes(3);
        let heavy = g.add_edge(0, 1, 9.0).unwrap();
        let light = g.add_edge(0, 1, 1.0).unwrap(); // parallel edge
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.find_edge(0, 1), Some(light));
        assert_ne!(g.find_edge(0, 1), Some(heavy));
        assert_eq!(g.find_edge(2, 0), None);
        assert_eq!(g.find_edge(99, 0), None);
    }

    #[test]
    fn set_edge_weight_updates_neighbors_view() {
        let mut g = Graph::with_nodes(2);
        let e = g.add_edge(0, 1, 1.0).unwrap();
        g.set_edge_weight(e, 4.0).unwrap();
        let (_, w, _) = g.neighbors(0).next().unwrap();
        assert_eq!(w, 4.0);
        assert!(g.set_edge_weight(e, f64::NAN).is_err());
        assert_eq!(g.edge_weight(e), 4.0, "failed update must not corrupt");
    }

    #[test]
    fn edges_iterator_and_total_weight() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.5).unwrap();
        g.add_edge(1, 2, 2.5).unwrap();
        assert_eq!(g.edges().count(), 2);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn json_round_trip() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.5).unwrap();
        let json = riskroute_json::to_string(&g);
        let back: Graph = riskroute_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(back.edge_weight(0), 1.5);
    }
}
