//! Disjoint-set forest (union-find) with path halving and union by rank.

/// A disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    /// Panics when `x >= len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets containing `a` and `b`. Returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 3));
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = UnionFind::new(2);
        assert!(!uf.union(1, 1));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
