//! BFS reachability and connected components.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// The set of nodes reachable from `source` (including `source`), in BFS
/// order.
///
/// # Panics
/// Panics when `source` is out of range.
pub fn reachable_from(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(source < g.node_count(), "source out of range");
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _, _) in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Connected components, each a sorted list of node ids; components are
/// ordered by their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for (v, _, _) in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether every node can reach every other node. Vacuously true for graphs
/// with fewer than two nodes.
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() < 2 {
        return true;
    }
    reachable_from(g, 0).len() == g.node_count()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn two_islands() -> Graph {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g
    }

    #[test]
    fn reachability_stops_at_island_boundary() {
        let g = two_islands();
        let r = reachable_from(&g, 0);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&2));
        assert!(!r.contains(&3));
    }

    #[test]
    fn components_partition_nodes() {
        let g = two_islands();
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let g = Graph::with_nodes(3);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connectivity_flags() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(!is_connected(&two_islands()));
        let mut g = two_islands();
        g.add_edge(2, 3, 1.0).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn bfs_order_starts_at_source() {
        let g = two_islands();
        assert_eq!(reachable_from(&g, 3)[0], 3);
    }
}
