//! Yen's algorithm for k loopless shortest paths.
//!
//! RiskRoute's practical deployments (§3.1 of the paper) need *ranked backup
//! alternatives*: if the minimum bit-risk-mile path is unusable (safety
//! checks, MPLS constraints), the operator wants the next-best loopless
//! paths. Yen's algorithm enumerates them in non-decreasing cost order.

use crate::dijkstra;
use crate::{Graph, NodeId};

/// A ranked path with its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPath {
    /// Total weight along the path.
    pub cost: f64,
    /// Node sequence from source to target.
    pub nodes: Vec<NodeId>,
}

/// Up to `k` loopless shortest paths from `s` to `t` in non-decreasing cost
/// order. Returns fewer than `k` when the graph does not contain that many
/// distinct loopless paths, and an empty vector when `t` is unreachable.
///
/// # Panics
/// Panics when `s` or `t` is out of range, or `k == 0`.
pub fn k_shortest_paths(g: &Graph, s: NodeId, t: NodeId, k: usize) -> Vec<RankedPath> {
    assert!(k > 0, "k must be positive");
    let Some((cost, nodes)) = dijkstra::shortest_path(g, s, t) else {
        return Vec::new();
    };
    let mut found = vec![RankedPath { cost, nodes }];
    let mut candidates: Vec<RankedPath> = Vec::new();
    let mut spur_searches: u64 = 0;

    while found.len() < k {
        let Some(last) = found.last().cloned() else {
            break; // unreachable: `found` starts non-empty and only grows
        };
        // Each prefix of the last found path spawns a spur search.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root: &[NodeId] = &last.nodes[..=spur_idx];

            // Ban edges that would recreate an already-found path with this
            // root, and ban root nodes (except the spur) to keep paths
            // loopless. We emulate removal by masking during the search.
            let mut banned_edges = Vec::new();
            for p in found.iter().chain(candidates.iter()) {
                if p.nodes.len() > spur_idx + 1 && p.nodes[..=spur_idx] == *root {
                    banned_edges.push((p.nodes[spur_idx], p.nodes[spur_idx + 1]));
                }
            }
            let banned_nodes: Vec<NodeId> = root[..spur_idx].to_vec();

            spur_searches += 1;
            if let Some((spur_cost, spur_nodes)) =
                masked_shortest_path(g, spur_node, t, &banned_edges, &banned_nodes)
            {
                let root_cost = path_cost(g, root);
                let mut total_nodes = root[..spur_idx].to_vec();
                total_nodes.extend_from_slice(&spur_nodes);
                let candidate = RankedPath {
                    cost: root_cost + spur_cost,
                    nodes: total_nodes,
                };
                if !found.iter().any(|p| p.nodes == candidate.nodes)
                    && !candidates.iter().any(|p| p.nodes == candidate.nodes)
                {
                    candidates.push(candidate);
                }
            }
        }
        // Promote the cheapest candidate (stable tie-break on node sequence).
        if candidates.is_empty() {
            break;
        }
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| {
                x.cost
                    .total_cmp(&y.cost)
                    .then_with(|| x.nodes.cmp(&y.nodes))
            })
            .map(|(i, _)| i);
        let Some(best) = best else {
            break; // unreachable: candidates checked non-empty above
        };
        found.push(candidates.swap_remove(best));
    }
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("yen_runs", 1);
        riskroute_obs::counter_add("yen_spur_searches", spur_searches);
        riskroute_obs::counter_add("yen_paths_found", found.len() as u64);
    }
    found
}

/// Sum of minimum edge weights along consecutive node pairs of `path`.
fn path_cost(g: &Graph, path: &[NodeId]) -> f64 {
    path.windows(2)
        .map(|w| match g.find_edge(w[0], w[1]) {
            Some(e) => g.edge_weight(e),
            None => {
                // Roots come from previously found paths, so every
                // consecutive pair is adjacent; price a phantom hop as
                // unroutable rather than aborting.
                debug_assert!(false, "path edge {}-{} missing", w[0], w[1]);
                f64::INFINITY
            }
        })
        .sum()
}

/// Dijkstra over the graph with certain directed edges and nodes masked out.
fn masked_shortest_path(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    banned_edges: &[(NodeId, NodeId)],
    banned_nodes: &[NodeId],
) -> Option<(f64, Vec<NodeId>)> {
    use crate::queue::CostEntry;
    use std::collections::BinaryHeap;

    let n = g.node_count();
    let mut banned_node_mask = vec![false; n];
    for &b in banned_nodes {
        banned_node_mask[b] = true;
    }
    if banned_node_mask[s] || banned_node_mask[t] {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[s] = 0.0;
    heap.push(CostEntry { cost: 0.0, node: s });
    while let Some(CostEntry { cost, node }) = heap.pop() {
        if settled[node] {
            continue;
        }
        settled[node] = true;
        if node == t {
            break;
        }
        for (v, w, _) in g.neighbors(node) {
            if settled[v]
                || banned_node_mask[v]
                || banned_edges.contains(&(node, v))
                || banned_edges.contains(&(v, node))
            {
                continue;
            }
            let next = cost + w;
            if next < dist[v] {
                dist[v] = next;
                pred[v] = Some(node);
                heap.push(CostEntry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    if !dist[t].is_finite() {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while let Some(p) = pred[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some((dist[t], path))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// The standard Yen example graph.
    ///
    /// ```text
    /// 0 -3- 1 -4- 3
    /// |     |     |
    /// 2     1     2
    /// |     |     |
    /// 2 -2- 4 ... 5   (4-5 weight 2, 3-5 weight 1? see below)
    /// ```
    fn yen_graph() -> Graph {
        // Classic 6-node example (C=0,D=1,E=2,F=3,G=4,H=5):
        // C-D 3, C-E 2, D-F 4, E-D 1, E-F 2, E-G 3, F-H 1, G-H 2.
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1, 3.0).unwrap();
        g.add_edge(0, 2, 2.0).unwrap();
        g.add_edge(1, 3, 4.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        g.add_edge(2, 3, 2.0).unwrap();
        g.add_edge(2, 4, 3.0).unwrap();
        g.add_edge(3, 5, 1.0).unwrap();
        g.add_edge(4, 5, 2.0).unwrap();
        g
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 1);
        assert_eq!(paths.len(), 1);
        let (cost, nodes) = dijkstra::shortest_path(&g, 0, 5).unwrap();
        assert_eq!(paths[0].cost, cost);
        assert_eq!(paths[0].nodes, nodes);
    }

    #[test]
    fn classic_yen_top3() {
        // The classic directed example yields costs 5, 7, 8; in our
        // *undirected* rendering a second 7-cost path (C-D-E-F-H) appears,
        // so the top three costs are 5, 7, 7 and both 7-cost routes must be
        // among the top paths.
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].cost, 5.0);
        assert_eq!(paths[0].nodes, vec![0, 2, 3, 5]);
        assert_eq!(paths[1].cost, 7.0);
        assert_eq!(paths[2].cost, 7.0);
        let second_third: Vec<&Vec<usize>> = vec![&paths[1].nodes, &paths[2].nodes];
        assert!(second_third.contains(&&vec![0, 2, 4, 5]));
        assert!(second_third.contains(&&vec![0, 1, 2, 3, 5]));
    }

    #[test]
    fn costs_are_non_decreasing() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
    }

    #[test]
    fn paths_are_loopless_and_distinct() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            for &n in &p.nodes {
                assert!(seen.insert(n), "loop in {:?}", p.nodes);
            }
        }
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
    }

    #[test]
    fn exhausts_available_paths() {
        // A path graph has exactly one loopless route.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        let paths = k_shortest_paths(&g, 0, 2, 5);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn unreachable_gives_empty() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        assert!(k_shortest_paths(&g, 0, 2, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let g = yen_graph();
        let _ = k_shortest_paths(&g, 0, 5, 0);
    }
}
