//! Shared cost-ordered frontier machinery for every shortest-path call site.
//!
//! All Dijkstra variants in the workspace order their frontier the same
//! way: by `f64` cost ascending (via `total_cmp`, so the order is total
//! even for pathological values), tie-broken toward the lower node index.
//! [`CostEntry`] packages that comparator once so `graph::dijkstra`,
//! `graph::yen`, `graph::centrality`, and the risk engine in the core crate
//! all break ties identically.
//!
//! [`BucketQueue`] is the continental-scale replacement for
//! `BinaryHeap<CostEntry>`: a monotone bucket queue over integer-quantized
//! costs. Its pop sequence is **provably identical** to the heap's for any
//! monotone quantization, because within the lowest non-empty bucket it
//! selects the exact `(cost, node)` minimum:
//!
//! - the heap pops entries in `(cost, node)` order (a total order);
//! - the bucket queue pops in `(key, (cost, node))` order where
//!   `key = ⌊cost · inv_quantum⌋`;
//! - `inv_quantum > 0` and IEEE-754 multiplication/truncation are monotone,
//!   so `cost₁ ≤ cost₂ ⇒ key₁ ≤ key₂` — the two orders coincide.
//!
//! When `inv_quantum` is a power of two (see [`inv_quantum_for`]) the
//! multiply is a pure exponent shift (no rounding), so every cost that is
//! an exact multiple of the quantum lands exactly on its bucket boundary
//! and a bucket degenerates to a single cost class whose only tie-break is
//! the lowest node index.

use std::cmp::Ordering;

/// A frontier entry: the `cost` offered to reach `node`.
///
/// `Ord` is inverted (smaller cost = greater), so a
/// `std::collections::BinaryHeap<CostEntry>` pops the cheapest entry first;
/// ties break toward the lower node index. `total_cmp` keeps the order
/// total even if a NaN cost ever slips in (it sorts past infinity instead
/// of corrupting the heap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEntry {
    /// Offered path cost.
    pub cost: f64,
    /// Target node index.
    pub node: usize,
}

impl Eq for CostEntry {}

impl Ord for CostEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for CostEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact min-first order (the order a `BinaryHeap<CostEntry>` pops in).
#[inline]
fn min_first(a: &CostEntry, b: &CostEntry) -> Ordering {
    a.cost.total_cmp(&b.cost).then_with(|| a.node.cmp(&b.node))
}

/// Buckets a mean-sized relaxation step should advance the frontier by.
///
/// The ring holds [`RING_SLOTS`] buckets, so this targets ~4 mean steps of
/// in-window headroom. The value is deliberately large: the frontier of a
/// continental-scale Dijkstra holds hundreds of entries spread over only a
/// couple of mean steps of cost, and a coarse quantum would pile them into
/// a few buckets whose linear min-scans then dominate the pop (measured:
/// at 4 buckets/step a 10k-PoP sweep averaged ~13 chain steps per pop and
/// lost to the binary heap; at 256 chains are ~1 entry and it wins).
const BUCKETS_PER_MEAN_STEP: f64 = (RING_SLOTS / 4) as f64;

/// The power of two nearest `BUCKETS_PER_MEAN_STEP / mean_step`, the
/// quantization factor that spreads a frontier spanning a few mean-sized
/// relaxation steps across the whole ring. A power of two makes
/// `cost · inv_quantum` a pure exponent shift — exact for every
/// representable cost, so bucket boundaries never suffer rounding.
///
/// Returns `1.0` for a non-positive or non-finite `mean_step` (all-zero
/// graphs quantize trivially: every cost is key 0 and the queue
/// degenerates to the exact `(cost, node)` comparator).
pub fn inv_quantum_for_mean(mean_step: f64) -> f64 {
    if !(mean_step.is_finite() && mean_step > 0.0) {
        return 1.0;
    }
    let target = BUCKETS_PER_MEAN_STEP / mean_step;
    // Clamp the exponent so key arithmetic stays far inside u64 range even
    // for extreme weight scales.
    let e = target.log2().round().clamp(-40.0, 40.0) as i32;
    2f64.powi(e)
}

/// [`inv_quantum_for_mean`] over the mean of the positive finite weights
/// in a population. Callers whose step distribution has another additive
/// component (the risk engine adds per-node entry costs on top of edge
/// miles) should fold that component into the mean and call
/// [`inv_quantum_for_mean`] directly — quantizing on edge weights alone
/// makes buckets far too coarse when entry costs dominate.
pub fn inv_quantum_for<I: IntoIterator<Item = f64>>(weights: I) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for w in weights {
        if w.is_finite() && w > 0.0 {
            sum += w;
            n += 1;
        }
    }
    if n == 0 {
        return 1.0;
    }
    inv_quantum_for_mean(sum / n as f64)
}

/// Ring size: spans a window of `RING_SLOTS` cost quanta (~4 mean
/// relaxation steps at the default quantum), so in-window pushes and pops
/// are O(1).
const RING_SLOTS: usize = 1024;
const RING_WORDS: usize = RING_SLOTS / 64;

/// Arena slot: one queued entry plus the intrusive link to the next entry
/// in the same bucket ([`NO_ENTRY`] terminates the chain).
#[derive(Debug, Clone, Copy)]
struct ArenaEntry {
    entry: CostEntry,
    next: u32,
}

/// Chain terminator / empty-bucket marker.
const NO_ENTRY: u32 = u32::MAX;

/// A monotone bucket queue whose pop sequence is bit-identical to a
/// `BinaryHeap<CostEntry>` (see the module docs for the argument).
///
/// Layout: a ring of [`RING_SLOTS`] buckets covering the key window
/// `[cur_key, cur_key + RING_SLOTS)` with a per-word occupancy bitmap, plus
/// an overflow list for keys beyond the window. The window rebases onto the
/// overflow minimum whenever that minimum is due — `≤`, not `<`, so
/// equal-key entries always compete on the exact `(cost, node)` comparator
/// inside one bucket.
///
/// Buckets are intrusive linked lists threaded through one contiguous
/// entry arena (`entries`), with the list heads in one flat array — a push
/// is an arena append plus a head swap, and nothing is allocated per
/// bucket. The compact layout is what lets the queue beat `BinaryHeap`'s
/// very cache-friendly array at continental scale; a `Vec<Vec<CostEntry>>`
/// ring pays a scattered heap allocation per live bucket and loses.
/// Unlinked arena slots are abandoned until the next [`reset`](Self::reset)
/// (an O(1) `clear`), bounding arena growth by the pushes of one run.
///
/// Contract: pushed costs must be non-decreasing in the sense of Dijkstra
/// (never below the last popped cost). Out-of-order keys are clamped into
/// the current bucket, which preserves the exact pop order whenever the
/// contract holds and degrades gracefully (still a total drain) otherwise.
#[derive(Debug, Default)]
pub struct BucketQueue {
    entries: Vec<ArenaEntry>,
    /// Per-slot chain heads; empty until the first push, then exactly
    /// [`RING_SLOTS`] long (kept lazy so `Default`/`new` never allocate —
    /// the engine's arena `mem::take`s the queue on every run).
    head: Vec<u32>,
    occupied: [u64; RING_WORDS],
    overflow: Vec<(u64, CostEntry)>,
    overflow_min: u64,
    cur_key: u64,
    len: usize,
    inv_quantum: f64,
}

impl BucketQueue {
    /// An empty queue with quantization factor 1.0 (call [`reset`](Self::reset)
    /// with the snapshot's factor before each run). Allocation-free until
    /// the first push.
    pub fn new() -> Self {
        BucketQueue {
            entries: Vec::new(),
            head: Vec::new(),
            occupied: [0; RING_WORDS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cur_key: 0,
            len: 0,
            inv_quantum: 1.0,
        }
    }

    /// Empty the queue and install the quantization factor for the next
    /// run. Arena and ring capacities are retained, so steady-state reuse
    /// allocates nothing.
    pub fn reset(&mut self, inv_quantum: f64) {
        self.entries.clear();
        self.head.fill(NO_ENTRY);
        self.occupied = [0; RING_WORDS];
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cur_key = 0;
        self.len = 0;
        self.inv_quantum = if inv_quantum.is_finite() && inv_quantum > 0.0 {
            inv_quantum
        } else {
            1.0
        };
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn key_of(&self, cost: f64) -> u64 {
        // Saturating float→int cast; costs are finite and non-negative on
        // every engine path (sanitized upstream).
        (cost * self.inv_quantum) as u64
    }

    #[inline]
    fn set_bit(occupied: &mut [u64; RING_WORDS], slot: usize) {
        occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_bit(occupied: &mut [u64; RING_WORDS], slot: usize) {
        occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Link `e` into the ring bucket for in-window `key`.
    #[inline]
    fn link(&mut self, key: u64, e: CostEntry) {
        let slot = (key % RING_SLOTS as u64) as usize;
        let prev_head = self.head[slot];
        if prev_head == NO_ENTRY {
            Self::set_bit(&mut self.occupied, slot);
        }
        let idx = self.entries.len() as u32;
        self.entries.push(ArenaEntry {
            entry: e,
            next: prev_head,
        });
        self.head[slot] = idx;
    }

    /// Queue an entry.
    pub fn push(&mut self, e: CostEntry) {
        if self.head.is_empty() {
            self.head.resize(RING_SLOTS, NO_ENTRY);
        }
        let mut key = self.key_of(e.cost);
        if self.len == 0 {
            // An empty queue has no ordering constraints; rebase on the
            // first entry so the ring window starts where the costs are.
            self.cur_key = key;
        }
        if key < self.cur_key {
            key = self.cur_key;
        }
        if key - self.cur_key < RING_SLOTS as u64 {
            self.link(key, e);
        } else {
            self.overflow_min = self.overflow_min.min(key);
            self.overflow.push((key, e));
        }
        self.len += 1;
    }

    /// Smallest key present in the ring window, if any.
    fn scan_ring(&self) -> Option<u64> {
        let cur_slot = (self.cur_key % RING_SLOTS as u64) as usize;
        let (w0, b0) = (cur_slot / 64, cur_slot % 64);
        // Words in circular order starting at cur_slot give keys in
        // increasing order; the first word is split into its high bits
        // (keys ≥ cur_key) now and its low bits (wrapped keys) last.
        for wi in 0..=RING_WORDS {
            let w = (w0 + wi) % RING_WORDS;
            let mut word = self.occupied[w];
            if wi == 0 {
                word &= !0u64 << b0;
            } else if wi == RING_WORDS {
                word &= (1u64 << b0).wrapping_sub(1);
            }
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                let offset = (slot + RING_SLOTS - cur_slot) % RING_SLOTS;
                return Some(self.cur_key + offset as u64);
            }
        }
        None
    }

    /// Advance the window to the overflow minimum and pull every
    /// now-in-window overflow entry into the ring.
    fn rebase_to_overflow(&mut self) {
        self.cur_key = self.overflow_min;
        let mut next_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let (k, e) = self.overflow[i];
            if k - self.cur_key < RING_SLOTS as u64 {
                self.link(k, e);
                self.overflow.swap_remove(i);
            } else {
                next_min = next_min.min(k);
                i += 1;
            }
        }
        self.overflow_min = next_min;
    }

    /// Pop the globally minimal entry in exact `(cost, node)` order.
    pub fn pop(&mut self) -> Option<CostEntry> {
        if self.len == 0 {
            return None;
        }
        let mut ring_min = self.scan_ring();
        // The overflow minimum must compete before the window drains past
        // it: `≤` so equal keys still meet inside one bucket and resolve
        // on the exact comparator.
        if !self.overflow.is_empty() && ring_min.is_none_or(|k| self.overflow_min <= k) {
            self.rebase_to_overflow();
            ring_min = self.scan_ring();
        }
        let key = ring_min?;
        self.cur_key = key;
        let slot = (key % RING_SLOTS as u64) as usize;
        // Walk the bucket chain for the exact (cost, node) minimum,
        // remembering the link to splice it out.
        let mut best = self.head[slot];
        let mut best_prev = NO_ENTRY;
        let mut prev = best;
        let mut i = self.entries[best as usize].next;
        while i != NO_ENTRY {
            if min_first(
                &self.entries[i as usize].entry,
                &self.entries[best as usize].entry,
            ) == Ordering::Less
            {
                best = i;
                best_prev = prev;
            }
            prev = i;
            i = self.entries[i as usize].next;
        }
        let winner = self.entries[best as usize];
        if best_prev == NO_ENTRY {
            self.head[slot] = winner.next;
        } else {
            self.entries[best_prev as usize].next = winner.next;
        }
        if self.head[slot] == NO_ENTRY {
            Self::clear_bit(&mut self.occupied, slot);
        }
        self.len -= 1;
        Some(winner.entry)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_rng::StdRng;
    use std::collections::BinaryHeap;

    /// Drain both queues after identical pushes; sequences must agree
    /// entry-for-entry (bit-wise on cost).
    fn assert_matches_heap(entries: &[CostEntry], inv_quantum: f64) {
        let mut heap: BinaryHeap<CostEntry> = BinaryHeap::new();
        let mut bq = BucketQueue::new();
        bq.reset(inv_quantum);
        for &e in entries {
            heap.push(e);
            bq.push(e);
        }
        assert_eq!(bq.len(), entries.len());
        while let Some(h) = heap.pop() {
            let b = bq.pop().expect("bucket queue drained early");
            assert_eq!(h.cost.to_bits(), b.cost.to_bits());
            assert_eq!(h.node, b.node);
        }
        assert!(bq.pop().is_none());
        assert!(bq.is_empty());
    }

    #[test]
    fn empty_pops_none() {
        let mut bq = BucketQueue::new();
        assert!(bq.pop().is_none());
        bq.reset(8.0);
        assert!(bq.pop().is_none());
    }

    #[test]
    fn batch_drain_matches_heap_with_ties_and_zeros() {
        let entries = [
            CostEntry { cost: 3.5, node: 4 },
            CostEntry { cost: 0.0, node: 9 },
            CostEntry { cost: 3.5, node: 1 },
            CostEntry { cost: 0.0, node: 2 },
            CostEntry {
                cost: 3.5000000000000004,
                node: 0,
            },
            CostEntry { cost: 700.0, node: 3 },
        ];
        for q in [0.125, 1.0, 16.0] {
            assert_matches_heap(&entries, q);
        }
    }

    #[test]
    fn overflow_keys_compete_with_ring_keys() {
        // With inv_quantum 1.0, cost 5000 lands in overflow while 2.0 is in
        // the ring; a later push at 1500 also overflows. Pops must still
        // come out in global cost order.
        let mut bq = BucketQueue::new();
        bq.reset(1.0);
        bq.push(CostEntry { cost: 2.0, node: 1 });
        bq.push(CostEntry {
            cost: 5000.0,
            node: 2,
        });
        bq.push(CostEntry {
            cost: 1500.0,
            node: 3,
        });
        let order: Vec<usize> = std::iter::from_fn(|| bq.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn interleaved_monotone_simulation_matches_heap() {
        // A Dijkstra-shaped workload: pops interleaved with pushes whose
        // costs are the popped cost plus a random non-negative increment.
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50u64 {
            let inv = match trial % 3 {
                0 => 0.25,
                1 => 4.0,
                _ => 1024.0,
            };
            let mut heap: BinaryHeap<CostEntry> = BinaryHeap::new();
            let mut bq = BucketQueue::new();
            bq.reset(inv);
            let seed = CostEntry {
                cost: 0.0,
                node: (trial % 11) as usize,
            };
            heap.push(seed);
            bq.push(seed);
            // Finite push budget so the drain terminates: a length-based
            // cap would keep refilling the frontier forever.
            let mut budget = 300usize;
            while let Some(h) = heap.pop() {
                let b = bq.pop().expect("bucket queue drained early");
                assert_eq!(h.cost.to_bits(), b.cost.to_bits(), "trial {trial}");
                assert_eq!(h.node, b.node, "trial {trial}");
                if budget > 0 && rng.gen_f64() < 0.7 {
                    let fanout = (1 + (rng.next_u64() % 3) as usize).min(budget);
                    budget -= fanout;
                    for _ in 0..fanout {
                        // Mix zero, tiny, equal-cost, and huge increments.
                        let bump = match rng.next_u64() % 5 {
                            0 => 0.0,
                            1 => rng.gen_f64() * 1e-9,
                            2 => rng.gen_f64() * 3.0,
                            3 => rng.gen_f64() * 40.0,
                            _ => 500.0 + rng.gen_f64() * 5000.0,
                        };
                        let e = CostEntry {
                            cost: h.cost + bump,
                            node: (rng.next_u64() % 64) as usize,
                        };
                        heap.push(e);
                        bq.push(e);
                    }
                }
            }
            assert!(bq.pop().is_none(), "trial {trial}");
        }
    }

    #[test]
    fn reset_reuses_cleanly() {
        let mut bq = BucketQueue::new();
        for round in 0..3 {
            bq.reset(2.0);
            for i in 0..20 {
                bq.push(CostEntry {
                    cost: (i * 7 % 13) as f64 + round as f64,
                    node: i,
                });
            }
            let mut prev = f64::NEG_INFINITY;
            while let Some(e) = bq.pop() {
                assert!(e.cost >= prev);
                prev = e.cost;
            }
        }
    }

    #[test]
    fn inv_quantum_is_a_power_of_two_near_target_over_mean() {
        let q = inv_quantum_for([10.0, 20.0, 30.0]);
        // mean 20 → target 256/20 = 12.8 → nearest power of two 16.
        assert_eq!(q, 16.0);
        // Zero/non-finite weights are ignored; all-zero falls back to 1.
        assert_eq!(inv_quantum_for([0.0, f64::INFINITY]), 1.0);
        assert_eq!(inv_quantum_for(std::iter::empty()), 1.0);
        assert_eq!(inv_quantum_for_mean(0.0), 1.0);
        assert_eq!(inv_quantum_for_mean(f64::NAN), 1.0);
        let q = inv_quantum_for([1e-30]);
        assert!(q.is_finite() && q > 0.0, "exponent clamp keeps sane");
    }

    #[test]
    fn quantized_multiples_share_single_cost_buckets() {
        // Weights that are exact multiples of the quantum: every bucket
        // holds one cost class, so tie-break is pure node order.
        let mut bq = BucketQueue::new();
        bq.reset(4.0); // quantum 0.25
        for (cost, node) in [(0.5, 3), (0.5, 1), (0.75, 0), (0.5, 2)] {
            bq.push(CostEntry { cost, node });
        }
        let order: Vec<usize> = std::iter::from_fn(|| bq.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }
}
