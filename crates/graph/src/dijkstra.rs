//! Binary-heap Dijkstra shortest paths.
//!
//! Bit-risk-mile edge weights are non-negative by construction (distance plus
//! non-negative scaled risk), so Dijkstra is exact for the RiskRoute
//! optimization of Eq. 3 in the paper.

use crate::queue::CostEntry;
use crate::{Graph, NodeId};
use std::collections::BinaryHeap;

/// A single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    /// `dist[v]` = cost of the best path source→v, or `f64::INFINITY`.
    dist: Vec<f64>,
    /// `pred[v]` = previous node on the best path, `None` for source and
    /// unreachable nodes.
    pred: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// The source node this tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the best path to `t` (`f64::INFINITY` when unreachable).
    pub fn dist(&self, t: NodeId) -> f64 {
        self.dist[t]
    }

    /// All distances, indexed by node.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Whether `t` is reachable from the source.
    pub fn reachable(&self, t: NodeId) -> bool {
        self.dist[t].is_finite()
    }

    /// Reconstruct the node sequence source→t, or `None` if unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(t) {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.pred[cur] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }
}

/// Grow the full shortest-path tree from `source`.
///
/// # Panics
/// Panics when `source` is out of range.
pub fn sssp(g: &Graph, source: NodeId) -> ShortestPathTree {
    sssp_with_target(g, source, None)
}

/// Shortest path from `s` to `t` as `(cost, node sequence)`.
///
/// Returns `None` when `t` is unreachable from `s`. The search terminates as
/// soon as `t` is settled, so point-to-point queries are cheaper than a full
/// tree on large graphs.
///
/// # Panics
/// Panics when `s` or `t` is out of range.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId) -> Option<(f64, Vec<NodeId>)> {
    let tree = sssp_with_target(g, s, Some(t));
    let path = tree.path_to(t)?;
    Some((tree.dist(t), path))
}

/// Shortest-path cost from `s` to `t` without path reconstruction.
pub fn shortest_path_cost(g: &Graph, s: NodeId, t: NodeId) -> Option<f64> {
    let tree = sssp_with_target(g, s, Some(t));
    tree.reachable(t).then(|| tree.dist(t))
}

fn sssp_with_target(g: &Graph, source: NodeId, target: Option<NodeId>) -> ShortestPathTree {
    let n = g.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    if let Some(t) = target {
        assert!(t < n, "target {t} out of range ({n} nodes)");
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(CostEntry {
        cost: 0.0,
        node: source,
    });

    // Hot loop: accumulate plain locals and publish to the collector once
    // at the end, so the disabled-mode cost stays a single branch.
    let mut pops: u64 = 0;
    let mut relaxations: u64 = 0;
    let mut heap_peak: usize = heap.len();

    while let Some(CostEntry { cost, node }) = heap.pop() {
        pops += 1;
        if settled[node] {
            continue;
        }
        settled[node] = true;
        if target == Some(node) {
            break;
        }
        for (v, w, _) in g.neighbors(node) {
            if settled[v] {
                continue;
            }
            let next = cost + w;
            if next < dist[v] {
                dist[v] = next;
                pred[v] = Some(node);
                relaxations += 1;
                heap.push(CostEntry {
                    cost: next,
                    node: v,
                });
                heap_peak = heap_peak.max(heap.len());
            }
        }
    }

    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("dijkstra_runs", 1);
        riskroute_obs::counter_add("dijkstra_pops", pops);
        riskroute_obs::counter_add("dijkstra_relaxations", relaxations);
        riskroute_obs::gauge_max("dijkstra_heap_peak", heap_peak as f64);
    }

    ShortestPathTree { source, dist, pred }
}

/// All-pairs shortest-path distances as a dense `n × n` matrix
/// (`result[s][t]`, `f64::INFINITY` for unreachable pairs).
///
/// Runs one Dijkstra per node; for the ≤233-PoP networks of the paper this is
/// a few milliseconds. For repeated calls with changing weights prefer the
/// caching in `riskroute::intradomain`.
pub fn all_pairs(g: &Graph) -> Vec<Vec<f64>> {
    (0..g.node_count())
        .map(|s| sssp(g, s).distances().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    #![allow(clippy::needless_range_loop)]
    use super::*;

    /// A small diamond with a tempting-but-costly direct edge.
    ///
    /// ```text
    ///       1
    ///    /     \
    ///   0 ------ 2 --- 3
    ///     (5.0)
    /// ```
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 5.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g
    }

    #[test]
    fn finds_cheaper_two_hop_path() {
        let g = diamond();
        let (cost, path) = shortest_path(&g, 0, 2).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let g = diamond();
        let (cost, path) = shortest_path(&g, 1, 1).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(path, vec![1]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = diamond();
        let island = g.add_node();
        assert_eq!(shortest_path(&g, 0, island), None);
        assert_eq!(shortest_path_cost(&g, 0, island), None);
        let tree = sssp(&g, 0);
        assert!(!tree.reachable(island));
        assert_eq!(tree.dist(island), f64::INFINITY);
        assert_eq!(tree.path_to(island), None);
    }

    #[test]
    fn sssp_distances_match_point_queries() {
        let g = diamond();
        let tree = sssp(&g, 0);
        for t in 0..g.node_count() {
            assert_eq!(Some(tree.dist(t)), shortest_path_cost(&g, 0, t));
        }
        assert_eq!(tree.source(), 0);
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 0.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        let (cost, path) = shortest_path(&g, 0, 2).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 7.0).unwrap();
        g.add_edge(0, 1, 3.0).unwrap();
        let (cost, _) = shortest_path(&g, 0, 1).unwrap();
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost routes 0→1→3 and 0→2→3; repeated runs must agree.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let first = shortest_path(&g, 0, 3).unwrap();
        for _ in 0..5 {
            assert_eq!(shortest_path(&g, 0, 3).unwrap(), first);
        }
    }

    #[test]
    fn all_pairs_symmetric_for_undirected() {
        let g = diamond();
        let d = all_pairs(&g);
        for s in 0..4 {
            assert_eq!(d[s][s], 0.0);
            for t in 0..4 {
                assert!((d[s][t] - d[t][s]).abs() < 1e-12);
            }
        }
        assert_eq!(d[0][3], 3.0);
    }

    #[test]
    fn path_edges_exist_in_graph() {
        let g = diamond();
        let (_, path) = shortest_path(&g, 0, 3).unwrap();
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = diamond();
        let _ = sssp(&g, 99);
    }
}
