//! Deterministic, dependency-free randomness for the whole workspace.
//!
//! Every stochastic component (event samplers, census jitter, topology
//! synthesis, chaos fault plans) derives its generator from an explicit
//! `u64` seed through [`StdRng`], a xoshiro256++ generator seeded via
//! SplitMix64. The stream is stable across platforms and Rust versions, so
//! experiments regenerate bit-identically everywhere.
//!
//! The API mirrors the subset of the `rand` crate the workspace uses
//! (`seed_from_u64`, `gen`, `gen_range`, slice shuffling, weighted
//! sampling) so call sites read idiomatically, without the external
//! dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::ops::Range;

/// The workspace's standard deterministic generator: xoshiro256++ with
/// SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Seed the generator from a `u64` (SplitMix64-expanded, so nearby
    /// seeds produce uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (`u64`, `u32`, or `f64` in `[0, 1)`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a half-open range (`f64` or `usize` ranges).
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample {
    /// Draw one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.gen_f64()
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + (v % span) as usize;
            }
        }
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + v % span;
            }
        }
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// A uniformly chosen element, `None` for an empty slice.
    fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn shuffle(&mut self, rng: &mut StdRng) {
        rng.shuffle(self);
    }
    fn choose(&self, rng: &mut StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Errors from [`WeightedIndex`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightError {
    /// No weights supplied.
    Empty,
    /// A weight was negative or non-finite, or all weights were zero.
    InvalidWeight,
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::Empty => write!(f, "no weights supplied"),
            WeightError::InvalidWeight => {
                write!(f, "weights must be finite, non-negative, and not all zero")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Weighted index sampling (CDF inversion), mirroring
/// `rand::distributions::WeightedIndex`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from non-negative weights.
    ///
    /// # Errors
    /// Rejects empty, negative, non-finite, or all-zero weight sets.
    pub fn new(weights: &[f64]) -> Result<Self, WeightError> {
        if weights.is_empty() {
            return Err(WeightError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(WeightError::InvalidWeight);
        }
        Ok(WeightedIndex { cumulative, total })
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let ticket = rng.gen_f64() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&ticket).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// A seeded standard generator (convenience constructor).
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn reproducible_streams() {
        let a: Vec<u64> = (0..8).map(|_| seeded(7).next_u64()).collect();
        let mut rng = seeded(7);
        let b: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(a[0], b[0]);
        assert_ne!(b[0], b[1], "stream advances");
        assert_ne!(seeded(7).next_u64(), seeded(8).next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = seeded(1);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = seeded(2);
        for _ in 0..10_000 {
            let f = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&f));
            let u = rng.gen_range(10..20usize);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = seeded(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = seeded(4);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let xs = [1, 2, 3];
        let mut rng = seeded(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let wi = WeightedIndex::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut rng = seeded(6);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(WeightedIndex::new(&[]), Err(WeightError::Empty));
        assert_eq!(
            WeightedIndex::new(&[1.0, -1.0]),
            Err(WeightError::InvalidWeight)
        );
        assert_eq!(
            WeightedIndex::new(&[f64::NAN]),
            Err(WeightError::InvalidWeight)
        );
        assert_eq!(
            WeightedIndex::new(&[0.0, 0.0]),
            Err(WeightError::InvalidWeight)
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = seeded(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(!seeded(1).gen_bool(0.0));
        assert!(seeded(1).gen_bool(1.0));
    }
}
