//! Statistics substrate for the RiskRoute reproduction.
//!
//! Section 5.2 of the paper estimates geo-spatial outage likelihoods with
//! nonparametric Gaussian kernel density estimates, trains the kernel
//! bandwidth by 5-way cross validation scored with KL divergence (Table 1),
//! and Section 7.1.1 characterizes routing results with coefficients of
//! determination (Table 3). This crate implements all of that machinery:
//!
//! - [`kde`] — geodesic Gaussian kernel density estimation over
//!   latitude/longitude event sets, with grid evaluation.
//! - [`crossval`] — k-fold cross-validated bandwidth selection; the held-out
//!   score is average negative log-likelihood, which selects the same
//!   bandwidth as minimizing KL divergence from the true density (the
//!   entropy term is bandwidth-independent).
//! - [`kl`] — KL divergence, entropy, and cross-entropy over discrete
//!   distributions (used to compare density surfaces directly).
//! - [`regression`] — simple linear regression and R² (Table 3).
//! - [`describe`] — descriptive statistics used by the experiment harness.
//! - [`rng`] — deterministic seeding helpers so every experiment regenerates
//!   bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod binned;
pub mod crossval;
pub mod describe;
pub mod kde;
pub mod kl;
pub mod regression;
pub mod rng;

pub use binned::BinnedKde;
pub use crossval::{select_bandwidth, select_bandwidth_binned, BandwidthReport};
pub use kde::GeoKde;
pub use regression::LinearFit;
