//! KL divergence and related information measures over discrete
//! distributions.
//!
//! The paper scores bandwidth candidates with KL divergence (§5.2). The
//! cross-validation module uses the negative-log-likelihood equivalent; this
//! module provides the direct discrete form for comparing density *surfaces*
//! (e.g. a fitted KDE grid against a reference grid) and for the harness's
//! sanity checks.

/// KL divergence `D(p ‖ q) = Σ pᵢ ln(pᵢ/qᵢ)` in nats.
///
/// Inputs need not be normalized; both are normalized internally. Cells where
/// `p = 0` contribute zero. Returns `f64::INFINITY` when `q` assigns zero
/// mass to a cell where `p > 0` (absolute-continuity violation).
///
/// # Panics
/// Panics when lengths differ, either sum is non-positive, or any entry is
/// negative/non-finite.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    let (p, q) = normalize_pair(p, q);
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi == 0.0 {
                0.0
            } else if qi == 0.0 {
                f64::INFINITY
            } else {
                pi * (pi / qi).ln()
            }
        })
        .sum()
}

/// Symmetrized KL: `(D(p‖q) + D(q‖p)) / 2`.
pub fn symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    (kl_divergence(p, q) + kl_divergence(q, p)) / 2.0
}

/// Jensen–Shannon divergence in nats; always finite and in `[0, ln 2]`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    let (p, q) = normalize_pair(p, q);
    let m: Vec<f64> = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| (a + b) / 2.0)
        .collect();
    (kl_divergence(&p, &m) + kl_divergence(&q, &m)) / 2.0
}

/// Shannon entropy `H(p) = −Σ pᵢ ln pᵢ` in nats (input normalized
/// internally).
pub fn entropy(p: &[f64]) -> f64 {
    let p = normalize(p);
    p.iter()
        .map(|&pi| if pi > 0.0 { -pi * pi.ln() } else { 0.0 })
        .sum()
}

fn validate(v: &[f64]) {
    assert!(!v.is_empty(), "distribution must be non-empty");
    assert!(
        v.iter().all(|&x| x.is_finite() && x >= 0.0),
        "distribution entries must be finite and non-negative"
    );
}

fn normalize(v: &[f64]) -> Vec<f64> {
    validate(v);
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "distribution must have positive total mass");
    v.iter().map(|&x| x / total).collect()
}

fn normalize_pair(p: &[f64], q: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(p.len(), q.len(), "distributions must have equal length");
    (normalize(p), normalize(q))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.2, 0.7];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert!(kl_divergence(&q, &p) > 0.0);
    }

    #[test]
    fn kl_is_asymmetric_but_symmetrized_is_not() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
        assert!((symmetric_kl(&p, &q) - symmetric_kl(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn kl_known_value() {
        // D([1,0] ‖ [0.5,0.5]) = ln 2.
        let d = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        let d1 = kl_divergence(&[2.0, 2.0], &[1.0, 3.0]);
        let d2 = kl_divergence(&[0.5, 0.5], &[0.25, 0.75]);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn absolute_continuity_violation_is_infinite() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn zero_p_cells_contribute_nothing() {
        let d = kl_divergence(&[1.0, 0.0], &[0.9, 0.1]);
        assert!(d.is_finite());
    }

    #[test]
    fn js_is_bounded_and_symmetric() {
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 0.0, 1.0];
        let d = js_divergence(&p, &q);
        assert!(
            (d - std::f64::consts::LN_2).abs() < 1e-9,
            "disjoint supports hit ln 2"
        );
        assert!((js_divergence(&q, &p) - d).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let h = entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!((h - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        assert!(entropy(&[0.0, 1.0, 0.0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn zero_mass_panics() {
        let _ = entropy(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_entry_panics() {
        let _ = entropy(&[0.5, -0.5]);
    }
}
