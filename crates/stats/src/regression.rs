//! Simple linear regression and the coefficient of determination.
//!
//! Table 3 of the paper reports R² between regional-network characteristics
//! (PoP count, footprint, outdegree, …) and the observed risk-reduction /
//! distance-increase ratios.


/// An ordinary-least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of samples fitted.
    pub n: usize,
}

impl LinearFit {
    /// Fit `y` against `x` by ordinary least squares.
    ///
    /// # Panics
    /// Panics when the slices differ in length, contain fewer than two
    /// points, or contain non-finite values.
    pub fn fit(x: &[f64], y: &[f64]) -> LinearFit {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(x.len() >= 2, "need at least two points to fit a line");
        assert!(
            x.iter().chain(y.iter()).all(|v| v.is_finite()),
            "inputs must be finite"
        );
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxx: f64 = x.iter().map(|&v| (v - mx) * (v - mx)).sum();
        let sxy: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
        let syy: f64 = y.iter().map(|&v| (v - my) * (v - my)).sum();

        // Degenerate spreads: a constant x cannot explain y (slope 0, R²=0);
        // a constant y is explained perfectly by any horizontal line (R²=1).
        if sxx == 0.0 {
            return LinearFit {
                slope: 0.0,
                intercept: my,
                r_squared: if syy == 0.0 { 1.0 } else { 0.0 },
                n: x.len(),
            };
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            ((sxy * sxy) / (sxx * syy)).clamp(0.0, 1.0)
        };
        LinearFit {
            slope,
            intercept,
            r_squared,
            n: x.len(),
        }
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Pearson correlation coefficient between `x` and `y`.
///
/// # Panics
/// Same contract as [`LinearFit::fit`]. Returns 0 when either input has zero
/// variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&v| (v - mx) * (v - mx)).sum();
    let syy: f64 = y.iter().map(|&v| (v - my) * (v - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    let sxy: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation between `x` and `y` (Pearson over average
/// ranks, so ties are handled).
///
/// R² measures *linear* association; several of Table 3's relationships
/// (e.g. β ∝ 1/N) are monotone but curved, where rank correlation is the
/// fairer summary.
///
/// # Panics
/// Same contract as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points");
    pearson(&ranks(x), &ranks(y))
}

/// Average ranks (1-based; ties share the mean of their rank span).
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn spearman_detects_monotone_nonlinear_relations() {
        // y = 1/x is perfectly monotone (decreasing) but far from linear.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y: Vec<f64> = x.iter().map(|v| 1.0 / v).collect();
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12, "rank corr = −1");
        let r2 = LinearFit::fit(&x, &y).r_squared;
        assert!(r2 < 0.85, "linear fit misses the curvature: {r2}");
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_average_ranks() {
        assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
        assert_eq!(ranks(&[5.0, 5.0, 1.0]), vec![2.5, 2.5, 1.0]);
    }

    #[test]
    fn perfect_line_recovers_parameters() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v - 1.0).collect();
        let fit = LinearFit::fit(&x, &y);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 4);
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[1.0, 3.0]);
        assert!((fit.predict(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_data_has_partial_r_squared() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.2, 1.9, 3.4, 3.6, 5.3, 5.8];
        let fit = LinearFit::fit(&x, &y);
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
    }

    #[test]
    fn uncorrelated_data_has_low_r_squared() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [5.0, 1.0, 4.0, 2.0, 5.5, 0.5, 4.5, 1.5];
        let fit = LinearFit::fit(&x, &y);
        assert!(fit.r_squared < 0.2, "got {}", fit.r_squared);
    }

    #[test]
    fn constant_x_degenerate() {
        let fit = LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 0.0);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_degenerate() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.r_squared, 1.0);
        assert_eq!(fit.slope, 0.0);
    }

    #[test]
    fn r_squared_equals_squared_pearson() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 8.1, 9.8];
        let fit = LinearFit::fit(&x, &y);
        let r = pearson(&x, &y);
        assert!((fit.r_squared - r * r).abs() < 1e-12);
    }

    #[test]
    fn pearson_sign_tracks_direction() {
        let x = [1.0, 2.0, 3.0];
        assert!(pearson(&x, &[1.0, 2.0, 3.0]) > 0.99);
        assert!(pearson(&x, &[3.0, 2.0, 1.0]) < -0.99);
        assert_eq!(pearson(&x, &[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = LinearFit::fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = LinearFit::fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_input_panics() {
        let _ = LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]);
    }
}
