//! Geodesic Gaussian kernel density estimation.
//!
//! Equation 2 of the paper: for observed disaster events
//! `X = {x_1, …, x_N}`, the kernel likelihood at location `y` is
//!
//! ```text
//! p̂(y) = 1/(σ² N) · Σᵢ K((xᵢ − y)/σ),   K(z) = 1/(2π) · exp(−zᵀz/2)
//! ```
//!
//! We measure `‖xᵢ − y‖` as great-circle distance in **miles**, so the
//! bandwidth `σ` is in miles and densities are per square mile. At CONUS
//! scale the flat-metric Gaussian over geodesic distance is the standard
//! approximation (the same one the paper's kernel heat maps imply).

use riskroute_geo::distance::great_circle_miles;
use riskroute_geo::{GeoGrid, GeoPoint};
use std::f64::consts::TAU;

/// A fitted 2-D Gaussian kernel density estimate over geographic events.
#[derive(Debug, Clone)]
pub struct GeoKde {
    events: Vec<GeoPoint>,
    bandwidth_miles: f64,
}

impl GeoKde {
    /// Fit a KDE to `events` with the given bandwidth (miles).
    ///
    /// # Panics
    /// Panics when `events` is empty or the bandwidth is not positive/finite.
    /// These are programming errors — callers obtain events from samplers
    /// that cannot produce empty sets, and bandwidths from
    /// [`select_bandwidth`](crate::select_bandwidth) which only emits valid
    /// candidates.
    pub fn fit(events: Vec<GeoPoint>, bandwidth_miles: f64) -> Self {
        assert!(!events.is_empty(), "KDE requires at least one event");
        assert!(
            bandwidth_miles.is_finite() && bandwidth_miles > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_miles}"
        );
        GeoKde {
            events,
            bandwidth_miles,
        }
    }

    /// The fitted events.
    pub fn events(&self) -> &[GeoPoint] {
        &self.events
    }

    /// The kernel bandwidth in miles.
    pub fn bandwidth_miles(&self) -> f64 {
        self.bandwidth_miles
    }

    /// Density estimate `p̂(y)` in events per square mile.
    pub fn density(&self, y: GeoPoint) -> f64 {
        let s = self.bandwidth_miles;
        let norm = 1.0 / (TAU * s * s * self.events.len() as f64);
        let sum: f64 = self
            .events
            .iter()
            .map(|&x| {
                let z = great_circle_miles(x, y) / s;
                (-0.5 * z * z).exp()
            })
            .sum();
        norm * sum
    }

    /// Natural log of [`density`](Self::density), computed stably.
    ///
    /// Uses the log-sum-exp trick so the result is finite even when every
    /// event is many bandwidths away (where `density` underflows to zero,
    /// `log_density` still returns the correct large-negative value).
    pub fn log_density(&self, y: GeoPoint) -> f64 {
        let s = self.bandwidth_miles;
        let exponents: Vec<f64> = self
            .events
            .iter()
            .map(|&x| {
                let z = great_circle_miles(x, y) / s;
                -0.5 * z * z
            })
            .collect();
        let m = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = exponents.iter().map(|e| (e - m).exp()).sum();
        m + sum.ln() - (TAU * s * s * self.events.len() as f64).ln()
    }

    /// Evaluate the density at every cell center of `grid`, overwriting its
    /// values. Returns the grid for chaining.
    pub fn evaluate_grid(&self, mut grid: GeoGrid) -> GeoGrid {
        grid.fill_with(|p| self.density(p));
        grid
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::bbox::CONUS;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn density_peaks_at_events() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 50.0);
        let at_event = kde.density(pt(35.0, -90.0));
        let nearby = kde.density(pt(35.5, -90.0));
        let far = kde.density(pt(45.0, -120.0));
        assert!(at_event > nearby);
        assert!(nearby > far);
    }

    #[test]
    fn density_at_single_event_matches_closed_form() {
        let s = 50.0;
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], s);
        let expect = 1.0 / (TAU * s * s);
        assert!((kde.density(pt(35.0, -90.0)) - expect).abs() < 1e-12);
    }

    #[test]
    fn density_is_monotone_in_distance_for_single_event() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 100.0);
        let mut prev = f64::INFINITY;
        for d in [0.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            let y = riskroute_geo::distance::destination(pt(35.0, -90.0), 90.0, d);
            let v = kde.density(y);
            assert!(v < prev || d == 0.0);
            prev = v;
        }
    }

    #[test]
    fn wider_bandwidth_spreads_mass() {
        let events = vec![pt(35.0, -90.0)];
        let narrow = GeoKde::fit(events.clone(), 10.0);
        let wide = GeoKde::fit(events, 200.0);
        let far = pt(38.0, -90.0); // ~207 miles north
        assert!(wide.density(far) > narrow.density(far));
        assert!(narrow.density(pt(35.0, -90.0)) > wide.density(pt(35.0, -90.0)));
    }

    #[test]
    fn log_density_consistent_with_density() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0), pt(36.0, -91.0)], 80.0);
        let y = pt(35.5, -90.5);
        assert!((kde.log_density(y) - kde.density(y).ln()).abs() < 1e-9);
    }

    #[test]
    fn log_density_survives_underflow() {
        let kde = GeoKde::fit(vec![pt(25.0, -80.0)], 1.0);
        let antipode_ish = pt(49.0, -124.0);
        assert_eq!(kde.density(antipode_ish), 0.0, "density underflows");
        let ld = kde.log_density(antipode_ish);
        assert!(ld.is_finite() && ld < -1000.0, "got {ld}");
    }

    #[test]
    fn grid_mass_approximates_one() {
        // Integrating p̂ over a grid that comfortably contains the events
        // should give ≈ 1 (cell area × density summed).
        let events = vec![pt(37.0, -95.0), pt(38.0, -96.0), pt(36.5, -94.0)];
        let kde = GeoKde::fit(events, 60.0);
        let grid = GeoGrid::new(CONUS, 100, 200).unwrap();
        let grid = kde.evaluate_grid(grid);
        // Cell area varies with latitude; approximate with per-row area.
        let mut mass = 0.0;
        for (row, _col, center, v) in grid.iter_cells() {
            let lat_step_miles = grid.lat_step() * 69.055;
            let lon_step_miles = grid.lon_step() * 69.17 * center.lat_rad().cos();
            mass += v * lat_step_miles * lon_step_miles;
            let _ = row;
        }
        assert!((mass - 1.0).abs() < 0.05, "integrated mass {mass}");
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_events_panics() {
        let _ = GeoKde::fit(vec![], 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = GeoKde::fit(vec![pt(35.0, -90.0)], 0.0);
    }

    #[test]
    fn accessors() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 42.0);
        assert_eq!(kde.bandwidth_miles(), 42.0);
        assert_eq!(kde.events().len(), 1);
    }
}
