//! Geodesic Gaussian kernel density estimation.
//!
//! Equation 2 of the paper: for observed disaster events
//! `X = {x_1, …, x_N}`, the kernel likelihood at location `y` is
//!
//! ```text
//! p̂(y) = 1/(σ² N) · Σᵢ K((xᵢ − y)/σ),   K(z) = 1/(2π) · exp(−zᵀz/2)
//! ```
//!
//! We measure `‖xᵢ − y‖` as great-circle distance in **miles**, so the
//! bandwidth `σ` is in miles and densities are per square mile. At CONUS
//! scale the flat-metric Gaussian over geodesic distance is the standard
//! approximation (the same one the paper's kernel heat maps imply).

use crate::binned::TRUNCATION_SIGMAS;
use riskroute_geo::distance::great_circle_miles;
use riskroute_geo::{GeoGrid, GeoPoint, EARTH_RADIUS_MILES};
use std::f64::consts::TAU;

/// Miles per degree of latitude on the model sphere (`2πR/360`), so the
/// binned fast path and the haversine agree in the small-distance limit.
const MILES_PER_DEG_LAT: f64 = TAU * EARTH_RADIUS_MILES / 360.0;

/// Latitudes are clamped to this magnitude before taking cosines for the
/// longitude kernel, so grid margins that poke past the poles stay finite.
const MAX_KERNEL_LAT_DEG: f64 = 89.0;

/// A fitted 2-D Gaussian kernel density estimate over geographic events.
#[derive(Debug, Clone)]
pub struct GeoKde {
    events: Vec<GeoPoint>,
    bandwidth_miles: f64,
}

impl GeoKde {
    /// Fit a KDE to `events` with the given bandwidth (miles).
    ///
    /// # Panics
    /// Panics when `events` is empty or the bandwidth is not positive/finite.
    /// These are programming errors — callers obtain events from samplers
    /// that cannot produce empty sets, and bandwidths from
    /// [`select_bandwidth`](crate::select_bandwidth) which only emits valid
    /// candidates.
    pub fn fit(events: Vec<GeoPoint>, bandwidth_miles: f64) -> Self {
        assert!(!events.is_empty(), "KDE requires at least one event");
        assert!(
            bandwidth_miles.is_finite() && bandwidth_miles > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_miles}"
        );
        GeoKde {
            events,
            bandwidth_miles,
        }
    }

    /// The fitted events.
    pub fn events(&self) -> &[GeoPoint] {
        &self.events
    }

    /// The kernel bandwidth in miles.
    pub fn bandwidth_miles(&self) -> f64 {
        self.bandwidth_miles
    }

    /// Density estimate `p̂(y)` in events per square mile.
    pub fn density(&self, y: GeoPoint) -> f64 {
        let s = self.bandwidth_miles;
        let norm = 1.0 / (TAU * s * s * self.events.len() as f64);
        let sum: f64 = self
            .events
            .iter()
            .map(|&x| {
                let z = great_circle_miles(x, y) / s;
                (-0.5 * z * z).exp()
            })
            .sum();
        norm * sum
    }

    /// Natural log of [`density`](Self::density), computed stably.
    ///
    /// Uses the log-sum-exp trick so the result is finite even when every
    /// event is many bandwidths away (where `density` underflows to zero,
    /// `log_density` still returns the correct large-negative value).
    pub fn log_density(&self, y: GeoPoint) -> f64 {
        let s = self.bandwidth_miles;
        let exponents: Vec<f64> = self
            .events
            .iter()
            .map(|&x| {
                let z = great_circle_miles(x, y) / s;
                -0.5 * z * z
            })
            .collect();
        let m = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = exponents.iter().map(|e| (e - m).exp()).sum();
        m + sum.ln() - (TAU * s * s * self.events.len() as f64).ln()
    }

    /// Evaluate the density at every cell center of `grid`, overwriting its
    /// values. Returns the grid for chaining.
    ///
    /// This is the binned fast path: events are histogrammed onto the grid
    /// with linear (bilinear) binning, then convolved with a separable
    /// truncated Gaussian — one longitude pass per row (with that row's
    /// `cos(latitude)` metric) and one shared latitude pass. Cost is
    /// `O(cells · kernel_width)` instead of the exact path's
    /// `O(cells · events)`, which is what makes 100k-event corpora and
    /// continental grids tractable.
    ///
    /// Approximation error versus [`evaluate_grid_exact`](Self::evaluate_grid_exact):
    ///
    /// - **Truncation**: the kernel is cut at [`TRUNCATION_SIGMAS`]·σ,
    ///   discarding `exp(−½·5²) ≈ 3.7·10⁻⁶` of each event's peak value.
    /// - **Linear binning**: second-order in the cell size,
    ///   `O((cell_miles/σ)²)` relative; mass is conserved exactly.
    /// - **Metric**: equirectangular distance with per-row cosine instead of
    ///   the haversine — sub-percent at CONUS scale for the bandwidths in
    ///   play.
    ///
    /// When the kernel half-width explodes relative to the grid (tiny grids
    /// or huge bandwidths, where binning would cost more than it saves),
    /// this falls back to the exact path, so callers always get a sensible
    /// answer.
    pub fn evaluate_grid(&self, grid: GeoGrid) -> GeoGrid {
        match self.evaluate_grid_binned(grid) {
            Ok(done) => done,
            Err(grid) => self.evaluate_grid_exact(grid),
        }
    }

    /// Exact per-cell evaluation: [`density`](Self::density) at every cell
    /// center (`O(cells · events)`). The reference for the binned fast path's
    /// tolerance tests, and the fallback when binning is not worthwhile.
    pub fn evaluate_grid_exact(&self, mut grid: GeoGrid) -> GeoGrid {
        grid.fill_with(|p| self.density(p));
        grid
    }

    /// Binned separable evaluation; `Err(grid)` hands the untouched grid
    /// back when the kernel margins are out of proportion to the grid.
    fn evaluate_grid_binned(&self, mut grid: GeoGrid) -> Result<GeoGrid, GeoGrid> {
        let (rows, cols) = (grid.rows(), grid.cols());
        let (lat_step, lon_step) = (grid.lat_step(), grid.lon_step());
        let s = self.bandwidth_miles;
        let support = TRUNCATION_SIGMAS * s;

        // Kernel half-widths in cells. The latitude metric is uniform; the
        // longitude metric shrinks with cos(lat), so its worst case is the
        // extended row nearest a pole.
        let lat_step_miles = lat_step * MILES_PER_DEG_LAT;
        let m_lat = (support / lat_step_miles).ceil() as usize;
        if m_lat > 4 * rows.max(64) {
            return Err(grid);
        }
        let south = grid.bounds().south();
        let ext_lat = |er: usize| -> f64 {
            let lat = south + (er as f64 - m_lat as f64 + 0.5) * lat_step;
            lat.clamp(-MAX_KERNEL_LAT_DEG, MAX_KERNEL_LAT_DEG)
        };
        let rows_ext = rows + 2 * m_lat;
        let cos_min = (0..rows_ext)
            .map(|er| ext_lat(er).to_radians().cos())
            .fold(f64::INFINITY, f64::min);
        let m_lon = (support / (lon_step * MILES_PER_DEG_LAT * cos_min)).ceil() as usize;
        if m_lon > 4 * cols.max(64) {
            return Err(grid);
        }
        let cols_ext = cols + 2 * m_lon;

        // Linear binning: each event splits its unit mass bilinearly over
        // the four surrounding cell centers of the extended raster. Events
        // beyond the margins contribute less than the truncation tail to any
        // grid cell, so they are dropped (the normalization still counts
        // them, exactly as the truncated kernel would).
        let west = grid.bounds().west();
        let mut hist = vec![0.0_f64; rows_ext * cols_ext];
        for e in &self.events {
            let er = (e.lat() - south) / lat_step - 0.5 + m_lat as f64;
            let ec = (e.lon() - west) / lon_step - 0.5 + m_lon as f64;
            let (r0, c0) = (er.floor(), ec.floor());
            let (fr, fc) = (er - r0, ec - c0);
            for (dr, wr) in [(0_i64, 1.0 - fr), (1, fr)] {
                for (dc, wc) in [(0_i64, 1.0 - fc), (1, fc)] {
                    let (r, c) = (r0 as i64 + dr, c0 as i64 + dc);
                    if (0..rows_ext as i64).contains(&r) && (0..cols_ext as i64).contains(&c) {
                        hist[r as usize * cols_ext + c as usize] += wr * wc;
                    }
                }
            }
        }

        // Pass 1 — longitude smear within each extended row, using that
        // row's cos(latitude) metric (the events in the row sit at
        // approximately its latitude, matching the haversine's cosine term).
        let mut smeared = vec![0.0_f64; rows_ext * cols];
        let mut klon: Vec<f64> = Vec::with_capacity(m_lon + 1);
        for er in 0..rows_ext {
            let lon_step_miles = lon_step * MILES_PER_DEG_LAT * ext_lat(er).to_radians().cos();
            let m_row = ((support / lon_step_miles).ceil() as usize).min(m_lon);
            klon.clear();
            klon.extend((0..=m_row).map(|j| {
                let z = j as f64 * lon_step_miles / s;
                (-0.5 * z * z).exp()
            }));
            let row = &hist[er * cols_ext..(er + 1) * cols_ext];
            for (col, out) in smeared[er * cols..(er + 1) * cols].iter_mut().enumerate() {
                let center = col + m_lon;
                let mut acc = row[center] * klon[0];
                for (j, &k) in klon.iter().enumerate().skip(1) {
                    acc += (row[center - j] + row[center + j]) * k;
                }
                *out = acc;
            }
        }

        // Pass 2 — latitude smear across rows with one shared kernel.
        let klat: Vec<f64> = (0..=m_lat)
            .map(|i| {
                let z = i as f64 * lat_step_miles / s;
                (-0.5 * z * z).exp()
            })
            .collect();
        let norm = 1.0 / (TAU * s * s * self.events.len() as f64);
        for row in 0..rows {
            let center = row + m_lat;
            for col in 0..cols {
                let mut acc = smeared[center * cols + col] * klat[0];
                for (i, &k) in klat.iter().enumerate().skip(1) {
                    acc += (smeared[(center - i) * cols + col] + smeared[(center + i) * cols + col])
                        * k;
                }
                grid.set(row, col, acc * norm);
            }
        }
        if riskroute_obs::is_enabled() {
            riskroute_obs::counter_add("kde_binned_evals", 1);
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::bbox::CONUS;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn density_peaks_at_events() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 50.0);
        let at_event = kde.density(pt(35.0, -90.0));
        let nearby = kde.density(pt(35.5, -90.0));
        let far = kde.density(pt(45.0, -120.0));
        assert!(at_event > nearby);
        assert!(nearby > far);
    }

    #[test]
    fn density_at_single_event_matches_closed_form() {
        let s = 50.0;
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], s);
        let expect = 1.0 / (TAU * s * s);
        assert!((kde.density(pt(35.0, -90.0)) - expect).abs() < 1e-12);
    }

    #[test]
    fn density_is_monotone_in_distance_for_single_event() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 100.0);
        let mut prev = f64::INFINITY;
        for d in [0.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            let y = riskroute_geo::distance::destination(pt(35.0, -90.0), 90.0, d);
            let v = kde.density(y);
            assert!(v < prev || d == 0.0);
            prev = v;
        }
    }

    #[test]
    fn wider_bandwidth_spreads_mass() {
        let events = vec![pt(35.0, -90.0)];
        let narrow = GeoKde::fit(events.clone(), 10.0);
        let wide = GeoKde::fit(events, 200.0);
        let far = pt(38.0, -90.0); // ~207 miles north
        assert!(wide.density(far) > narrow.density(far));
        assert!(narrow.density(pt(35.0, -90.0)) > wide.density(pt(35.0, -90.0)));
    }

    #[test]
    fn log_density_consistent_with_density() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0), pt(36.0, -91.0)], 80.0);
        let y = pt(35.5, -90.5);
        assert!((kde.log_density(y) - kde.density(y).ln()).abs() < 1e-9);
    }

    #[test]
    fn log_density_survives_underflow() {
        let kde = GeoKde::fit(vec![pt(25.0, -80.0)], 1.0);
        let antipode_ish = pt(49.0, -124.0);
        assert_eq!(kde.density(antipode_ish), 0.0, "density underflows");
        let ld = kde.log_density(antipode_ish);
        assert!(ld.is_finite() && ld < -1000.0, "got {ld}");
    }

    #[test]
    fn grid_mass_approximates_one() {
        // Integrating p̂ over a grid that comfortably contains the events
        // should give ≈ 1 (cell area × density summed).
        let events = vec![pt(37.0, -95.0), pt(38.0, -96.0), pt(36.5, -94.0)];
        let kde = GeoKde::fit(events, 60.0);
        let grid = GeoGrid::new(CONUS, 100, 200).unwrap();
        let grid = kde.evaluate_grid(grid);
        // Cell area varies with latitude; approximate with per-row area.
        let mut mass = 0.0;
        for (row, _col, center, v) in grid.iter_cells() {
            let lat_step_miles = grid.lat_step() * 69.055;
            let lon_step_miles = grid.lon_step() * 69.17 * center.lat_rad().cos();
            mass += v * lat_step_miles * lon_step_miles;
            let _ = row;
        }
        assert!((mass - 1.0).abs() < 0.05, "integrated mass {mass}");
    }

    /// Deterministic seeded corpus scattered over the south-central US.
    fn seeded_corpus(seed: u64, n: usize) -> Vec<GeoPoint> {
        let mut rng = riskroute_rng::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lat = 28.0 + rng.gen_f64() * 14.0;
                let lon = -105.0 + rng.gen_f64() * 20.0;
                pt(lat, lon)
            })
            .collect()
    }

    #[test]
    fn binned_grid_matches_exact_within_tolerance() {
        for (seed, n, bw) in [(7_u64, 300_usize, 60.0_f64), (11, 80, 45.0), (13, 500, 90.0)] {
            let kde = GeoKde::fit(seeded_corpus(seed, n), bw);
            // Fine enough that cell/σ ≤ ~0.25 for the narrowest bandwidth:
            // the linear-binning error is O((cell/σ)²), so the tolerances
            // below are meaningful only when the raster resolves the kernel.
            let binned = kde.evaluate_grid(GeoGrid::new(CONUS, 160, 320).unwrap());
            let exact = kde.evaluate_grid_exact(GeoGrid::new(CONUS, 160, 320).unwrap());
            let peak = exact
                .iter_cells()
                .map(|(_, _, _, v)| v)
                .fold(0.0_f64, f64::max);
            let mut l1_num = 0.0;
            let mut l1_den = 0.0;
            for (row, col, _, e) in exact.iter_cells() {
                let b = binned.get(row, col);
                l1_num += (b - e).abs();
                l1_den += e;
                // Pointwise bounds track the O((cell/σ)²) linear-binning
                // error: tight where the surface carries real mass, looser
                // in the faint tails where the relative curvature blows up.
                let tol = if e > 0.05 * peak { 0.05 } else { 0.10 };
                if e > 0.01 * peak {
                    assert!(
                        (b - e).abs() / e < tol,
                        "seed {seed}: cell ({row},{col}) binned {b} vs exact {e}"
                    );
                }
            }
            assert!(
                l1_num / l1_den < 0.02,
                "seed {seed}: relative L1 error {}",
                l1_num / l1_den
            );
        }
    }

    #[test]
    fn binned_grid_falls_back_to_exact_for_disproportionate_kernels() {
        // A 1°×1° patch with a 2000-mile bandwidth: the truncated kernel is
        // thousands of cells wide, so the fast path must defer to the exact
        // one — bit-for-bit.
        let bounds = riskroute_geo::BoundingBox::new(35.0, -100.0, 36.0, -99.0).unwrap();
        let kde = GeoKde::fit(seeded_corpus(3, 20), 2000.0);
        let fast = kde.evaluate_grid(GeoGrid::new(bounds, 8, 8).unwrap());
        let exact = kde.evaluate_grid_exact(GeoGrid::new(bounds, 8, 8).unwrap());
        for (row, col, _, v) in exact.iter_cells() {
            assert_eq!(fast.get(row, col), v);
        }
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_events_panics() {
        let _ = GeoKde::fit(vec![], 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = GeoKde::fit(vec![pt(35.0, -90.0)], 0.0);
    }

    #[test]
    fn accessors() {
        let kde = GeoKde::fit(vec![pt(35.0, -90.0)], 42.0);
        assert_eq!(kde.bandwidth_miles(), 42.0);
        assert_eq!(kde.events().len(), 1);
    }
}
