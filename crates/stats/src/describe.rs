//! Descriptive statistics used by the experiment harness.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(v: &[f64]) -> Option<f64> {
    let m = mean(v)?;
    Some(v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(v: &[f64]) -> Option<f64> {
    variance(v).map(f64::sqrt)
}

/// Minimum (ignoring NaNs). Returns `None` when empty or all-NaN.
pub fn min(v: &[f64]) -> Option<f64> {
    v.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
}

/// Maximum (ignoring NaNs). Returns `None` when empty or all-NaN.
pub fn max(v: &[f64]) -> Option<f64> {
    v.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
}

/// Linear-interpolated percentile `p ∈ [0, 100]` of `v`.
/// Returns `None` when `v` is empty.
///
/// # Panics
/// Panics when `p` is outside `[0, 100]` or NaN.
pub fn percentile(v: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if v.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile). Returns `None` when empty.
pub fn median(v: &[f64]) -> Option<f64> {
    percentile(v, 50.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn empty_slices_give_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn basic_moments() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(variance(&v), Some(4.0));
        assert_eq!(std_dev(&v), Some(2.0));
    }

    #[test]
    fn min_max_ignore_nans() {
        let v = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(min(&v), Some(1.0));
        assert_eq!(max(&v), Some(3.0));
        assert_eq!(min(&[f64::NAN]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(percentile(&v, 25.0), Some(1.75));
    }

    #[test]
    fn single_element() {
        let v = [42.0];
        assert_eq!(mean(&v), Some(42.0));
        assert_eq!(variance(&v), Some(0.0));
        assert_eq!(median(&v), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
