//! K-fold cross-validated kernel bandwidth selection.
//!
//! The paper (§5.2) trains each event type's bandwidth with "5-way cross
//! validation (where the best bandwidth is found from 80 % of the observed
//! events to fit the remaining 20 %)", scored with KL divergence.
//!
//! Scoring held-out events by average negative log-likelihood selects exactly
//! the KL-minimizing bandwidth: `KL(p‖p̂_σ) = −H(p) − E_p[log p̂_σ]`, and the
//! entropy term does not depend on σ, so `argmin_σ KL = argmax_σ Σ log p̂_σ`
//! over held-out draws from `p`. We therefore report the mean held-out
//! negative log-likelihood as the "KL score" (equal to the KL divergence up
//! to the bandwidth-independent entropy constant).

use crate::kde::GeoKde;
use crate::rng::shuffled_indices;
use riskroute_geo::GeoPoint;

/// Outcome of a bandwidth search.
#[derive(Debug, Clone)]
pub struct BandwidthReport {
    /// The winning bandwidth in miles.
    pub best_bandwidth_miles: f64,
    /// Mean held-out negative log-likelihood at the winning bandwidth.
    pub best_score: f64,
    /// `(candidate bandwidth, score)` for every candidate evaluated.
    pub candidates: Vec<(f64, f64)>,
    /// Number of folds used.
    pub folds: usize,
}

/// Select the best bandwidth for `events` from `candidates` using `folds`-way
/// cross validation (the paper uses 5), deterministic under `seed`.
///
/// Returns the candidate minimizing mean held-out negative log-likelihood
/// (equivalently KL divergence; see module docs).
///
/// # Panics
/// Panics when `candidates` is empty, any candidate is non-positive, `folds
/// < 2`, or `events.len() < folds`.
pub fn select_bandwidth(
    events: &[GeoPoint],
    candidates: &[f64],
    folds: usize,
    seed: u64,
) -> BandwidthReport {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate bandwidth"
    );
    assert!(
        candidates.iter().all(|&c| c.is_finite() && c > 0.0),
        "candidate bandwidths must be positive"
    );
    assert!(folds >= 2, "cross validation needs at least 2 folds");
    assert!(
        events.len() >= folds,
        "need at least one event per fold ({} events, {} folds)",
        events.len(),
        folds
    );

    let order = shuffled_indices(events.len(), seed);
    let mut scored: Vec<(f64, f64)> = Vec::with_capacity(candidates.len());
    for &bw in candidates {
        let mut total_nll = 0.0;
        let mut held_out = 0usize;
        for fold in 0..folds {
            let (train, test) = split_fold(&order, folds, fold);
            let train_pts: Vec<GeoPoint> = train.iter().map(|&i| events[i]).collect();
            let kde = GeoKde::fit(train_pts, bw);
            for &i in &test {
                total_nll -= kde.log_density(events[i]);
                held_out += 1;
            }
        }
        scored.push((bw, total_nll / held_out as f64));
    }
    let Some((best_bandwidth_miles, best_score)) = scored
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
    else {
        unreachable!("candidates were asserted non-empty");
    };
    BandwidthReport {
        best_bandwidth_miles,
        best_score,
        candidates: scored,
        folds,
    }
}

/// Like [`select_bandwidth`] but built for *large* corpora: fits a
/// truncated, spatially-binned KDE ([`crate::BinnedKde`]) per fold and
/// scores at most `test_cap` held-out points per fold (deterministically
/// chosen). This is what makes cross-validating the paper's 143,847-event
/// NOAA wind corpus tractable.
///
/// Scores use the floored log density of [`crate::BinnedKde`], so candidates
/// whose truncation radius misses held-out points are penalized smoothly
/// rather than producing infinite scores.
///
/// # Panics
/// Same contract as [`select_bandwidth`], plus `test_cap > 0`.
pub fn select_bandwidth_binned(
    events: &[GeoPoint],
    candidates: &[f64],
    folds: usize,
    test_cap: usize,
    seed: u64,
) -> BandwidthReport {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate bandwidth"
    );
    assert!(
        candidates.iter().all(|&c| c.is_finite() && c > 0.0),
        "candidate bandwidths must be positive"
    );
    assert!(folds >= 2, "cross validation needs at least 2 folds");
    assert!(test_cap > 0, "test_cap must be positive");
    assert!(
        events.len() >= folds,
        "need at least one event per fold ({} events, {} folds)",
        events.len(),
        folds
    );

    let order = shuffled_indices(events.len(), seed);
    let mut scored: Vec<(f64, f64)> = Vec::with_capacity(candidates.len());
    for &bw in candidates {
        let mut total_nll = 0.0;
        let mut held_out = 0usize;
        for fold in 0..folds {
            let (train, test) = split_fold(&order, folds, fold);
            let train_pts: Vec<GeoPoint> = train.iter().map(|&i| events[i]).collect();
            let kde = crate::BinnedKde::fit(&train_pts, bw);
            for &i in test.iter().take(test_cap) {
                total_nll -= kde.log_density_floored(events[i]);
                held_out += 1;
            }
        }
        scored.push((bw, total_nll / held_out as f64));
    }
    let Some((best_bandwidth_miles, best_score)) = scored
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
    else {
        unreachable!("candidates were asserted non-empty");
    };
    BandwidthReport {
        best_bandwidth_miles,
        best_score,
        candidates: scored,
        folds,
    }
}

/// Split a shuffled index order into (train, test) for fold `fold` of
/// `folds`. Fold sizes differ by at most one.
fn split_fold(order: &[usize], folds: usize, fold: usize) -> (Vec<usize>, Vec<usize>) {
    let n = order.len();
    let base = n / folds;
    let extra = n % folds;
    // Folds 0..extra get base+1 elements.
    let start = fold * base + fold.min(extra);
    let len = base + usize::from(fold < extra);
    let test: Vec<usize> = order[start..start + len].to_vec();
    let train: Vec<usize> = order[..start]
        .iter()
        .chain(order[start + len..].iter())
        .copied()
        .collect();
    (train, test)
}

/// A geometric sweep of candidate bandwidths from `lo` to `hi` (inclusive)
/// with `steps >= 2` points — the standard grid for
/// [`select_bandwidth`].
///
/// # Panics
/// Panics unless `0 < lo < hi` and `steps >= 2`.
pub fn log_space(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(steps >= 2, "need at least two steps");
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_rng::StdRng;
    use riskroute_geo::distance::destination;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// Sample events from an isotropic Gaussian cloud (σ in miles) centered
    /// at `center`, via polar Box–Muller over geodesic offsets.
    fn gaussian_cloud(center: GeoPoint, sigma_miles: f64, n: usize, seed: u64) -> Vec<GeoPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = sigma_miles * (-2.0 * u1.ln()).sqrt();
                let theta = 360.0 * u2;
                destination(center, theta, r)
            })
            .collect()
    }

    #[test]
    fn split_fold_partitions_indices() {
        let order: Vec<usize> = (0..23).collect();
        let mut seen = [0u32; 23];
        for fold in 0..5 {
            let (train, test) = split_fold(&order, 5, fold);
            assert_eq!(train.len() + test.len(), 23);
            for &i in &test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            for &i in &test {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each index held out once");
    }

    #[test]
    fn fold_sizes_differ_by_at_most_one() {
        let order: Vec<usize> = (0..23).collect();
        let sizes: Vec<usize> = (0..5).map(|f| split_fold(&order, 5, f).1.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn log_space_endpoints_and_monotone() {
        let v = log_space(1.0, 100.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[4] - 100.0).abs() < 1e-9);
        for w in v.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn selects_reasonable_bandwidth_for_known_spread() {
        // Events from a σ=60-mile cloud: CV should prefer a mid candidate
        // over extreme under/over-smoothing.
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 200, 7);
        let report = select_bandwidth(&events, &[1.0, 30.0, 60.0, 120.0, 2000.0], 5, 11);
        assert!(
            (30.0..=120.0).contains(&report.best_bandwidth_miles),
            "picked {}",
            report.best_bandwidth_miles
        );
        assert_eq!(report.candidates.len(), 5);
        assert_eq!(report.folds, 5);
    }

    #[test]
    fn tighter_cloud_gets_smaller_bandwidth() {
        let cands = log_space(2.0, 500.0, 10);
        let tight = gaussian_cloud(pt(37.0, -95.0), 15.0, 150, 3);
        let loose = gaussian_cloud(pt(37.0, -95.0), 250.0, 150, 4);
        let bw_tight = select_bandwidth(&tight, &cands, 5, 9).best_bandwidth_miles;
        let bw_loose = select_bandwidth(&loose, &cands, 5, 9).best_bandwidth_miles;
        assert!(
            bw_tight < bw_loose,
            "tight {bw_tight} should be below loose {bw_loose}"
        );
    }

    #[test]
    fn more_events_shrink_bandwidth() {
        // Classic KDE behaviour: bandwidth shrinks as N grows (the paper
        // notes bandwidth "is, of course, dependent on the number of
        // historical events").
        let cands = log_space(2.0, 500.0, 12);
        let few = gaussian_cloud(pt(37.0, -95.0), 100.0, 30, 5);
        let many = gaussian_cloud(pt(37.0, -95.0), 100.0, 600, 5);
        let bw_few = select_bandwidth(&few, &cands, 5, 2).best_bandwidth_miles;
        let bw_many = select_bandwidth(&many, &cands, 5, 2).best_bandwidth_miles;
        assert!(
            bw_many <= bw_few,
            "many-events bw {bw_many} should not exceed few-events bw {bw_few}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 100, 1);
        let a = select_bandwidth(&events, &[10.0, 50.0, 250.0], 5, 42);
        let b = select_bandwidth(&events, &[10.0, 50.0, 250.0], 5, 42);
        assert_eq!(a.best_bandwidth_miles, b.best_bandwidth_miles);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn binned_selection_agrees_with_exact_on_moderate_corpus() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 300, 7);
        let cands = [5.0, 20.0, 60.0, 200.0];
        let exact = select_bandwidth(&events, &cands, 5, 11);
        let binned = select_bandwidth_binned(&events, &cands, 5, usize::MAX, 11);
        assert_eq!(exact.best_bandwidth_miles, binned.best_bandwidth_miles);
    }

    #[test]
    fn binned_selection_shrinks_bandwidth_with_corpus_size() {
        // The Table-1 phenomenon: denser corpora support tighter kernels.
        let cands = log_space(2.0, 500.0, 12);
        let small = gaussian_cloud(pt(37.0, -95.0), 150.0, 200, 5);
        let large = gaussian_cloud(pt(37.0, -95.0), 150.0, 8_000, 5);
        let bw_small = select_bandwidth_binned(&small, &cands, 5, 200, 2).best_bandwidth_miles;
        let bw_large = select_bandwidth_binned(&large, &cands, 5, 200, 2).best_bandwidth_miles;
        assert!(
            bw_large < bw_small,
            "large-corpus bw {bw_large} should be below small-corpus bw {bw_small}"
        );
    }

    #[test]
    fn binned_selection_is_deterministic() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 400, 3);
        let cands = [10.0, 50.0, 250.0];
        let a = select_bandwidth_binned(&events, &cands, 5, 100, 9);
        let b = select_bandwidth_binned(&events, &cands, 5, 100, 9);
        assert_eq!(a.best_bandwidth_miles, b.best_bandwidth_miles);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    #[should_panic(expected = "test_cap must be positive")]
    fn binned_zero_test_cap_panics() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 50, 3);
        let _ = select_bandwidth_binned(&events, &[10.0], 5, 0, 9);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 20, 1);
        let _ = select_bandwidth(&events, &[], 5, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 20, 1);
        let _ = select_bandwidth(&events, &[10.0], 1, 0);
    }

    #[test]
    #[should_panic(expected = "one event per fold")]
    fn too_few_events_panics() {
        let events = gaussian_cloud(pt(37.0, -95.0), 60.0, 3, 1);
        let _ = select_bandwidth(&events, &[10.0], 5, 0);
    }
}
