//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (event samplers, census block
//! jitter, cross-validation folds) takes an explicit `u64` seed and derives
//! its generator here, so experiments regenerate bit-identically across runs
//! and platforms.

pub use riskroute_rng::{SliceRandom, StdRng, WeightedIndex};

/// A seeded standard generator.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a sub-seed for a named component, so sibling components given the
/// same master seed do not accidentally share streams.
///
/// Uses the FNV-1a hash of the label folded into the seed — stable across
/// Rust versions (unlike `DefaultHasher`).
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ master;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A deterministic shuffled permutation of `0..n`.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    v.shuffle(&mut seeded(seed));
    v
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: u64 = seeded(7).gen();
        let b: u64 = seeded(7).gen();
        assert_eq!(a, b);
        let c: u64 = seeded(8).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_separates_labels() {
        let a = derive_seed(1, "hurricane");
        let b = derive_seed(1, "tornado");
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(1, "hurricane"));
        assert_ne!(a, derive_seed(2, "hurricane"));
    }

    #[test]
    fn shuffled_indices_is_permutation() {
        let v = shuffled_indices(100, 3);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "seed 3 should shuffle");
        assert_eq!(v, shuffled_indices(100, 3));
    }

    #[test]
    fn shuffled_indices_empty_and_single() {
        assert!(shuffled_indices(0, 1).is_empty());
        assert_eq!(shuffled_indices(1, 1), vec![0]);
    }
}
