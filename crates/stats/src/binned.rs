//! Spatially-binned KDE evaluation for large corpora.
//!
//! The paper's Table 1 trains bandwidths on corpora up to 143,847 events
//! (NOAA wind). Naive KDE scoring is `O(N)` per query — cross-validating the
//! wind corpus that way costs ~10¹¹ kernel evaluations. [`BinnedKde`] makes
//! full-corpus training tractable:
//!
//! - Points are projected to a local equirectangular plane in **miles**
//!   (exact for distance *differences* at CONUS scale to well under the
//!   kernel bandwidths in play).
//! - Points are hashed into square bins of the kernel bandwidth's size.
//! - The Gaussian kernel is truncated at [`TRUNCATION_SIGMAS`]·σ, so a query
//!   only visits nearby bins. The truncation discards `< 2·10⁻⁶` of kernel
//!   mass.
//!
//! Densities match [`GeoKde`](crate::GeoKde) to within the truncation and
//! projection error; use `GeoKde` when corpora are small and exactness
//! matters.

use riskroute_geo::GeoPoint;
use std::collections::HashMap;
use std::f64::consts::TAU;

/// Kernel support radius in bandwidths; `exp(-0.5·5²) ≈ 3.7e-6`.
pub const TRUNCATION_SIGMAS: f64 = 5.0;

/// Miles per degree of latitude (spherical mean).
const MILES_PER_DEG_LAT: f64 = 69.0547;

/// A KDE over projected points with spatial binning and kernel truncation.
#[derive(Debug, Clone)]
pub struct BinnedKde {
    /// Projected (x, y) in miles.
    points: Vec<(f64, f64)>,
    bandwidth_miles: f64,
    bin_size: f64,
    bins: HashMap<(i64, i64), Vec<u32>>,
    /// Projection reference: cos(latitude) at the corpus centroid.
    cos_ref: f64,
}

impl BinnedKde {
    /// Fit a binned KDE.
    ///
    /// # Panics
    /// Panics on an empty corpus or a non-positive/non-finite bandwidth.
    pub fn fit(events: &[GeoPoint], bandwidth_miles: f64) -> Self {
        assert!(!events.is_empty(), "KDE requires at least one event");
        assert!(
            bandwidth_miles.is_finite() && bandwidth_miles > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_miles}"
        );
        let mean_lat = events.iter().map(|p| p.lat()).sum::<f64>() / events.len() as f64;
        let cos_ref = mean_lat.to_radians().cos();
        let points: Vec<(f64, f64)> = events.iter().map(|p| project(*p, cos_ref)).collect();
        let bin_size = bandwidth_miles * TRUNCATION_SIGMAS;
        let mut bins: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, &(x, y)) in points.iter().enumerate() {
            bins.entry(bin_key(x, y, bin_size))
                .or_default()
                .push(i as u32);
        }
        BinnedKde {
            points,
            bandwidth_miles,
            bin_size,
            bins,
            cos_ref,
        }
    }

    /// The kernel bandwidth in miles.
    pub fn bandwidth_miles(&self) -> f64 {
        self.bandwidth_miles
    }

    /// Number of fitted events.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE is empty (never true — construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Truncated density estimate in events per square mile.
    pub fn density(&self, y: GeoPoint) -> f64 {
        let (qx, qy) = project(y, self.cos_ref);
        let s = self.bandwidth_miles;
        let cutoff2 = (TRUNCATION_SIGMAS * s) * (TRUNCATION_SIGMAS * s);
        let (bx, by) = bin_key(qx, qy, self.bin_size);
        let mut sum = 0.0;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(idxs) = self.bins.get(&(bx + dx, by + dy)) {
                    for &i in idxs {
                        let (px, py) = self.points[i as usize];
                        let d2 = (px - qx) * (px - qx) + (py - qy) * (py - qy);
                        if d2 <= cutoff2 {
                            sum += (-0.5 * d2 / (s * s)).exp();
                        }
                    }
                }
            }
        }
        sum / (TAU * s * s * self.points.len() as f64)
    }

    /// Log density with an underflow floor: where truncation yields exactly
    /// zero, returns the log of the density a single event at the truncation
    /// boundary would contribute (a smooth pessimistic floor, keeping CV
    /// scores finite).
    pub fn log_density_floored(&self, y: GeoPoint) -> f64 {
        let d = self.density(y);
        let floor = (-0.5 * TRUNCATION_SIGMAS * TRUNCATION_SIGMAS).exp()
            / (TAU * self.bandwidth_miles * self.bandwidth_miles * self.points.len() as f64);
        d.max(floor).ln()
    }
}

fn project(p: GeoPoint, cos_ref: f64) -> (f64, f64) {
    (
        p.lon() * MILES_PER_DEG_LAT * cos_ref,
        p.lat() * MILES_PER_DEG_LAT,
    )
}

fn bin_key(x: f64, y: f64, bin: f64) -> (i64, i64) {
    ((x / bin).floor() as i64, (y / bin).floor() as i64)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::kde::GeoKde;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn cloud() -> Vec<GeoPoint> {
        // Deterministic lattice cloud around Kansas.
        let mut v = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                v.push(pt(37.0 + 0.08 * i as f64, -99.0 + 0.1 * j as f64));
            }
        }
        v
    }

    #[test]
    fn matches_exact_kde_near_mass() {
        let events = cloud();
        let binned = BinnedKde::fit(&events, 40.0);
        let exact = GeoKde::fit(events.clone(), 40.0);
        for q in [pt(37.5, -98.5), pt(37.0, -99.0), pt(38.2, -97.9)] {
            let a = binned.density(q);
            let b = exact.density(q);
            assert!((a - b).abs() / b < 0.02, "binned {a} vs exact {b} at {q}");
        }
    }

    #[test]
    fn truncation_zeroes_far_field() {
        let binned = BinnedKde::fit(&cloud(), 10.0);
        // Seattle is thousands of miles from the Kansas cloud.
        assert_eq!(binned.density(pt(47.6, -122.3)), 0.0);
        // But the floored log stays finite.
        assert!(binned.log_density_floored(pt(47.6, -122.3)).is_finite());
    }

    #[test]
    fn log_density_floored_matches_ln_density_when_positive() {
        let binned = BinnedKde::fit(&cloud(), 40.0);
        let q = pt(37.5, -98.5);
        assert!((binned.log_density_floored(q) - binned.density(q).ln()).abs() < 1e-12);
    }

    #[test]
    fn bigger_bandwidth_spreads_mass() {
        let events = cloud();
        let narrow = BinnedKde::fit(&events, 15.0);
        let wide = BinnedKde::fit(&events, 150.0);
        let far = pt(40.5, -94.0);
        assert!(wide.density(far) > narrow.density(far));
    }

    #[test]
    fn len_reports_corpus_size() {
        let b = BinnedKde::fit(&cloud(), 25.0);
        assert_eq!(b.len(), 400);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_panics() {
        let _ = BinnedKde::fit(&[], 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bad_bandwidth_panics() {
        let _ = BinnedKde::fit(&cloud(), f64::NAN);
    }
}
