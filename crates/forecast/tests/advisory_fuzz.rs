//! Property-based fuzzing of the advisory text generator/parser pair.

use proptest::prelude::*;
use riskroute_forecast::advisory::{parse_advisory_text, Advisory};
use riskroute_forecast::calendar::Timestamp;
use riskroute_geo::GeoPoint;

fn arb_advisory() -> impl Strategy<Value = Advisory> {
    (
        "[A-Z]{3,9}",
        1usize..90,
        (-60.0..60.0f64, -179.0..179.0f64),
        prop_oneof![Just(0.0), 5.0..200.0f64],
        5.0..600.0f64,
        (0u8..24, 1u8..29),
    )
        .prop_map(
            |(storm, number, (lat, lon), h_radius, extra, (hour, day))| Advisory {
                storm,
                number,
                timestamp: Timestamp::new(2012, 10, day, hour),
                center: GeoPoint::new(lat, lon).unwrap(),
                hurricane_radius_mi: h_radius,
                tropical_radius_mi: h_radius + extra,
            },
        )
}

proptest! {
    #[test]
    fn generated_text_always_parses_back(adv in arb_advisory()) {
        let text = adv.to_text();
        let parsed = parse_advisory_text(&text).unwrap();
        // Prose rounds coordinates to 0.1° and radii to whole miles.
        prop_assert!((parsed.center.lat() - adv.center.lat()).abs() <= 0.051);
        prop_assert!((parsed.center.lon() - adv.center.lon()).abs() <= 0.051);
        prop_assert!((parsed.hurricane_radius_mi - adv.hurricane_radius_mi).abs() <= 0.5);
        prop_assert!((parsed.tropical_radius_mi - adv.tropical_radius_mi).abs() <= 0.5);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,400}") {
        // Any input must produce Ok or Err — never a panic.
        let _ = parse_advisory_text(&text);
    }

    #[test]
    fn parser_never_panics_on_advisory_like_noise(
        lat in -200.0..200.0f64,
        lon in -400.0..400.0f64,
        radius in -100.0..2000.0f64,
    ) {
        let text = format!(
            "LATITUDE {lat:.1} NORTH...LONGITUDE {lon:.1} WEST. \
             TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO {radius:.0} MILES..."
        );
        let _ = parse_advisory_text(&text);
    }

    #[test]
    fn radii_ordering_is_preserved(adv in arb_advisory()) {
        let parsed = parse_advisory_text(&adv.to_text()).unwrap();
        prop_assert!(parsed.hurricane_radius_mi <= parsed.tropical_radius_mi + 0.5);
    }
}
