//! Randomized fuzzing of the advisory text generator/parser pair.

use riskroute_forecast::advisory::{parse_advisory_text, Advisory};
use riskroute_forecast::calendar::Timestamp;
use riskroute_geo::GeoPoint;
use riskroute_rng::StdRng;

const CASES: usize = 256;

fn random_advisory(rng: &mut StdRng) -> Advisory {
    let letters: Vec<char> = ('A'..='Z').collect();
    let len = rng.gen_range(3..10usize);
    let storm: String = (0..len)
        .map(|_| letters[rng.gen_range(0..letters.len())])
        .collect();
    let h_radius = if rng.gen_bool(0.2) {
        0.0
    } else {
        rng.gen_range(5.0..200.0)
    };
    Advisory {
        storm,
        number: rng.gen_range(1..90usize),
        timestamp: Timestamp::new(
            2012,
            10,
            rng.gen_range(1..29usize) as u8,
            rng.gen_range(0..24usize) as u8,
        ),
        center: GeoPoint::new(rng.gen_range(-60.0..60.0), rng.gen_range(-179.0..179.0))
            .expect("in range"),
        hurricane_radius_mi: h_radius,
        tropical_radius_mi: h_radius + rng.gen_range(5.0..600.0),
    }
}

#[test]
fn generated_text_always_parses_back() {
    let mut rng = StdRng::seed_from_u64(0xf1);
    for _ in 0..CASES {
        let adv = random_advisory(&mut rng);
        let text = adv.to_text();
        let parsed = parse_advisory_text(&text).expect("generated advisory parses");
        // Prose rounds coordinates to 0.1° and radii to whole miles.
        assert!((parsed.center.lat() - adv.center.lat()).abs() <= 0.051);
        assert!((parsed.center.lon() - adv.center.lon()).abs() <= 0.051);
        assert!((parsed.hurricane_radius_mi - adv.hurricane_radius_mi).abs() <= 0.5);
        assert!((parsed.tropical_radius_mi - adv.tropical_radius_mi).abs() <= 0.5);
    }
}

#[test]
fn parser_never_panics_on_arbitrary_text() {
    let mut rng = StdRng::seed_from_u64(0xf2);
    for _ in 0..CASES {
        let len = rng.gen_range(0..400usize);
        let text: String = (0..len)
            .map(|_| {
                // Mix printable ASCII with advisory-ish punctuation.
                let c = rng.gen_range(0x20..0x7fusize) as u8 as char;
                if rng.gen_bool(0.1) {
                    '.'
                } else {
                    c
                }
            })
            .collect();
        // Any input must produce Ok or Err — never a panic.
        let _ = parse_advisory_text(&text);
    }
}

#[test]
fn parser_never_panics_on_advisory_like_noise() {
    let mut rng = StdRng::seed_from_u64(0xf3);
    for _ in 0..CASES {
        let lat = rng.gen_range(-200.0..200.0);
        let lon = rng.gen_range(-400.0..400.0);
        let radius = rng.gen_range(-100.0..2000.0);
        let text = format!(
            "LATITUDE {lat:.1} NORTH...LONGITUDE {lon:.1} WEST. \
             TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO {radius:.0} MILES..."
        );
        let _ = parse_advisory_text(&text);
    }
}

#[test]
fn parser_never_panics_on_truncated_or_mutated_advisories() {
    let mut rng = StdRng::seed_from_u64(0xf4);
    for _ in 0..CASES {
        let adv = random_advisory(&mut rng);
        let text = adv.to_text();
        // Truncation.
        let cut = rng.gen_range(0..text.len());
        let truncated: String = text.chars().take(cut).collect();
        let _ = parse_advisory_text(&truncated);
        // Byte garbling (replace a char with random printable ASCII).
        let mut chars: Vec<char> = text.chars().collect();
        for _ in 0..rng.gen_range(1..8usize) {
            let idx = rng.gen_range(0..chars.len());
            chars[idx] = rng.gen_range(0x20..0x7fusize) as u8 as char;
        }
        let garbled: String = chars.into_iter().collect();
        let _ = parse_advisory_text(&garbled);
    }
}

#[test]
fn radii_ordering_is_preserved() {
    let mut rng = StdRng::seed_from_u64(0xf5);
    for _ in 0..CASES {
        let adv = random_advisory(&mut rng);
        let parsed = parse_advisory_text(&adv.to_text()).expect("generated advisory parses");
        assert!(parsed.hurricane_radius_mi <= parsed.tropical_radius_mi + 0.5);
    }
}
