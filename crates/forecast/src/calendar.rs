//! Minimal calendar arithmetic for advisory timestamps.
//!
//! Advisory cadence in the paper's Figures 12–13 is labelled with NHC-style
//! timestamps ("5 PM EDT TUE AUG 23 2005"). This module provides just enough
//! date handling to reproduce those labels without a date-time dependency.


/// A wall-clock timestamp (local storm-basin time; the paper's advisories
/// mix EDT/CDT, which is cosmetic for our purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Timestamp {
    /// Four-digit year.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
}

const MONTH_NAMES: [&str; 12] = [
    "JAN", "FEB", "MAR", "APR", "MAY", "JUN", "JUL", "AUG", "SEP", "OCT", "NOV", "DEC",
];
const DAY_NAMES: [&str; 7] = ["SAT", "SUN", "MON", "TUE", "WED", "THU", "FRI"];

impl Timestamp {
    /// Construct a timestamp.
    ///
    /// # Panics
    /// Panics on out-of-range fields (month 1–12, day 1–days-in-month,
    /// hour 0–23).
    pub fn new(year: u16, month: u8, day: u8, hour: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && u32::from(day) <= days_in_month(year, month),
            "day {day} out of range for {year}-{month}"
        );
        assert!(hour < 24, "hour {hour} out of range");
        Timestamp {
            year,
            month,
            day,
            hour,
        }
    }

    /// This timestamp advanced by `hours` (non-negative).
    pub fn plus_hours(mut self, hours: u32) -> Timestamp {
        let mut total = u32::from(self.hour) + hours;
        self.hour = (total % 24) as u8;
        total /= 24;
        for _ in 0..total {
            let dim = days_in_month(self.year, self.month);
            if u32::from(self.day) < dim {
                self.day += 1;
            } else {
                self.day = 1;
                if self.month == 12 {
                    self.month = 1;
                    self.year += 1;
                } else {
                    self.month += 1;
                }
            }
        }
        self
    }

    /// Day of week via Zeller's congruence.
    pub fn weekday(&self) -> &'static str {
        let (mut m, mut y) = (u32::from(self.month), u32::from(self.year));
        if m < 3 {
            m += 12;
            y -= 1;
        }
        let (k, j) = (y % 100, y / 100);
        let h = (u32::from(self.day) + (13 * (m + 1)) / 5 + k + k / 4 + j / 4 + 5 * j) % 7;
        DAY_NAMES[h as usize]
    }

    /// NHC-style label, e.g. `"5 PM TUE AUG 23 2005"`.
    pub fn label(&self) -> String {
        let (h12, ampm) = match self.hour {
            0 => (12, "AM"),
            1..=11 => (u32::from(self.hour), "AM"),
            12 => (12, "PM"),
            _ => (u32::from(self.hour) - 12, "PM"),
        };
        format!(
            "{} {} {} {} {} {}",
            h12,
            ampm,
            self.weekday(),
            MONTH_NAMES[usize::from(self.month) - 1],
            self.day,
            self.year
        )
    }
}

/// Days in the given month, honouring leap years.
pub fn days_in_month(year: u16, month: u8) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn construction_validates() {
        let t = Timestamp::new(2005, 8, 23, 17);
        assert_eq!(t.label(), "5 PM TUE AUG 23 2005");
    }

    #[test]
    #[should_panic(expected = "day 31 out of range")]
    fn rejects_invalid_day() {
        let _ = Timestamp::new(2011, 9, 31, 0);
    }

    #[test]
    #[should_panic(expected = "month 13")]
    fn rejects_invalid_month() {
        let _ = Timestamp::new(2011, 13, 1, 0);
    }

    #[test]
    fn plus_hours_within_day() {
        let t = Timestamp::new(2011, 8, 20, 19).plus_hours(3);
        assert_eq!((t.day, t.hour), (20, 22));
    }

    #[test]
    fn plus_hours_rolls_day_month_year() {
        let t = Timestamp::new(2012, 10, 31, 23).plus_hours(2);
        assert_eq!((t.year, t.month, t.day, t.hour), (2012, 11, 1, 1));
        let t = Timestamp::new(2011, 12, 31, 23).plus_hours(1);
        assert_eq!((t.year, t.month, t.day, t.hour), (2012, 1, 1, 0));
    }

    #[test]
    fn leap_year_february() {
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2011, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        let t = Timestamp::new(2012, 2, 28, 12).plus_hours(24);
        assert_eq!((t.month, t.day), (2, 29));
    }

    #[test]
    fn weekdays_are_correct() {
        // Katrina's landfall was Monday, August 29, 2005.
        assert_eq!(Timestamp::new(2005, 8, 29, 6).weekday(), "MON");
        // Sandy's NJ landfall was Monday, October 29, 2012.
        assert_eq!(Timestamp::new(2012, 10, 29, 20).weekday(), "MON");
        // Irene's NC landfall was Saturday, August 27, 2011.
        assert_eq!(Timestamp::new(2011, 8, 27, 8).weekday(), "SAT");
    }

    #[test]
    fn label_edges() {
        assert!(Timestamp::new(2005, 8, 23, 0).label().starts_with("12 AM"));
        assert!(Timestamp::new(2005, 8, 23, 12).label().starts_with("12 PM"));
        assert!(Timestamp::new(2005, 8, 23, 23).label().starts_with("11 PM"));
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::new(2005, 8, 23, 17);
        assert!(a < a.plus_hours(1));
        assert!(a < a.plus_hours(24 * 40));
    }
}
