//! NHC-style advisory text generation and the NLP parser (§4.4).
//!
//! The paper extracts, from each public advisory's prose, "the current
//! center of the hurricane and the radius of tropical and hurricane force
//! winds at the specified time". [`Advisory::to_text`] renders our
//! structured advisories into that prose format (ellipsis-delimited NHC
//! house style), and [`parse_advisory_text`] recovers the numbers — the
//! framework consumes only the parsed form, so the NLP path is always
//! exercised.

use crate::calendar::Timestamp;
use riskroute_geo::{km_to_miles, miles_to_km, GeoPoint};
use std::fmt;

/// A structured public advisory.
#[derive(Debug, Clone, PartialEq)]
pub struct Advisory {
    /// Storm name, upper case ("IRENE").
    pub storm: String,
    /// Advisory number, from 1.
    pub number: usize,
    /// Issuance time.
    pub timestamp: Timestamp,
    /// Storm center.
    pub center: GeoPoint,
    /// Radius of hurricane-force winds in miles (0 below hurricane
    /// strength).
    pub hurricane_radius_mi: f64,
    /// Radius of tropical-storm-force winds in miles.
    pub tropical_radius_mi: f64,
}

impl Advisory {
    /// Render the advisory as NHC-style prose (the format quoted in §4.4).
    pub fn to_text(&self) -> String {
        let lat = self.center.lat();
        let lon = self.center.lon();
        let (lat_v, ns) = if lat >= 0.0 {
            (lat, "NORTH")
        } else {
            (-lat, "SOUTH")
        };
        let (lon_v, ew) = if lon >= 0.0 {
            (lon, "EAST")
        } else {
            (-lon, "WEST")
        };
        let kind = if self.hurricane_radius_mi > 0.0 {
            "HURRICANE"
        } else {
            "TROPICAL STORM"
        };
        let mut text = format!(
            "BULLETIN\n{kind} {name} ADVISORY NUMBER {num}\nNWS NATIONAL HURRICANE CENTER MIAMI FL\n{time}\n\n\
             ...THE CENTER OF {kind} {name} WAS LOCATED NEAR LATITUDE {lat_v:.1} {ns}...\
             LONGITUDE {lon_v:.1} {ew}.",
            name = self.storm,
            num = self.number,
            time = self.timestamp.label(),
        );
        if self.hurricane_radius_mi > 0.0 {
            text.push_str(&format!(
                "\nHURRICANE-FORCE WINDS EXTEND OUTWARD UP TO {h_mi:.0} MILES...{h_km:.0} KM...FROM THE CENTER...",
                h_mi = self.hurricane_radius_mi,
                h_km = miles_to_km(self.hurricane_radius_mi),
            ));
            text.push_str(&format!(
                "AND TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO {t_mi:.0} MILES...{t_km:.0} KM...",
                t_mi = self.tropical_radius_mi,
                t_km = miles_to_km(self.tropical_radius_mi),
            ));
        } else {
            text.push_str(&format!(
                "\nTROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO {t_mi:.0} MILES...{t_km:.0} KM...FROM THE CENTER...",
                t_mi = self.tropical_radius_mi,
                t_km = miles_to_km(self.tropical_radius_mi),
            ));
        }
        text
    }
}

/// The measurements recovered from advisory prose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsedAdvisory {
    /// Parsed storm center.
    pub center: GeoPoint,
    /// Parsed hurricane-force wind radius in miles (0 when the advisory
    /// reports none).
    pub hurricane_radius_mi: f64,
    /// Parsed tropical-storm-force wind radius in miles.
    pub tropical_radius_mi: f64,
}

/// Errors from advisory parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The "LATITUDE x NORTH...LONGITUDE y WEST" clause was absent or
    /// malformed.
    MissingCenter,
    /// No tropical-storm-force wind radius clause found.
    MissingTropicalRadius,
    /// A numeric field failed to parse.
    BadNumber(String),
    /// Parsed coordinates were out of range.
    BadCoordinates(f64, f64),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCenter => write!(f, "advisory has no parsable center clause"),
            ParseError::MissingTropicalRadius => {
                write!(f, "advisory has no tropical-storm wind radius clause")
            }
            ParseError::BadNumber(s) => write!(f, "unparsable number {s:?}"),
            ParseError::BadCoordinates(lat, lon) => {
                write!(f, "coordinates ({lat}, {lon}) out of range")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse NHC-style advisory prose into [`ParsedAdvisory`].
///
/// Tolerant of the house style's quirks: ellipsis runs of any length,
/// arbitrary whitespace/newlines, and either MILES or KM appearing first
/// (miles are preferred; a KM-only radius clause is converted).
pub fn parse_advisory_text(text: &str) -> Result<ParsedAdvisory, ParseError> {
    // Normalize: uppercase, collapse ellipses and whitespace into single
    // spaces so token scanning is uniform.
    let cleaned: String = text
        .to_uppercase()
        .replace("...", " ")
        .replace(['\n', '\r', '\t'], " ");
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();

    let center = parse_center(&tokens)?;
    let hurricane = parse_radius(&tokens, "HURRICANE-FORCE")?;
    let tropical =
        parse_radius(&tokens, "TROPICAL-STORM-FORCE")?.ok_or(ParseError::MissingTropicalRadius)?;
    Ok(ParsedAdvisory {
        center,
        hurricane_radius_mi: hurricane.unwrap_or(0.0),
        tropical_radius_mi: tropical,
    })
}

/// Find "LATITUDE <x> NORTH|SOUTH … LONGITUDE <y> EAST|WEST".
fn parse_center(tokens: &[&str]) -> Result<GeoPoint, ParseError> {
    let mut lat: Option<f64> = None;
    let mut lon: Option<f64> = None;
    for (i, &tok) in tokens.iter().enumerate() {
        if tok == "LATITUDE" && i + 2 < tokens.len() {
            let v = parse_number(tokens[i + 1])?;
            let hemi = tokens[i + 2].trim_end_matches(['.', ',']);
            lat = Some(match hemi {
                "NORTH" => v,
                "SOUTH" => -v,
                _ => return Err(ParseError::MissingCenter),
            });
        }
        if tok == "LONGITUDE" && i + 2 < tokens.len() {
            let v = parse_number(tokens[i + 1])?;
            let hemi = tokens[i + 2].trim_end_matches(['.', ',']);
            lon = Some(match hemi {
                "EAST" => v,
                "WEST" => -v,
                _ => return Err(ParseError::MissingCenter),
            });
        }
    }
    match (lat, lon) {
        (Some(lat), Some(lon)) => {
            GeoPoint::new(lat, lon).map_err(|_| ParseError::BadCoordinates(lat, lon))
        }
        _ => Err(ParseError::MissingCenter),
    }
}

/// Find "<PREFIX> WINDS EXTEND OUTWARD UP TO <n> MILES" (or "<n> KM" when no
/// miles figure follows). Returns `Ok(None)` when the clause is absent.
fn parse_radius(tokens: &[&str], prefix: &str) -> Result<Option<f64>, ParseError> {
    for (i, &tok) in tokens.iter().enumerate() {
        if tok != prefix {
            continue;
        }
        // Scan forward a bounded window for "<number> MILES" or "<number> KM".
        let window = &tokens[i..tokens.len().min(i + 12)];
        let mut km_value: Option<f64> = None;
        for (j, &w) in window.iter().enumerate() {
            let unit = w.trim_end_matches(['.', ',']);
            if (unit == "MILES" || unit == "MILE") && j > 0 {
                let v = parse_number(window[j - 1])?;
                return Ok(Some(v));
            }
            if unit == "KM" && j > 0 {
                if let Ok(v) = parse_number(window[j - 1]) {
                    km_value.get_or_insert(km_to_miles(v));
                }
            }
        }
        if let Some(v) = km_value {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

fn parse_number(token: &str) -> Result<f64, ParseError> {
    let stripped = token.trim_matches(|c: char| !c.is_ascii_digit() && c != '.' && c != '-');
    stripped
        .parse::<f64>()
        .map_err(|_| ParseError::BadNumber(token.to_string()))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_advisory() -> Advisory {
        Advisory {
            storm: "IRENE".to_string(),
            number: 29,
            timestamp: Timestamp::new(2011, 8, 27, 8),
            center: GeoPoint::new(35.2, -76.4).unwrap(),
            hurricane_radius_mi: 90.0,
            tropical_radius_mi: 260.0,
        }
    }

    #[test]
    fn round_trip_generation_and_parsing() {
        let adv = sample_advisory();
        let parsed = parse_advisory_text(&adv.to_text()).unwrap();
        assert!((parsed.center.lat() - 35.2).abs() < 0.051);
        assert!((parsed.center.lon() + 76.4).abs() < 0.051);
        assert_eq!(parsed.hurricane_radius_mi, 90.0);
        assert_eq!(parsed.tropical_radius_mi, 260.0);
    }

    #[test]
    fn parses_the_paper_excerpt_verbatim() {
        // The exact §4.4 excerpt.
        let text = "...THE CENTER OF HURRICANE IRENE WAS LOCATED \
                    NEAR LATITUDE 35.2 NORTH...LONGITUDE 76.4 WEST. \
                    IRENE IS MOVING TOWARD THE NORTH-NORTHEAST \
                    NEAR 15 MPH...HURRICANE-FORCE WINDS EXTEND \
                    OUTWARD UP TO 90 MILES...150 KM...FROM THE CENTER...\
                    AND TROPICAL-STORM-FORCE WINDS EXTEND \
                    OUTWARD UP TO 260 MILES...415 KM...";
        let parsed = parse_advisory_text(text).unwrap();
        assert!((parsed.center.lat() - 35.2).abs() < 1e-9);
        assert!((parsed.center.lon() + 76.4).abs() < 1e-9);
        assert_eq!(parsed.hurricane_radius_mi, 90.0);
        assert_eq!(parsed.tropical_radius_mi, 260.0);
    }

    #[test]
    fn tropical_storm_advisory_has_zero_hurricane_radius() {
        let mut adv = sample_advisory();
        adv.hurricane_radius_mi = 0.0;
        let text = adv.to_text();
        assert!(text.contains("TROPICAL STORM IRENE"));
        assert!(!text.contains("HURRICANE-FORCE"));
        let parsed = parse_advisory_text(&text).unwrap();
        assert_eq!(parsed.hurricane_radius_mi, 0.0);
        assert_eq!(parsed.tropical_radius_mi, 260.0);
    }

    #[test]
    fn km_only_clause_is_converted() {
        let text = "LATITUDE 30.0 NORTH...LONGITUDE 85.0 WEST. \
                    TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 415 KM...";
        let parsed = parse_advisory_text(text).unwrap();
        assert!((parsed.tropical_radius_mi - 257.9).abs() < 0.5);
    }

    #[test]
    fn southern_and_eastern_hemispheres_parse() {
        let text = "LATITUDE 12.5 SOUTH...LONGITUDE 130.2 EAST. \
                    TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES...";
        let parsed = parse_advisory_text(text).unwrap();
        assert!((parsed.center.lat() + 12.5).abs() < 1e-9);
        assert!((parsed.center.lon() - 130.2).abs() < 1e-9);
    }

    #[test]
    fn missing_center_is_an_error() {
        let text = "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES...";
        assert_eq!(parse_advisory_text(text), Err(ParseError::MissingCenter));
    }

    #[test]
    fn missing_tropical_radius_is_an_error() {
        let text = "LATITUDE 30.0 NORTH...LONGITUDE 85.0 WEST. NOTHING ELSE.";
        assert_eq!(
            parse_advisory_text(text),
            Err(ParseError::MissingTropicalRadius)
        );
    }

    #[test]
    fn out_of_range_coordinates_are_an_error() {
        let text = "LATITUDE 95.0 NORTH...LONGITUDE 85.0 WEST. \
                    TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES...";
        assert!(matches!(
            parse_advisory_text(text),
            Err(ParseError::BadCoordinates(..))
        ));
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let text = "latitude 35.2 north\n\nlongitude 76.4 west.\n\
                    tropical-storm-force winds extend outward up to 260 miles";
        let parsed = parse_advisory_text(text).unwrap();
        assert_eq!(parsed.tropical_radius_mi, 260.0);
    }

    #[test]
    fn generated_text_contains_header_fields() {
        let text = sample_advisory().to_text();
        assert!(text.contains("HURRICANE IRENE ADVISORY NUMBER 29"));
        assert!(text.contains("8 AM SAT AUG 27 2011"));
        assert!(text.contains("LATITUDE 35.2 NORTH"));
    }
}
