//! Forecast projection: where will the storm be in L hours?
//!
//! The paper's motivation (§1) is *preventive* routing — NTT, Level3, and
//! Verizon all rerouted **before** Hurricane Sandy arrived. §5.3 scores
//! risk from the storm's *current* advisory position; this module adds the
//! missing lead time: extrapolate the storm's motion from two consecutive
//! advisories, widen the threatened area by a forecast-uncertainty cone
//! (NHC track errors grow roughly linearly with lead time), and discount
//! the risk by the forecast's fading confidence.

use crate::advisory::Advisory;
use crate::risk::ForecastRisk;
use riskroute_geo::distance::{destination, great_circle_miles, initial_bearing_deg};
use riskroute_geo::GeoPoint;

/// NHC-style track-error growth: how many miles of position uncertainty one
/// hour of lead time adds (≈ 40 mi per 24 h for modern forecasts; we use a
/// slightly conservative figure for 2005–2012-era storms).
pub const DEFAULT_CONE_GROWTH_MPH: f64 = 2.2;

/// Confidence half-life of the motion extrapolation, hours: the risk
/// discount is `0.5^(lead / half_life)`.
pub const DEFAULT_CONFIDENCE_HALF_LIFE_HOURS: f64 = 48.0;

/// A projected wind field at a future instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedField {
    /// Lead time in hours beyond the newest advisory.
    pub lead_hours: f64,
    /// The projected field: center moved along the observed track, radii
    /// widened by the uncertainty cone, ρ values discounted by confidence.
    pub field: ForecastRisk,
    /// Storm ground speed inferred from the advisory pair, mph.
    pub speed_mph: f64,
    /// Storm heading inferred from the advisory pair, degrees true.
    pub heading_deg: f64,
}

/// Extrapolate from two consecutive advisories to `lead_hours` past the
/// newer one, with default cone growth and confidence decay.
///
/// # Panics
/// Panics when the advisories are out of order / simultaneous, or
/// `lead_hours` is negative or non-finite.
pub fn project(prev: &Advisory, current: &Advisory, lead_hours: f64) -> ProjectedField {
    project_with(
        prev,
        current,
        lead_hours,
        DEFAULT_CONE_GROWTH_MPH,
        DEFAULT_CONFIDENCE_HALF_LIFE_HOURS,
    )
}

/// [`project`] with explicit cone growth (mi/h) and confidence half-life (h).
///
/// # Panics
/// Same contract as [`project`], plus positive/finite knobs.
pub fn project_with(
    prev: &Advisory,
    current: &Advisory,
    lead_hours: f64,
    cone_growth_mph: f64,
    confidence_half_life_hours: f64,
) -> ProjectedField {
    assert!(
        lead_hours.is_finite() && lead_hours >= 0.0,
        "lead_hours must be finite and non-negative"
    );
    assert!(
        cone_growth_mph.is_finite() && cone_growth_mph >= 0.0,
        "cone growth must be finite and non-negative"
    );
    assert!(
        confidence_half_life_hours.is_finite() && confidence_half_life_hours > 0.0,
        "confidence half-life must be positive"
    );
    let dt = hours_between(prev, current);
    assert!(dt > 0.0, "advisories must be ordered and distinct in time");

    let distance = great_circle_miles(prev.center, current.center);
    let speed_mph = distance / dt;
    let heading_deg = if distance < 1e-9 {
        0.0 // stationary storm: heading is arbitrary, projection stays put
    } else {
        initial_bearing_deg(prev.center, current.center)
    };
    let projected_center = destination(current.center, heading_deg, speed_mph * lead_hours);
    let cone = cone_growth_mph * lead_hours;
    let confidence = 0.5_f64.powf(lead_hours / confidence_half_life_hours);

    let base = ForecastRisk::from_advisory(current);
    let hurricane_radius = if current.hurricane_radius_mi > 0.0 {
        current.hurricane_radius_mi + cone
    } else {
        0.0 // below hurricane strength now: the cone widens only the outer field
    };
    let field = ForecastRisk {
        center: projected_center,
        hurricane_radius_mi: hurricane_radius,
        tropical_radius_mi: current.tropical_radius_mi + cone,
        rho_tropical: base.rho_tropical * confidence,
        rho_hurricane: base.rho_hurricane * confidence,
    };
    ProjectedField {
        lead_hours,
        field,
        speed_mph,
        heading_deg,
    }
}

/// Hours between two advisories' timestamps (positive when `b` is later).
fn hours_between(a: &Advisory, b: &Advisory) -> f64 {
    fn absolute_hours(t: &crate::calendar::Timestamp) -> f64 {
        // Days since a fixed epoch via a simple month-accumulation walk —
        // exact for the storm-era years we handle.
        let mut days = 0i64;
        for y in 1970..t.year {
            days += if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                366
            } else {
                365
            };
        }
        for m in 1..t.month {
            days += i64::from(crate::calendar::days_in_month(t.year, m));
        }
        days += i64::from(t.day) - 1;
        days as f64 * 24.0 + f64::from(t.hour)
    }
    absolute_hours(&b.timestamp) - absolute_hours(&a.timestamp)
}

/// Find a PoP set's earliest warning: the smallest lead time (over the
/// given ladder) at which the projection from each advisory pair first
/// covers `location`, reported as `(advisory number, lead_hours)` — i.e.
/// "you could have known at advisory N, L hours ahead".
pub fn earliest_warning(
    advisories: &[Advisory],
    location: GeoPoint,
    lead_ladder: &[f64],
) -> Option<(usize, f64)> {
    for pair in advisories.windows(2) {
        for &lead in lead_ladder {
            let projected = project(&pair[0], &pair[1], lead);
            if projected.field.in_scope(location) {
                return Some((pair[1].number, lead));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::storms::{advisories_for, Storm};

    fn sandy() -> Vec<Advisory> {
        advisories_for(Storm::Sandy)
    }

    #[test]
    fn zero_lead_reproduces_the_current_field() {
        let advs = sandy();
        let p = project(&advs[40], &advs[41], 0.0);
        let base = ForecastRisk::from_advisory(&advs[41]);
        assert!(great_circle_miles(p.field.center, base.center) < 1e-6);
        assert_eq!(p.field.tropical_radius_mi, base.tropical_radius_mi);
        assert_eq!(p.field.rho_hurricane, base.rho_hurricane);
        assert_eq!(p.lead_hours, 0.0);
    }

    #[test]
    fn projection_moves_along_the_track() {
        let advs = sandy();
        // Project 24 h ahead from mid-track; the projected center should be
        // much closer to the actual +24 h position than the current one is.
        let (a, b) = (&advs[38], &advs[39]); // 3 h apart
        let future = &advs[47]; // +24 h from b
        let p = project(a, b, 24.0);
        let err_projected = great_circle_miles(p.field.center, future.center);
        let err_persistence = great_circle_miles(b.center, future.center);
        assert!(
            err_projected < err_persistence,
            "projection {err_projected:.0} mi vs persistence {err_persistence:.0} mi"
        );
    }

    #[test]
    fn cone_widens_and_confidence_decays_with_lead() {
        let advs = sandy();
        let p6 = project(&advs[40], &advs[41], 6.0);
        let p48 = project(&advs[40], &advs[41], 48.0);
        assert!(p48.field.tropical_radius_mi > p6.field.tropical_radius_mi);
        assert!(p48.field.rho_hurricane < p6.field.rho_hurricane);
        assert!(p6.field.rho_hurricane < 100.0, "any lead discounts");
        // Half-life check: at exactly one half-life the ρ values halve.
        let ph = project(&advs[40], &advs[41], DEFAULT_CONFIDENCE_HALF_LIFE_HOURS);
        assert!((ph.field.rho_hurricane - 50.0).abs() < 1e-9);
    }

    #[test]
    fn speed_and_heading_are_physical() {
        let advs = sandy();
        let p = project(&advs[30], &advs[31], 12.0);
        assert!(
            p.speed_mph > 2.0 && p.speed_mph < 60.0,
            "speed {}",
            p.speed_mph
        );
        assert!((0.0..360.0).contains(&p.heading_deg));
    }

    #[test]
    fn below_hurricane_strength_keeps_zero_inner_field() {
        let advs = sandy();
        // The first advisories are below hurricane strength in our track.
        let weak_pair = advs.windows(2).find(|w| w[1].hurricane_radius_mi == 0.0);
        if let Some(w) = weak_pair {
            let p = project(&w[0], &w[1], 24.0);
            assert_eq!(p.field.hurricane_radius_mi, 0.0);
        }
    }

    #[test]
    fn earliest_warning_precedes_arrival() {
        let advs = sandy();
        let nyc = GeoPoint::new(40.71, -74.01).unwrap();
        // Without projection: first advisory whose *current* field covers NYC.
        let current_first = advs
            .iter()
            .find(|a| ForecastRisk::from_advisory(a).in_scope(nyc))
            .map(|a| a.number)
            .expect("Sandy reaches NYC");
        let (warn_advisory, lead) =
            earliest_warning(&advs, nyc, &[12.0, 24.0, 48.0]).expect("projection warns");
        assert!(
            warn_advisory < current_first,
            "projection (advisory {warn_advisory}, lead {lead} h) must warn before \
             the live field (advisory {current_first})"
        );
    }

    #[test]
    fn earliest_warning_none_for_untouched_locations() {
        let advs = sandy();
        let seattle = GeoPoint::new(47.61, -122.33).unwrap();
        assert_eq!(earliest_warning(&advs, seattle, &[24.0, 48.0]), None);
    }

    #[test]
    #[should_panic(expected = "lead_hours must be finite")]
    fn negative_lead_panics() {
        let advs = sandy();
        let _ = project(&advs[0], &advs[1], -1.0);
    }

    #[test]
    #[should_panic(expected = "ordered and distinct")]
    fn reversed_advisories_panic() {
        let advs = sandy();
        let _ = project(&advs[1], &advs[0], 6.0);
    }
}
