//! Forecasted outage risk fields (§5.3) and multi-advisory swaths.
//!
//! "We declare the forecasted risk of an area under tropical-force wind as
//! ρ_t, and the risk of an area under hurricane-force winds as ρ_h, with
//! ρ_h > ρ_t (in Section 7 we use ρ_t = 50 and ρ_h = 100)."

use crate::advisory::{parse_advisory_text, Advisory, ParseError};
use riskroute_geo::distance::great_circle_miles;
use riskroute_geo::GeoPoint;

/// The paper's tropical-storm-force risk value (§5.3 / §7).
pub const RHO_TROPICAL: f64 = 50.0;

/// The paper's hurricane-force risk value (§5.3 / §7).
pub const RHO_HURRICANE: f64 = 100.0;

/// The forecasted outage risk field of a single advisory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastRisk {
    /// Storm center.
    pub center: GeoPoint,
    /// Hurricane-force wind radius, miles.
    pub hurricane_radius_mi: f64,
    /// Tropical-storm-force wind radius, miles.
    pub tropical_radius_mi: f64,
    /// Risk inside the tropical-storm wind field.
    pub rho_tropical: f64,
    /// Risk inside the hurricane wind field.
    pub rho_hurricane: f64,
}

impl ForecastRisk {
    /// Build the risk field from an advisory's *text*, exercising the §4.4
    /// NLP path, with the paper's ρ values.
    ///
    /// # Errors
    /// Propagates parse failures.
    pub fn from_advisory_text(text: &str) -> Result<Self, ParseError> {
        let parsed = parse_advisory_text(text)?;
        Ok(ForecastRisk {
            center: parsed.center,
            hurricane_radius_mi: parsed.hurricane_radius_mi,
            tropical_radius_mi: parsed.tropical_radius_mi,
            rho_tropical: RHO_TROPICAL,
            rho_hurricane: RHO_HURRICANE,
        })
    }

    /// Build directly from a structured advisory (bypassing the text
    /// round-trip) with the paper's ρ values.
    pub fn from_advisory(adv: &Advisory) -> Self {
        ForecastRisk {
            center: adv.center,
            hurricane_radius_mi: adv.hurricane_radius_mi,
            tropical_radius_mi: adv.tropical_radius_mi,
            rho_tropical: RHO_TROPICAL,
            rho_hurricane: RHO_HURRICANE,
        }
    }

    /// Override the ρ values (operator knob).
    ///
    /// # Panics
    /// Panics unless `0 <= rho_tropical <= rho_hurricane` and both finite
    /// (the §5.3 constraint ρ_h > ρ_t, relaxed to allow equality and zero
    /// for ablations).
    pub fn with_rho(mut self, rho_tropical: f64, rho_hurricane: f64) -> Self {
        assert!(
            rho_tropical.is_finite() && rho_hurricane.is_finite(),
            "rho values must be finite"
        );
        assert!(
            0.0 <= rho_tropical && rho_tropical <= rho_hurricane,
            "need 0 <= rho_t <= rho_h"
        );
        self.rho_tropical = rho_tropical;
        self.rho_hurricane = rho_hurricane;
        self
    }

    /// Forecasted risk `o_f(y)`: ρ_h inside hurricane-force winds, ρ_t
    /// inside tropical-storm-force winds, 0 outside.
    pub fn risk(&self, y: GeoPoint) -> f64 {
        let d = great_circle_miles(self.center, y);
        if d <= self.hurricane_radius_mi {
            self.rho_hurricane
        } else if d <= self.tropical_radius_mi {
            self.rho_tropical
        } else {
            0.0
        }
    }

    /// Whether `y` is inside the tropical-storm (outer) wind field — the
    /// paper's "scope" test for counting affected PoPs (§7.3).
    pub fn in_scope(&self, y: GeoPoint) -> bool {
        great_circle_miles(self.center, y) <= self.tropical_radius_mi
    }

    /// Whether `y` is inside hurricane-force winds.
    pub fn in_hurricane_winds(&self, y: GeoPoint) -> bool {
        great_circle_miles(self.center, y) <= self.hurricane_radius_mi
    }
}

/// The union of a storm's wind fields over its full advisory series —
/// the "final geo-spatial scope" of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSwath {
    fields: Vec<ForecastRisk>,
}

impl StormSwath {
    /// Build the swath from per-advisory risk fields.
    pub fn new(fields: Vec<ForecastRisk>) -> Self {
        StormSwath { fields }
    }

    /// The per-advisory fields.
    pub fn fields(&self) -> &[ForecastRisk] {
        &self.fields
    }

    /// Maximum forecasted risk over all advisories at `y`.
    pub fn max_risk(&self, y: GeoPoint) -> f64 {
        self.fields.iter().map(|f| f.risk(y)).fold(0.0, f64::max)
    }

    /// Whether any advisory ever placed `y` under tropical-storm winds.
    pub fn ever_in_scope(&self, y: GeoPoint) -> bool {
        self.fields.iter().any(|f| f.in_scope(y))
    }

    /// Whether any advisory ever placed `y` under hurricane-force winds.
    pub fn ever_in_hurricane_winds(&self, y: GeoPoint) -> bool {
        self.fields.iter().any(|f| f.in_hurricane_winds(y))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::storms::{advisories_for, Storm};

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn field() -> ForecastRisk {
        ForecastRisk {
            center: pt(35.2, -76.4),
            hurricane_radius_mi: 90.0,
            tropical_radius_mi: 260.0,
            rho_tropical: RHO_TROPICAL,
            rho_hurricane: RHO_HURRICANE,
        }
    }

    #[test]
    fn risk_zones_are_concentric() {
        let f = field();
        assert_eq!(f.risk(f.center), RHO_HURRICANE);
        // ~172 miles north of center: tropical but not hurricane.
        let mid = pt(37.7, -76.4);
        assert_eq!(f.risk(mid), RHO_TROPICAL);
        assert!(f.in_scope(mid));
        assert!(!f.in_hurricane_winds(mid));
        // Chicago: outside everything.
        let far = pt(41.88, -87.63);
        assert_eq!(f.risk(far), 0.0);
        assert!(!f.in_scope(far));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_rho_ordering_holds() {
        assert!(RHO_HURRICANE > RHO_TROPICAL);
        assert_eq!(RHO_TROPICAL, 50.0);
        assert_eq!(RHO_HURRICANE, 100.0);
    }

    #[test]
    fn from_advisory_text_round_trips() {
        let adv = advisories_for(Storm::Irene)[59].clone(); // hour 177: §4.4 example
        let f = ForecastRisk::from_advisory_text(&adv.to_text()).unwrap();
        assert!((f.center.lat() - 35.2).abs() < 0.06);
        assert_eq!(f.rho_hurricane, RHO_HURRICANE);
        let structured = ForecastRisk::from_advisory(&adv);
        assert!((f.hurricane_radius_mi - structured.hurricane_radius_mi).abs() < 0.5);
    }

    #[test]
    fn with_rho_overrides() {
        let f = field().with_rho(10.0, 20.0);
        assert_eq!(f.risk(f.center), 20.0);
        let disabled = field().with_rho(0.0, 0.0);
        assert_eq!(disabled.risk(disabled.center), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 <= rho_t <= rho_h")]
    fn inverted_rho_panics() {
        let _ = field().with_rho(100.0, 50.0);
    }

    #[test]
    fn swath_takes_pointwise_max() {
        let advs = advisories_for(Storm::Katrina);
        let swath = StormSwath::new(advs.iter().map(ForecastRisk::from_advisory).collect());
        // New Orleans was under hurricane-force winds at landfall.
        let nola = pt(29.95, -90.07);
        assert!(swath.ever_in_hurricane_winds(nola));
        assert_eq!(swath.max_risk(nola), RHO_HURRICANE);
        // Denver never was.
        let denver = pt(39.74, -104.99);
        assert!(!swath.ever_in_scope(denver));
        assert_eq!(swath.max_risk(denver), 0.0);
    }

    #[test]
    fn sandy_swath_reaches_the_northeast_katrina_does_not() {
        let sandy = StormSwath::new(
            advisories_for(Storm::Sandy)
                .iter()
                .map(ForecastRisk::from_advisory)
                .collect(),
        );
        let katrina = StormSwath::new(
            advisories_for(Storm::Katrina)
                .iter()
                .map(ForecastRisk::from_advisory)
                .collect(),
        );
        let nyc = pt(40.71, -74.01);
        assert!(sandy.ever_in_scope(nyc));
        assert!(!katrina.ever_in_scope(nyc));
    }

    #[test]
    fn empty_swath_is_riskless() {
        let swath = StormSwath::new(vec![]);
        assert_eq!(swath.max_risk(pt(30.0, -90.0)), 0.0);
        assert!(!swath.ever_in_scope(pt(30.0, -90.0)));
        assert!(swath.fields().is_empty());
    }
}
