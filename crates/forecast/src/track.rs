//! Best-track waypoints and interpolation.

use riskroute_geo::distance::slerp;
use riskroute_geo::GeoPoint;

/// One best-track waypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    /// Hours since the first advisory.
    pub hours: f64,
    /// Storm center latitude, degrees north.
    pub lat: f64,
    /// Storm center longitude, degrees east.
    pub lon: f64,
    /// Radius of hurricane-force winds, miles (0 when below hurricane
    /// strength).
    pub hurricane_radius_mi: f64,
    /// Radius of tropical-storm-force winds, miles.
    pub tropical_radius_mi: f64,
}

/// A storm's full track: ordered waypoints spanning the advisory window.
#[derive(Debug, Clone, PartialEq)]
pub struct HurricaneTrack {
    /// Storm name, upper case as in advisories ("IRENE").
    pub name: String,
    points: Vec<TrackPoint>,
}

/// The storm state at one instant (interpolated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormState {
    /// Storm center.
    pub center: GeoPoint,
    /// Radius of hurricane-force winds, miles.
    pub hurricane_radius_mi: f64,
    /// Radius of tropical-storm-force winds, miles.
    pub tropical_radius_mi: f64,
}

impl HurricaneTrack {
    /// Build a track from waypoints.
    ///
    /// # Panics
    /// Panics when fewer than two waypoints are given, hours are not
    /// strictly increasing from 0, radii are negative or inverted
    /// (`hurricane > tropical`), or coordinates are invalid.
    pub fn new(name: impl Into<String>, points: Vec<TrackPoint>) -> Self {
        assert!(points.len() >= 2, "track needs at least two waypoints");
        assert_eq!(points[0].hours, 0.0, "track must start at hour 0");
        for w in points.windows(2) {
            assert!(
                w[1].hours > w[0].hours,
                "waypoint hours must be strictly increasing"
            );
        }
        for p in &points {
            assert!(
                GeoPoint::new(p.lat, p.lon).is_ok(),
                "waypoint coordinates must be valid"
            );
            assert!(
                p.hurricane_radius_mi >= 0.0 && p.tropical_radius_mi >= 0.0,
                "radii must be non-negative"
            );
            assert!(
                p.hurricane_radius_mi <= p.tropical_radius_mi,
                "hurricane-force radius cannot exceed tropical-storm radius"
            );
        }
        HurricaneTrack {
            name: name.into(),
            points,
        }
    }

    /// The waypoints.
    pub fn points(&self) -> &[TrackPoint] {
        &self.points
    }

    /// Total track duration in hours.
    pub fn duration_hours(&self) -> f64 {
        // The constructor guarantees at least two waypoints.
        self.points.last().map_or(0.0, |p| p.hours)
    }

    /// Interpolated storm state at `hours` (clamped to the track window).
    /// Position interpolates along the great circle; radii linearly.
    pub fn state_at(&self, hours: f64) -> StormState {
        let h = hours.clamp(0.0, self.duration_hours());
        // `h` is clamped into [0, last.hours], so some segment contains it;
        // the final segment covers any floating-point edge case.
        let idx = self
            .points
            .windows(2)
            .position(|w| h <= w[1].hours)
            .unwrap_or(self.points.len().saturating_sub(2));
        let (a, b) = (&self.points[idx], &self.points[idx + 1]);
        let t = (h - a.hours) / (b.hours - a.hours);
        let (Ok(pa), Ok(pb)) = (
            GeoPoint::new(a.lat, a.lon),
            GeoPoint::new(b.lat, b.lon),
        ) else {
            unreachable!("waypoints were validated by the constructor");
        };
        StormState {
            center: slerp(pa, pb, t),
            hurricane_radius_mi: a.hurricane_radius_mi
                + t * (b.hurricane_radius_mi - a.hurricane_radius_mi),
            tropical_radius_mi: a.tropical_radius_mi
                + t * (b.tropical_radius_mi - a.tropical_radius_mi),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn wp(hours: f64, lat: f64, lon: f64, h: f64, t: f64) -> TrackPoint {
        TrackPoint {
            hours,
            lat,
            lon,
            hurricane_radius_mi: h,
            tropical_radius_mi: t,
        }
    }

    fn simple_track() -> HurricaneTrack {
        HurricaneTrack::new(
            "TEST",
            vec![
                wp(0.0, 25.0, -80.0, 30.0, 120.0),
                wp(24.0, 30.0, -85.0, 90.0, 250.0),
                wp(48.0, 35.0, -85.0, 0.0, 100.0),
            ],
        )
    }

    #[test]
    fn endpoints_are_exact() {
        let t = simple_track();
        let s0 = t.state_at(0.0);
        assert!((s0.center.lat() - 25.0).abs() < 1e-9);
        assert_eq!(s0.hurricane_radius_mi, 30.0);
        let s_end = t.state_at(48.0);
        assert!((s_end.center.lat() - 35.0).abs() < 1e-9);
        assert_eq!(s_end.hurricane_radius_mi, 0.0);
    }

    #[test]
    fn midpoint_interpolates() {
        let t = simple_track();
        let s = t.state_at(12.0);
        assert!((s.hurricane_radius_mi - 60.0).abs() < 1e-9);
        assert!((s.tropical_radius_mi - 185.0).abs() < 1e-9);
        assert!(s.center.lat() > 25.0 && s.center.lat() < 30.0);
    }

    #[test]
    fn out_of_window_clamps() {
        let t = simple_track();
        assert_eq!(t.state_at(-5.0), t.state_at(0.0));
        assert_eq!(t.state_at(500.0), t.state_at(48.0));
    }

    #[test]
    fn duration_is_last_waypoint() {
        assert_eq!(simple_track().duration_hours(), 48.0);
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn single_waypoint_panics() {
        let _ = HurricaneTrack::new("X", vec![wp(0.0, 25.0, -80.0, 0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_hours_panic() {
        let _ = HurricaneTrack::new(
            "X",
            vec![
                wp(0.0, 25.0, -80.0, 0.0, 0.0),
                wp(0.0, 26.0, -80.0, 0.0, 0.0),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "must start at hour 0")]
    fn nonzero_start_panics() {
        let _ = HurricaneTrack::new(
            "X",
            vec![
                wp(1.0, 25.0, -80.0, 0.0, 0.0),
                wp(2.0, 26.0, -80.0, 0.0, 0.0),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "cannot exceed tropical-storm radius")]
    fn inverted_radii_panic() {
        let _ = HurricaneTrack::new(
            "X",
            vec![
                wp(0.0, 25.0, -80.0, 200.0, 100.0),
                wp(6.0, 26.0, -80.0, 0.0, 0.0),
            ],
        );
    }
}
