//! Hurricane forecast substrate for the RiskRoute reproduction.
//!
//! Section 4.4 of the paper parses NOAA National Hurricane Center public
//! advisories for Hurricanes Katrina (61 advisories), Irene (70), and Sandy
//! (60), extracting the storm center and the radii of hurricane-force and
//! tropical-storm-force winds from the advisory *text* by natural-language
//! parsing. §5.3 turns each parsed advisory into a forecasted outage risk:
//! `ρ_h = 100` inside hurricane-force winds, `ρ_t = 50` inside
//! tropical-storm-force winds.
//!
//! The NHC text archive is not redistributable, so this crate embeds
//! best-track-style trajectories for the three storms (approximating the
//! historical tracks) and *generates* NHC-style advisory prose from them;
//! the parser then extracts the numbers back out of the prose — the
//! framework only ever consumes parsed advisories, exercising the same NLP
//! code path the paper describes.
//!
//! - [`calendar`] — minimal date arithmetic for advisory timestamps.
//! - [`track`] — best-track waypoints and interpolation.
//! - [`storms`] — the embedded Katrina / Irene / Sandy tracks and advisory
//!   series generation.
//! - [`advisory`] — NHC-style text generation and the NLP parser.
//! - [`risk`] — forecasted outage risk fields and multi-advisory swaths.
//! - [`projection`] — lead-time extrapolation with an uncertainty cone, for
//!   the preventive (reroute-before-landfall) use the paper motivates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod advisory;
pub mod calendar;
pub mod projection;
pub mod risk;
pub mod storms;
pub mod track;

pub use advisory::{Advisory, ParseError, ParsedAdvisory};
pub use projection::{earliest_warning, project, ProjectedField};
pub use risk::{ForecastRisk, StormSwath, RHO_HURRICANE, RHO_TROPICAL};
pub use storms::{advisories_for, Storm, ALL_STORMS};
pub use track::{HurricaneTrack, TrackPoint};
