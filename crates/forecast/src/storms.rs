//! The embedded Katrina / Irene / Sandy tracks and advisory-series
//! generation.
//!
//! Waypoints approximate the NHC best tracks of the three storms; the
//! advisory counts (Katrina 61, Irene 70, Sandy 60) and windows match §4.4
//! and footnote 4 of the paper. Advisories are generated every 3 hours by
//! track interpolation, rendered to NHC-style prose, and consumed by the
//! framework exclusively through the text parser.

use crate::advisory::Advisory;
use crate::calendar::Timestamp;
use crate::track::{HurricaneTrack, TrackPoint};

/// The three historical disaster case studies (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storm {
    /// Hurricane Katrina, August 2005 (Gulf coast).
    Katrina,
    /// Hurricane Irene, August 2011 (Atlantic seaboard).
    Irene,
    /// Hurricane Sandy, October 2012 (Mid-Atlantic / Northeast).
    Sandy,
}

/// All three storms, in the paper's case-study order.
pub const ALL_STORMS: &[Storm] = &[Storm::Irene, Storm::Katrina, Storm::Sandy];

impl Storm {
    /// Storm name in advisory prose.
    pub fn name(self) -> &'static str {
        match self {
            Storm::Katrina => "KATRINA",
            Storm::Irene => "IRENE",
            Storm::Sandy => "SANDY",
        }
    }

    /// Number of public advisories in the paper's corpus (§4.4).
    pub fn advisory_count(self) -> usize {
        match self {
            Storm::Katrina => 61,
            Storm::Irene => 70,
            Storm::Sandy => 60,
        }
    }

    /// Timestamp of the first advisory in our window (footnote 4 of the
    /// paper gives the advisory windows).
    pub fn first_advisory(self) -> Timestamp {
        match self {
            // 5 PM EDT Tuesday August 23rd 2005.
            Storm::Katrina => Timestamp::new(2005, 8, 23, 17),
            // 7 PM EDT Saturday August 20th 2011.
            Storm::Irene => Timestamp::new(2011, 8, 20, 19),
            // 11 AM EDT Monday October 22nd 2012.
            Storm::Sandy => Timestamp::new(2012, 10, 22, 11),
        }
    }

    /// Best-track waypoints: `(hours, lat, lon, hurricane-force radius mi,
    /// tropical-storm-force radius mi)`.
    fn waypoints(self) -> &'static [(f64, f64, f64, f64, f64)] {
        match self {
            // Bahamas → south Florida → Gulf intensification → Buras LA
            // landfall → decay up the Mississippi valley. 61 advisories × 3 h
            // = 180 h window.
            Storm::Katrina => &[
                (0.0, 23.2, -75.5, 0.0, 70.0),
                (18.0, 24.8, -77.8, 15.0, 85.0),
                (36.0, 25.9, -80.3, 25.0, 105.0), // south Florida crossing
                (54.0, 24.6, -83.3, 35.0, 140.0),
                (72.0, 24.8, -85.3, 50.0, 175.0),
                (90.0, 25.7, -87.0, 90.0, 205.0),
                (108.0, 26.9, -88.6, 105.0, 230.0), // category 5 peak
                (120.0, 28.2, -89.3, 105.0, 230.0),
                (132.0, 29.3, -89.6, 100.0, 230.0), // Buras landfall
                (141.0, 31.1, -89.6, 60.0, 195.0),  // southern Mississippi
                (150.0, 33.0, -89.0, 0.0, 150.0),
                (162.0, 35.2, -88.2, 0.0, 110.0),
                (174.0, 37.0, -87.0, 0.0, 80.0),
                (180.0, 38.0, -86.0, 0.0, 60.0),
            ],
            // Caribbean → Bahamas → Outer Banks landfall → up the seaboard →
            // New England. 70 advisories × 3 h = 207 h window.
            Storm::Irene => &[
                (0.0, 15.0, -59.0, 0.0, 90.0),
                (24.0, 17.5, -64.0, 30.0, 130.0),
                (48.0, 19.9, -68.7, 50.0, 175.0),
                (72.0, 21.3, -71.2, 70.0, 205.0),
                (96.0, 22.6, -73.8, 80.0, 230.0),
                (120.0, 25.6, -76.4, 90.0, 260.0), // Bahamas
                (144.0, 29.5, -77.3, 90.0, 260.0),
                (156.0, 31.9, -77.5, 90.0, 260.0),
                (168.0, 33.9, -77.1, 85.0, 260.0),
                (177.0, 35.2, -76.4, 90.0, 260.0), // the §4.4 example advisory
                (186.0, 37.6, -75.6, 75.0, 250.0),
                (195.0, 39.5, -74.5, 60.0, 240.0), // New Jersey
                (201.0, 40.8, -73.9, 40.0, 230.0), // New York City
                (207.0, 43.5, -72.8, 0.0, 200.0),  // New England
            ],
            // Caribbean → Cuba → Bahamas → offshore loop → NJ landfall →
            // inland Pennsylvania. 60 advisories × 3 h = 177 h window. Sandy's
            // tropical wind field was extraordinarily large.
            Storm::Sandy => &[
                (0.0, 14.3, -77.4, 0.0, 105.0),
                (18.0, 17.0, -76.6, 35.0, 140.0),
                (30.0, 19.9, -76.1, 60.0, 175.0), // Cuba crossing
                (48.0, 23.6, -75.9, 75.0, 230.0), // Bahamas
                (66.0, 26.2, -76.6, 75.0, 290.0),
                (84.0, 28.1, -76.9, 75.0, 350.0),
                (102.0, 30.3, -75.4, 80.0, 405.0),
                (120.0, 32.6, -73.2, 85.0, 460.0),
                (138.0, 35.3, -71.0, 90.0, 490.0),
                (150.0, 37.5, -71.1, 90.0, 505.0),
                (159.0, 38.7, -72.5, 90.0, 505.0), // westward hook
                (165.0, 39.4, -74.4, 85.0, 485.0), // New Jersey landfall
                (171.0, 39.9, -76.2, 40.0, 390.0),
                (177.0, 40.2, -78.3, 0.0, 310.0), // inland Pennsylvania
            ],
        }
    }

    /// The storm's full track.
    pub fn track(self) -> HurricaneTrack {
        let points = self
            .waypoints()
            .iter()
            .map(|&(hours, lat, lon, h, t)| TrackPoint {
                hours,
                lat,
                lon,
                hurricane_radius_mi: h,
                tropical_radius_mi: t,
            })
            .collect();
        HurricaneTrack::new(self.name(), points)
    }
}

/// Generate the storm's full advisory series: `advisory_count()` advisories
/// at 3-hour cadence, numbered from 1, with NHC-style timestamps.
pub fn advisories_for(storm: Storm) -> Vec<Advisory> {
    let track = storm.track();
    let start = storm.first_advisory();
    (0..storm.advisory_count())
        .map(|i| {
            let hours = 3.0 * i as f64;
            let state = track.state_at(hours);
            Advisory {
                storm: storm.name().to_string(),
                number: i + 1,
                timestamp: start.plus_hours(3 * i as u32),
                center: state.center,
                hurricane_radius_mi: state.hurricane_radius_mi,
                tropical_radius_mi: state.tropical_radius_mi,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::distance::great_circle_miles;
    use riskroute_geo::GeoPoint;

    #[test]
    fn advisory_counts_match_paper() {
        assert_eq!(advisories_for(Storm::Katrina).len(), 61);
        assert_eq!(advisories_for(Storm::Irene).len(), 70);
        assert_eq!(advisories_for(Storm::Sandy).len(), 60);
    }

    #[test]
    fn windows_match_footnote_4() {
        let katrina = advisories_for(Storm::Katrina);
        assert_eq!(katrina[0].timestamp.label(), "5 PM TUE AUG 23 2005");
        // 61 advisories at 3 h: last is 180 h after the first (the paper's
        // real cadence was irregular, ending 10 AM CDT Aug 30; our idealized
        // 3-hourly series runs a few hours longer).
        assert_eq!(
            katrina.last().unwrap().timestamp.label(),
            "5 AM WED AUG 31 2005"
        );
        let sandy = advisories_for(Storm::Sandy);
        assert_eq!(sandy[0].timestamp.label(), "11 AM MON OCT 22 2012");
        assert_eq!(
            sandy.last().unwrap().timestamp.label(),
            "8 PM MON OCT 29 2012"
        );
        let irene = advisories_for(Storm::Irene);
        assert_eq!(irene[0].timestamp.label(), "7 PM SAT AUG 20 2011");
    }

    #[test]
    fn tracks_cover_their_advisory_window() {
        for &storm in ALL_STORMS {
            let needed = 3.0 * (storm.advisory_count() - 1) as f64;
            assert!(
                storm.track().duration_hours() >= needed,
                "{:?} track too short",
                storm
            );
        }
    }

    #[test]
    fn katrina_landfall_is_near_new_orleans() {
        let track = Storm::Katrina.track();
        let landfall = track.state_at(132.0);
        let nola = GeoPoint::new(29.95, -90.07).unwrap();
        assert!(great_circle_miles(landfall.center, nola) < 80.0);
        assert!(landfall.hurricane_radius_mi > 80.0);
    }

    #[test]
    fn irene_example_advisory_matches_paper_excerpt() {
        // §4.4 quotes Irene at 35.2 N, 76.4 W with hurricane-force winds to
        // 90 miles and tropical-storm-force winds to 260 miles.
        let track = Storm::Irene.track();
        let s = track.state_at(177.0);
        assert!((s.center.lat() - 35.2).abs() < 0.05);
        assert!((s.center.lon() + 76.4).abs() < 0.05);
        assert!((s.hurricane_radius_mi - 90.0).abs() < 1.0);
        assert!((s.tropical_radius_mi - 260.0).abs() < 1.0);
    }

    #[test]
    fn sandy_wind_field_dwarfs_katrina() {
        let sandy_max = Storm::Sandy
            .track()
            .points()
            .iter()
            .map(|p| p.tropical_radius_mi)
            .fold(0.0_f64, f64::max);
        let katrina_max = Storm::Katrina
            .track()
            .points()
            .iter()
            .map(|p| p.tropical_radius_mi)
            .fold(0.0_f64, f64::max);
        assert!(sandy_max > 1.8 * katrina_max);
    }

    #[test]
    fn advisories_are_sequenced() {
        let advs = advisories_for(Storm::Irene);
        for (i, a) in advs.iter().enumerate() {
            assert_eq!(a.number, i + 1);
            assert_eq!(a.storm, "IRENE");
        }
        for w in advs.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
        }
    }
}
