#!/usr/bin/env bash
# Full local CI gate: release build, the whole test suite, clippy at
# -D warnings, and the seeded chaos suites (fault plans + kill/resume).
# Everything is deterministic (fixed seeds), so a red run replays exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== obs: collector overhead guard (enabled vs disabled) =="
# A fixed ~2 s provisioning workload, best-of-3 each way. The disabled
# direction is branch-only by construction; this guards the *enabled*
# direction: metrics + trace collection must cost < 10% wall clock.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
best_of_3_ms() {
  local best=
  for _ in 1 2 3; do
    local s e ms
    s=$(date +%s%N)
    "$@" >/dev/null
    e=$(date +%s%N)
    ms=$(( (e - s) / 1000000 ))
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
  done
  echo "$best"
}
off_ms=$(best_of_3_ms target/release/riskroute provision Level3 -k 1)
on_ms=$(best_of_3_ms target/release/riskroute \
  --metrics-out "$OBS_TMP/metrics.prom" --trace-out "$OBS_TMP/trace.jsonl" \
  provision Level3 -k 1)
echo "disabled ${off_ms} ms, enabled ${on_ms} ms"
# The exports must actually have been produced with real content.
grep -q 'riskroute_provision_rounds' "$OBS_TMP/metrics.prom"
grep -q '"type":"span"' "$OBS_TMP/trace.jsonl"
# The traced run carries request-scoped attribution: a trace line labeled
# with the command, and span events tagged with its trace ID.
grep -q '"type":"trace"' "$OBS_TMP/trace.jsonl"
grep -q '"label":"provision"' "$OBS_TMP/trace.jsonl"
if [ $(( on_ms * 10 )) -gt $(( off_ms * 11 )) ]; then
  echo "FAIL: enabled-collector overhead exceeds 10% (${off_ms} ms -> ${on_ms} ms)"
  exit 1
fi

echo "== obs: exposition lint + chrome trace export =="
# Every line the Prometheus exporter writes must survive the in-tree
# exposition lint (names, labels, cumulative buckets, +Inf, _count).
target/release/riskroute obs lint "$OBS_TMP/metrics.prom"
# The JSONL trace converts to Chrome trace-event JSON with real events.
target/release/riskroute obs trace "$OBS_TMP/trace.jsonl" --out "$OBS_TMP/trace.json"
grep -q '"traceEvents"' "$OBS_TMP/trace.json"
grep -q '"ph":"X"' "$OBS_TMP/trace.json"
# And the summary renders the per-trace attribution table from it.
target/release/riskroute obs-summary "$OBS_TMP/trace.jsonl" | grep -q 'per-trace attribution'

echo "== parallel: sequential/threaded equivalence suite =="
cargo test --release -q --test parallel_equivalence --test pool_properties

echo "== sssp engine: cache-on/cache-off equivalence suite =="
cargo test --release -q --test route_cache_equivalence

echo "== scenario forks: sweep equivalence suite =="
cargo test --release -q --test scenario_equivalence

echo "== parallel: --threads 1 vs --threads 4 byte-for-byte =="
# Same fixed provisioning workload at both settings; the outputs must be
# byte-identical (the parallel reduction replays the sequential fold order).
target/release/riskroute provision Level3 -k 2 --threads 1 > "$OBS_TMP/prov-t1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 > "$OBS_TMP/prov-t4.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-t4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 > "$OBS_TMP/replay-t1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 > "$OBS_TMP/replay-t4.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-t4.txt"
# The full N-1 sweep on the 233-PoP paper topology fans scenario forks
# over the worker pool; the ranked report must not move by a byte.
target/release/riskroute sweep Level3 --mode n1 --threads 1 > "$OBS_TMP/sweep-t1.txt"
target/release/riskroute sweep Level3 --mode n1 --threads 4 > "$OBS_TMP/sweep-t4.txt"
diff "$OBS_TMP/sweep-t1.txt" "$OBS_TMP/sweep-t4.txt"
echo "threaded outputs are byte-identical"

echo "== sssp engine: cache vs --no-route-cache byte-for-byte =="
# The route-tree cache is exact: enabling it must not change a single byte
# of output, at any worker count.
target/release/riskroute provision Level3 -k 2 --threads 1 --no-route-cache > "$OBS_TMP/prov-nc1.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-nc1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 --no-route-cache > "$OBS_TMP/prov-nc4.txt"
diff "$OBS_TMP/prov-t4.txt" "$OBS_TMP/prov-nc4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 --no-route-cache > "$OBS_TMP/replay-nc1.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-nc1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 --no-route-cache > "$OBS_TMP/replay-nc4.txt"
diff "$OBS_TMP/replay-t4.txt" "$OBS_TMP/replay-nc4.txt"
echo "cache-off outputs are byte-identical"

echo "== sssp engine: delta vs --no-delta-invalidation byte-for-byte =="
# Edge-delta-aware stamps and incremental tree repair are exact: disabling
# them must not change a single byte of replay output, at any worker count.
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 --no-delta-invalidation > "$OBS_TMP/replay-nd1.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-nd1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 --no-delta-invalidation > "$OBS_TMP/replay-nd4.txt"
diff "$OBS_TMP/replay-t4.txt" "$OBS_TMP/replay-nd4.txt"
echo "delta-off outputs are byte-identical"

echo "== sssp engine: delta-on/delta-off equivalence suite =="
cargo test --release -q --test delta_invalidation_equivalence --test incremental_sssp_properties

echo "== sssp engine: bucket queue vs --no-bucket-queue byte-for-byte =="
# The monotone bucket-queue frontier is exact: pops replay the binary
# heap's (cost, node) order, so disabling it must not change a single
# byte of output, at any worker count.
target/release/riskroute provision Level3 -k 2 --threads 1 --no-bucket-queue > "$OBS_TMP/prov-nb1.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-nb1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 --no-bucket-queue > "$OBS_TMP/prov-nb4.txt"
diff "$OBS_TMP/prov-t4.txt" "$OBS_TMP/prov-nb4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 --no-bucket-queue > "$OBS_TMP/replay-nb1.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-nb1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 --no-bucket-queue > "$OBS_TMP/replay-nb4.txt"
diff "$OBS_TMP/replay-t4.txt" "$OBS_TMP/replay-nb4.txt"
echo "bucket-queue-off outputs are byte-identical"

echo "== sssp engine: bucket-queue equivalence suite =="
cargo test --release -p riskroute -q --test bucket_queue_equivalence

echo "== scale: seeded 10k-PoP synth smoke gate =="
# Generate a 10k-PoP synthetic network, then route on it and evaluate a
# sampled ratio report — the whole sequence must finish inside a wall
# budget generous enough for CI machines but tight enough to catch an
# accidental return to quadratic/naive paths.
scale_s=$(date +%s%N)
target/release/riskroute synth 10000 --seed 42 --out "$OBS_TMP/synth10k.graphml" \
  | grep -q '10000 PoPs'
target/release/riskroute --graphml "$OBS_TMP/synth10k.graphml" --name big \
  route big 0 9999 >/dev/null
target/release/riskroute --graphml "$OBS_TMP/synth10k.graphml" --name big \
  ratio big --sample 32 --seed 7 >/dev/null
scale_e=$(date +%s%N)
scale_ms=$(( (scale_e - scale_s) / 1000000 ))
echo "10k synth + route + sampled ratio in ${scale_ms} ms"
if [ "$scale_ms" -gt 120000 ]; then
  echo "FAIL: 10k-PoP smoke gate took ${scale_ms} ms (budget 120000 ms)"
  exit 1
fi

echo "== obs: tracing-on vs tracing-off byte-for-byte =="
# Request-scoped tracing must not move a byte of output, including under
# the parallel pool (worker threads inherit the dispatching scope).
target/release/riskroute provision Level3 -k 2 --threads 4 \
  --trace-out "$OBS_TMP/prov-trace.jsonl" > "$OBS_TMP/prov-traced.txt"
diff "$OBS_TMP/prov-t4.txt" "$OBS_TMP/prov-traced.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 \
  --trace-out "$OBS_TMP/replay-trace.jsonl" > "$OBS_TMP/replay-traced.txt"
diff "$OBS_TMP/replay-t4.txt" "$OBS_TMP/replay-traced.txt"
echo "traced outputs are byte-identical"

echo "== sssp engine: sssp_runs regression guard =="
# The fixture provisioning workload is deterministic, so its SSSP-run count
# is exact; scripts/sssp_baseline.txt records the count at the time the
# route-tree cache landed. A higher count means a cache/invalidation
# regression (recompute the baseline deliberately if the workload changes).
target/release/riskroute provision Level3 -k 1 --metrics-out "$OBS_TMP/sssp.prom" >/dev/null
sssp_runs=$(awk '$1 == "riskroute_risk_sssp_runs" { print $2 }' "$OBS_TMP/sssp.prom")
sssp_baseline=$(cat scripts/sssp_baseline.txt)
echo "sssp_runs ${sssp_runs} (baseline ${sssp_baseline})"
if [ -z "$sssp_runs" ] || [ "$sssp_runs" -gt "$sssp_baseline" ]; then
  echo "FAIL: sssp_runs ${sssp_runs:-<missing>} exceeds baseline ${sssp_baseline}"
  exit 1
fi

echo "== chaos: fault plans (seeds 42..49) =="
cargo run --release -p riskroute-cli -- chaos --plans 8 --seed 42

echo "== chaos: kill/resume crash-consistency (seeds 0..4 via test) =="
cargo test --release -p riskroute -q chaos::tests::kill_resume -- --nocapture

echo "== serve: warm-daemon smoke gate =="
# Spawn the daemon on an ephemeral port with a tiny connection cap (so the
# overload path is deterministically reachable below). It announces the
# resolved address on stdout before the accept loop starts.
target/release/riskroute serve --listen 127.0.0.1:0 --max-connections 2 \
  > "$OBS_TMP/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$OBS_TMP"' EXIT
SERVE_ADDR=
for _ in $(seq 1 100); do
  SERVE_ADDR=$(awk '/^listening on /{ print $3; exit }' "$OBS_TMP/serve.log")
  [ -n "$SERVE_ADDR" ] && break
  sleep 0.1
done
if [ -z "$SERVE_ADDR" ]; then
  echo "FAIL: daemon never announced its listen address"
  cat "$OBS_TMP/serve.log"
  exit 1
fi
echo "daemon at $SERVE_ADDR"
SERVE_HOST=${SERVE_ADDR%:*}
SERVE_PORT=${SERVE_ADDR##*:}
serve_query() {  # one NDJSON request line in, the one-line answer out
  exec 9<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
  printf '%s\n' "$1" >&9
  IFS= read -r serve_reply <&9
  exec 9<&- 9>&-
  printf '%s\n' "$serve_reply"
}
# Mixed batch: valid queries, a malformed frame, an unknown op. Every line
# gets a typed one-line answer and the daemon stays up throughout.
serve_query '{"op":"ping"}'                        | grep -q '"output":"pong"'
serve_query '{"id":1,"op":"ratio","network":"Telepak"}' | grep -q '"status":"ok"'
serve_query '{"op":"route","network":"Sprint","src":"0","dst":"5"}' | grep -q '"status":"ok"'
serve_query '{ not json'                           | grep -q '"kind":"malformed-frame"'
serve_query '{"op":"no-such-op"}'                  | grep -q '"kind":"bad-request"'
# Overload: two held connections fill --max-connections 2 (the answered
# pings prove both slots are admitted); the third connect is refused with
# an overloaded line and a retry hint, not a hang or a dropped socket.
exec 7<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
printf '%s\n' '{"op":"ping"}' >&7
IFS= read -r _ <&7
exec 8<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
printf '%s\n' '{"op":"ping"}' >&8
IFS= read -r _ <&8
serve_query '{"op":"ping"}' | grep -q '"status":"overloaded"'
exec 7<&- 7>&- 8<&- 8>&-
# The freed slots come back within the read tick; then a Prometheus scrape
# on the same listener must report the counters the batch just drove.
SERVE_RECOVERED=
for _ in $(seq 1 50); do
  if serve_query '{"op":"ping"}' | grep -q '"output":"pong"'; then
    SERVE_RECOVERED=1
    break
  fi
  sleep 0.1
done
[ -n "$SERVE_RECOVERED" ] || { echo "FAIL: daemon did not recover after overload"; exit 1; }
exec 9<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
cat <&9 > "$OBS_TMP/serve-metrics.txt"
exec 9<&- 9>&-
grep -q 'riskroute_serve_requests_total' "$OBS_TMP/serve-metrics.txt"
grep -q 'riskroute_serve_frames_malformed' "$OBS_TMP/serve-metrics.txt"
grep -q 'riskroute_serve_connections_rejected' "$OBS_TMP/serve-metrics.txt"
# Protocol shutdown: acknowledged with a draining line, then the process
# must drain cleanly (exit 0; a forced drain exits 10 and fails the gate).
serve_query '{"op":"shutdown"}' | grep -q '"status":"draining"'
SERVE_EXIT=0
wait "$SERVE_PID" || SERVE_EXIT=$?
trap 'rm -rf "$OBS_TMP"' EXIT
if [ "$SERVE_EXIT" -ne 0 ]; then
  echo "FAIL: serve exited $SERVE_EXIT instead of draining cleanly"
  cat "$OBS_TMP/serve.log"
  exit 1
fi
grep -q 'drained cleanly' "$OBS_TMP/serve.log"
echo "serve daemon drained cleanly"

echo "CI gate passed."
