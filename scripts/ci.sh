#!/usr/bin/env bash
# Full local CI gate: release build, the whole test suite, clippy at
# -D warnings, and the seeded chaos suites (fault plans + kill/resume).
# Everything is deterministic (fixed seeds), so a red run replays exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== obs: collector overhead guard (enabled vs disabled) =="
# A fixed ~2 s provisioning workload, best-of-3 each way. The disabled
# direction is branch-only by construction; this guards the *enabled*
# direction: metrics + trace collection must cost < 10% wall clock.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
best_of_3_ms() {
  local best=
  for _ in 1 2 3; do
    local s e ms
    s=$(date +%s%N)
    "$@" >/dev/null
    e=$(date +%s%N)
    ms=$(( (e - s) / 1000000 ))
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
  done
  echo "$best"
}
off_ms=$(best_of_3_ms target/release/riskroute provision Level3 -k 1)
on_ms=$(best_of_3_ms target/release/riskroute \
  --metrics-out "$OBS_TMP/metrics.prom" --trace-out "$OBS_TMP/trace.jsonl" \
  provision Level3 -k 1)
echo "disabled ${off_ms} ms, enabled ${on_ms} ms"
# The exports must actually have been produced with real content.
grep -q 'riskroute_provision_rounds' "$OBS_TMP/metrics.prom"
grep -q '"type":"span"' "$OBS_TMP/trace.jsonl"
if [ $(( on_ms * 10 )) -gt $(( off_ms * 11 )) ]; then
  echo "FAIL: enabled-collector overhead exceeds 10% (${off_ms} ms -> ${on_ms} ms)"
  exit 1
fi

echo "== parallel: sequential/threaded equivalence suite =="
cargo test --release -q --test parallel_equivalence --test pool_properties

echo "== parallel: --threads 1 vs --threads 4 byte-for-byte =="
# Same fixed provisioning workload at both settings; the outputs must be
# byte-identical (the parallel reduction replays the sequential fold order).
target/release/riskroute provision Level3 -k 2 --threads 1 > "$OBS_TMP/prov-t1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 > "$OBS_TMP/prov-t4.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-t4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 > "$OBS_TMP/replay-t1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 > "$OBS_TMP/replay-t4.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-t4.txt"
echo "threaded outputs are byte-identical"

echo "== chaos: fault plans (seeds 42..49) =="
cargo run --release -p riskroute-cli -- chaos --plans 8 --seed 42

echo "== chaos: kill/resume crash-consistency (seeds 0..4 via test) =="
cargo test --release -p riskroute -q chaos::tests::kill_resume -- --nocapture

echo "CI gate passed."
