#!/usr/bin/env bash
# Full local CI gate: release build, the whole test suite, clippy at
# -D warnings, and the seeded chaos suites (fault plans + kill/resume).
# Everything is deterministic (fixed seeds), so a red run replays exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== obs: collector overhead guard (enabled vs disabled) =="
# A fixed ~2 s provisioning workload, best-of-3 each way. The disabled
# direction is branch-only by construction; this guards the *enabled*
# direction: metrics + trace collection must cost < 10% wall clock.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
best_of_3_ms() {
  local best=
  for _ in 1 2 3; do
    local s e ms
    s=$(date +%s%N)
    "$@" >/dev/null
    e=$(date +%s%N)
    ms=$(( (e - s) / 1000000 ))
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
  done
  echo "$best"
}
off_ms=$(best_of_3_ms target/release/riskroute provision Level3 -k 1)
on_ms=$(best_of_3_ms target/release/riskroute \
  --metrics-out "$OBS_TMP/metrics.prom" --trace-out "$OBS_TMP/trace.jsonl" \
  provision Level3 -k 1)
echo "disabled ${off_ms} ms, enabled ${on_ms} ms"
# The exports must actually have been produced with real content.
grep -q 'riskroute_provision_rounds' "$OBS_TMP/metrics.prom"
grep -q '"type":"span"' "$OBS_TMP/trace.jsonl"
if [ $(( on_ms * 10 )) -gt $(( off_ms * 11 )) ]; then
  echo "FAIL: enabled-collector overhead exceeds 10% (${off_ms} ms -> ${on_ms} ms)"
  exit 1
fi

echo "== parallel: sequential/threaded equivalence suite =="
cargo test --release -q --test parallel_equivalence --test pool_properties

echo "== sssp engine: cache-on/cache-off equivalence suite =="
cargo test --release -q --test route_cache_equivalence

echo "== scenario forks: sweep equivalence suite =="
cargo test --release -q --test scenario_equivalence

echo "== parallel: --threads 1 vs --threads 4 byte-for-byte =="
# Same fixed provisioning workload at both settings; the outputs must be
# byte-identical (the parallel reduction replays the sequential fold order).
target/release/riskroute provision Level3 -k 2 --threads 1 > "$OBS_TMP/prov-t1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 > "$OBS_TMP/prov-t4.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-t4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 > "$OBS_TMP/replay-t1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 > "$OBS_TMP/replay-t4.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-t4.txt"
# The full N-1 sweep on the 233-PoP paper topology fans scenario forks
# over the worker pool; the ranked report must not move by a byte.
target/release/riskroute sweep Level3 --mode n1 --threads 1 > "$OBS_TMP/sweep-t1.txt"
target/release/riskroute sweep Level3 --mode n1 --threads 4 > "$OBS_TMP/sweep-t4.txt"
diff "$OBS_TMP/sweep-t1.txt" "$OBS_TMP/sweep-t4.txt"
echo "threaded outputs are byte-identical"

echo "== sssp engine: cache vs --no-route-cache byte-for-byte =="
# The route-tree cache is exact: enabling it must not change a single byte
# of output, at any worker count.
target/release/riskroute provision Level3 -k 2 --threads 1 --no-route-cache > "$OBS_TMP/prov-nc1.txt"
diff "$OBS_TMP/prov-t1.txt" "$OBS_TMP/prov-nc1.txt"
target/release/riskroute provision Level3 -k 2 --threads 4 --no-route-cache > "$OBS_TMP/prov-nc4.txt"
diff "$OBS_TMP/prov-t4.txt" "$OBS_TMP/prov-nc4.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 1 --no-route-cache > "$OBS_TMP/replay-nc1.txt"
diff "$OBS_TMP/replay-t1.txt" "$OBS_TMP/replay-nc1.txt"
target/release/riskroute replay Telepak katrina --stride 4 --threads 4 --no-route-cache > "$OBS_TMP/replay-nc4.txt"
diff "$OBS_TMP/replay-t4.txt" "$OBS_TMP/replay-nc4.txt"
echo "cache-off outputs are byte-identical"

echo "== sssp engine: sssp_runs regression guard =="
# The fixture provisioning workload is deterministic, so its SSSP-run count
# is exact; scripts/sssp_baseline.txt records the count at the time the
# route-tree cache landed. A higher count means a cache/invalidation
# regression (recompute the baseline deliberately if the workload changes).
target/release/riskroute provision Level3 -k 1 --metrics-out "$OBS_TMP/sssp.prom" >/dev/null
sssp_runs=$(awk '$1 == "riskroute_risk_sssp_runs" { print $2 }' "$OBS_TMP/sssp.prom")
sssp_baseline=$(cat scripts/sssp_baseline.txt)
echo "sssp_runs ${sssp_runs} (baseline ${sssp_baseline})"
if [ -z "$sssp_runs" ] || [ "$sssp_runs" -gt "$sssp_baseline" ]; then
  echo "FAIL: sssp_runs ${sssp_runs:-<missing>} exceeds baseline ${sssp_baseline}"
  exit 1
fi

echo "== chaos: fault plans (seeds 42..49) =="
cargo run --release -p riskroute-cli -- chaos --plans 8 --seed 42

echo "== chaos: kill/resume crash-consistency (seeds 0..4 via test) =="
cargo test --release -p riskroute -q chaos::tests::kill_resume -- --nocapture

echo "CI gate passed."
