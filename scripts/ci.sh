#!/usr/bin/env bash
# Full local CI gate: release build, the whole test suite, clippy at
# -D warnings, and the seeded chaos suites (fault plans + kill/resume).
# Everything is deterministic (fixed seeds), so a red run replays exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos: fault plans (seeds 42..49) =="
cargo run --release -p riskroute-cli -- chaos --plans 8 --seed 42

echo "== chaos: kill/resume crash-consistency (seeds 0..4 via test) =="
cargo test --release -p riskroute -q chaos::tests::kill_resume -- --nocapture

echo "CI gate passed."
